"""Tests for VersionedRelation: the proactive-update rule (Section 2.3)."""

import pytest

from repro.errors import RetroactiveUpdateError
from repro.relational.predicate import attr_eq
from repro.relational.schema import Schema
from repro.relational.versioned import VersionedRelation


class FakeWatermark:
    """A controllable group watermark."""

    def __init__(self) -> None:
        self.value = -1

    def __call__(self) -> int:
        return self.value


def make(keep_history=True):
    watermark = FakeWatermark()
    relation = VersionedRelation(
        "customers",
        Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"]),
        watermark=watermark,
        keep_history=keep_history,
    )
    return relation, watermark


class TestProactivity:
    def test_default_updates_are_proactive(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})
        watermark.value = 10
        assert relation.update_key((1,), state="NY")
        assert relation.lookup_key((1,))["state"] == "NY"

    def test_retroactive_update_rejected(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})
        watermark.value = 10
        with pytest.raises(RetroactiveUpdateError):
            relation.update_key((1,), effective_from=5, state="NY")

    def test_retroactive_insert_rejected(self):
        relation, watermark = make()
        watermark.value = 3
        with pytest.raises(RetroactiveUpdateError):
            relation.insert({"acct": 1, "state": "NJ"}, effective_from=2)

    def test_explicit_future_effective_allowed(self):
        relation, watermark = make()
        watermark.value = 3
        relation.insert({"acct": 1, "state": "NJ"}, effective_from=10)
        assert len(relation) == 1

    def test_retroactive_delete_rejected(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})
        watermark.value = 7
        with pytest.raises(RetroactiveUpdateError):
            relation.delete_key((1,), effective_from=1)

    def test_effective_at_watermark_is_retroactive(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})
        watermark.value = 5
        with pytest.raises(RetroactiveUpdateError):
            relation.update_key((1,), effective_from=5, state="NY")


class TestAsOf:
    def test_as_of_reconstructs_past_version(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})  # effective 0
        watermark.value = 4
        relation.update_key((1,), state="NY")  # effective 5
        old = relation.as_of(3)
        assert old.lookup_key((1,))["state"] == "NJ"
        new = relation.as_of(5)
        assert new.lookup_key((1,))["state"] == "NY"

    def test_as_of_before_insert_is_empty(self):
        relation, watermark = make()
        watermark.value = 2
        relation.insert({"acct": 1, "state": "NJ"})  # effective 3
        assert len(relation.as_of(2)) == 0

    def test_as_of_after_delete(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})
        watermark.value = 9
        relation.delete_key((1,))  # effective 10
        assert len(relation.as_of(9)) == 1
        assert len(relation.as_of(10)) == 0

    def test_as_of_requires_history(self):
        relation, watermark = make(keep_history=False)
        relation.insert({"acct": 1, "state": "NJ"})
        with pytest.raises(RetroactiveUpdateError):
            relation.as_of(0)

    def test_version_for_current_is_not_a_copy(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})
        watermark.value = 5
        assert relation.version_for(100) is relation.current

    def test_version_for_past_reconstructs(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})  # effective 0
        watermark.value = 4
        relation.update_key((1,), state="NY")  # effective 5
        assert relation.version_for(2).lookup_key((1,))["state"] == "NJ"

    def test_update_where_logged(self):
        relation, watermark = make()
        relation.insert({"acct": 1, "state": "NJ"})
        relation.insert({"acct": 2, "state": "NJ"})
        watermark.value = 7
        relation.update_where(attr_eq("state", "NJ"), state="PA")  # effective 8
        past = relation.as_of(7)
        assert sorted(r["state"] for r in past) == ["NJ", "NJ"]
        assert sorted(r["state"] for r in relation.as_of(8)) == ["PA", "PA"]


class TestPassthrough:
    def test_reads(self):
        relation, _ = make()
        relation.insert({"acct": 1, "state": "NJ"})
        assert len(relation) == 1
        assert relation.lookup_key((1,))["acct"] == 1
        assert relation.lookup(["state"], "NJ")[0]["acct"] == 1
        assert len(list(iter(relation))) == 1

    def test_unique_index_passthrough(self):
        relation, _ = make()
        relation.create_index(["state"], unique=True)
        assert relation.has_unique_index(["state"])

    def test_bind_watermark(self):
        relation, _ = make()
        relation.insert({"acct": 1, "state": "NJ"})
        relation.bind_watermark(lambda: 99)
        with pytest.raises(RetroactiveUpdateError):
            relation.update_key((1,), effective_from=50, state="NY")
