"""Counter-based tests of the paper's complexity theorems.

These use the instrumented cost model (operation counts), not wall time,
so they are deterministic: the *shape* claims of Theorems 4.2–4.5 and
Proposition 3.1 become exact assertions.
"""

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import ChronicleProduct, scan
from repro.algebra.delta_engine import propagate
from repro.baselines.recompute import RecomputeMaintainer
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import is_flat
from repro.core.delta import Delta
from repro.core.group import ChronicleGroup
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView


def make_customers(size, ordered=True):
    customers = Relation(
        "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
    )
    for acct in range(size):
        customers.insert({"acct": acct, "state": "NJ" if acct % 2 else "NY"})
    return customers


def append_cost(group, calls, view, acct=0):
    """Cost-counter delta for one append + maintenance."""
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": acct, "mins": 1})
    return cost


class TestTheorem42Independence:
    """Δ computation cost independent of |C| and |V|."""

    def test_cost_flat_in_chronicle_size(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle(
            "calls", [("acct", "INT"), ("mins", "INT")], retention=0
        )
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        )
        attach_view(view, group)
        costs = []
        for target in (100, 1000, 10000):
            while calls.appended_count < target - 1:
                group.append(calls, {"acct": 0, "mins": 1})
            costs.append(append_cost(group, calls, view)["tuple_op"])
        assert is_flat([100, 1000, 10000], costs, slack=0.01)

    def test_cost_flat_in_view_size(self):
        """Locate is O(log |V|) in probes, but tuple work is flat."""
        group = ChronicleGroup("g")
        calls = group.create_chronicle(
            "calls", [("acct", "INT"), ("mins", "INT")], retention=0
        )
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        )
        attach_view(view, group)
        tuple_costs = []
        probe_costs = []
        for groups in (100, 1000, 10000):
            while len(view) < groups:
                group.append(calls, {"acct": len(view), "mins": 1})
            cost = append_cost(group, calls, view, acct=0)
            tuple_costs.append(cost["tuple_op"])
            probe_costs.append(cost["index_probe"])
        assert is_flat([100, 1000, 10000], tuple_costs, slack=0.01)
        # Probes grow at most logarithmically: 100x view growth must not
        # even double them.
        assert probe_costs[-1] <= probe_costs[0] * 2

    def test_no_chronicle_reads_during_maintenance(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
        customers = make_customers(64)
        view = PersistentView(
            "v",
            GroupBySummary(
                scan(calls).keyjoin(customers, [("acct", "acct")]),
                ["state"],
                [spec(SUM, "mins")],
            ),
        )
        attach_view(view, group)
        with GLOBAL_COUNTERS.measure() as cost:
            for i in range(100):
                group.append(calls, {"acct": i % 64, "mins": 1})
        assert cost["chronicle_read"] == 0

    def test_ca_product_cost_scales_with_relation(self):
        """The (u·|R|)^j factor: a C×R view's per-append tuple work is
        ~|R|, while a key-join view's is flat in |R|."""

        def work(size, use_product):
            group = ChronicleGroup("g")
            calls = group.create_chronicle(
                "calls", [("acct", "INT"), ("mins", "INT")], retention=0
            )
            customers = make_customers(size)
            node = scan(calls)
            node = (
                node.product(customers)
                if use_product
                else node.keyjoin(customers, [("acct", "acct")])
            )
            view = PersistentView("v", GroupBySummary(node, ["state"], [spec(COUNT)]))
            attach_view(view, group)
            group.append(calls, {"acct": 0, "mins": 1})  # warm up
            with GLOBAL_COUNTERS.measure() as cost:
                group.append(calls, {"acct": 1, "mins": 1})
            return cost["tuple_op"]

        assert work(1000, use_product=True) > work(10, use_product=True) * 50
        keyjoin_small = work(10, use_product=False)
        keyjoin_large = work(1000, use_product=False)
        assert keyjoin_large <= keyjoin_small + 2  # flat tuple work


class TestTheorem44:
    """SCA maintenance: time O(t log |V|), space O(|V|)."""

    def test_time_linear_in_batch_size(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle(
            "calls", [("acct", "INT"), ("mins", "INT")], retention=0
        )
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        )
        attach_view(view, group)

        def cost_of_batch(t):
            # mins=i keeps records distinct (one batch shares a sequence
            # number, so identical records would dedup to one tuple).
            batch = [{"acct": i % 50, "mins": i} for i in range(t)]
            with GLOBAL_COUNTERS.measure() as cost:
                group.append(calls, batch)
            return cost["tuple_op"]

        costs = [cost_of_batch(t) for t in (10, 100, 1000)]
        assert costs[1] == pytest.approx(costs[0] * 10, rel=0.3)
        assert costs[2] == pytest.approx(costs[0] * 100, rel=0.3)

    def test_state_space_is_one_entry_per_view_row(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle(
            "calls", [("acct", "INT"), ("mins", "INT")], retention=0
        )
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        )
        attach_view(view, group)
        for i in range(1000):
            group.append(calls, {"acct": i % 37, "mins": 1})
        assert len(view._state) == len(view) == 37


class TestProposition31AndTheorem43:
    """RA-with-aggregation / extension operators need the chronicle."""

    def test_recompute_cost_grows_with_chronicle(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
        summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        maintainer = RecomputeMaintainer(summary)
        costs = []
        for target in (100, 400, 1600):
            while calls.appended_count < target:
                group.append(calls, {"acct": 1, "mins": 1})
            with GLOBAL_COUNTERS.measure() as cost:
                maintainer.recompute()
            costs.append(cost["chronicle_read"])
        assert costs == [100, 400, 1600]  # exactly |C| reads each time

    def test_chronicle_product_delta_cost_grows_with_chronicle(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
        fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
        expression = ChronicleProduct(scan(calls), scan(fees))

        def delta_cost_at(size):
            while fees.appended_count < size:
                group.append(fees, {"acct": 1, "mins": 1})
            rows = group.append(calls, {"acct": 1, "mins": 1})
            deltas = {"calls": Delta(calls.schema, rows)}
            with GLOBAL_COUNTERS.measure() as cost:
                propagate(expression, deltas, allow_chronicle_access=True)
            return cost["tuple_op"] + cost["chronicle_read"]

        small = delta_cost_at(50)
        large = delta_cost_at(500)
        assert large > small * 5


class TestTheorem45OperationCounts:
    """IM-Constant vs IM-log(R): probe counts tell the classes apart."""

    def test_ca1_view_makes_no_relation_probes(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle(
            "calls", [("acct", "INT"), ("mins", "INT")], retention=0
        )
        view = PersistentView("v", GroupBySummary(scan(calls), [], [spec(COUNT)]))
        attach_view(view, group)
        group.append(calls, {"acct": 1, "mins": 1})
        with GLOBAL_COUNTERS.measure() as cost:
            group.append(calls, {"acct": 1, "mins": 1})
        assert cost["index_lookup"] <= 3  # just the view state locate/update

    def test_ca_join_probe_growth_is_logarithmic(self):
        def probes_at(size):
            group = ChronicleGroup("g")
            calls = group.create_chronicle(
                "calls", [("acct", "INT"), ("mins", "INT")], retention=0
            )
            customers = Relation(
                "customers", Schema.build(("acct", "INT"), ("state", "STR"))
            )
            customers.create_index(["acct"], ordered=True, unique=True)
            for acct in range(size):
                customers.insert({"acct": acct, "state": "NJ"})
            view = PersistentView(
                "v",
                GroupBySummary(
                    scan(calls).keyjoin(customers, [("acct", "acct")]),
                    ["state"],
                    [spec(COUNT)],
                ),
            )
            attach_view(view, group)
            group.append(calls, {"acct": 0, "mins": 1})
            with GLOBAL_COUNTERS.measure() as cost:
                group.append(calls, {"acct": size // 2, "mins": 1})
            return cost["index_probe"]

        small, large = probes_at(100), probes_at(100_00)
        # |R| grew 100x; log growth means probes grow by a small additive
        # number of levels, not multiplicatively.
        assert large <= small + 6
