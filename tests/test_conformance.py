"""Tests for the empirical IM-class conformance profiler (repro.obs.conformance).

The profiler is the empirical twin of the static classifier: it measures
per-append maintenance cost across controlled |C| / |R| / u sweeps and
fits the curves.  The tests certify a CA1 view as |C|-independent
(Theorem 4.2, slope ≈ 0), a CA-join view as IM-log(R)-conformant, and —
the case the profiler exists to catch — a deliberately planted C×C
chronicle product as NON-conformant with cost growing in |C|.
"""

import pytest

from repro import ChronicleDatabase, DatabaseConfig
from repro.algebra.ast import ChronicleProduct, scan
from repro.algebra.classify import IMClass, Language
from repro.complexity.fitting import GrowthClass, classify_growth, mad, median
from repro.core.group import ChronicleGroup
from repro.errors import ConformanceError
from repro.obs import Observability, certify_expression, schema_record_factory
from repro.obs import runtime as obs_runtime
from repro.obs.conformance import ConformanceProfiler, span_probes, span_work


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


def make_db(**kwargs):
    db = ChronicleDatabase(config=DatabaseConfig(**kwargs))
    db.create_chronicle("flights", [("acct", "INT"), ("miles", "INT")])
    db.define_view(
        "DEFINE VIEW balance AS "
        "SELECT acct, SUM(miles) AS balance FROM flights GROUP BY acct"
    )
    return db


def make_join_db():
    db = ChronicleDatabase()
    db.create_chronicle("flights", [("acct", "INT"), ("miles", "INT")])
    db.create_relation("customers", [("acct", "INT"), ("state", "STR")], key=["acct"])
    db.define_view(
        "DEFINE VIEW by_state AS "
        "SELECT state, SUM(miles) AS total "
        "FROM flights JOIN customers ON flights.acct = customers.acct "
        "GROUP BY state"
    )
    return db


# ---------------------------------------------------------------------------
# Fitting support (classify_growth / median / mad)
# ---------------------------------------------------------------------------


class TestClassifyGrowth:
    def test_exact_flat_is_constant(self):
        verdict = classify_growth([100, 1_000, 10_000], [7, 7, 7])
        assert isinstance(verdict, GrowthClass)
        assert verdict.model == "constant"
        assert verdict.flat
        assert verdict.fit.slope == 0.0
        assert verdict.fit.r_squared == 1.0

    def test_noisy_flat_is_constant_not_log(self):
        # 10% jitter over a 100x range: least squares alone would likely
        # pick "log"; the flatness test must call it constant.
        verdict = classify_growth([100, 1_000, 10_000], [100, 108, 95])
        assert verdict.model == "constant"
        assert verdict.flat

    def test_linear_growth_detected(self):
        verdict = classify_growth([100, 1_000, 10_000], [210, 2_030, 20_100])
        assert verdict.model == "linear"
        assert not verdict.flat
        assert verdict.fit.slope == pytest.approx(2.0, rel=0.05)

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad_robust_to_one_outlier(self):
        assert mad([10.0, 10.0, 10.0, 10.0, 500.0]) == 0.0


# ---------------------------------------------------------------------------
# Work metric
# ---------------------------------------------------------------------------


class TestWorkMetric:
    def test_work_excludes_locate_step(self):
        counters = {"tuple_op": 5, "index_probe": 40, "index_lookup": 3}
        assert span_work(counters) == 5
        assert span_probes(counters) == 43

    def test_schema_record_factory_covers_domains(self):
        db = make_db()
        factory = schema_record_factory(db.chronicle("flights").schema)
        record = factory(7)
        assert set(record) == {"acct", "miles"}  # sequence attr skipped
        rows = db.append("flights", record)
        assert len(rows) == 1


# ---------------------------------------------------------------------------
# Profiler: conformant views
# ---------------------------------------------------------------------------


class TestProfilerConformant:
    def test_ca1_view_is_c_independent(self):
        db = make_db()
        profiler = ConformanceProfiler(db, samples=3)
        cert = profiler.certify("balance", c_sizes=(64, 256, 1_024))
        assert cert.claimed is IMClass.CONSTANT
        assert cert.language is Language.CA1
        assert cert.conformant
        c_sweep = next(s for s in cert.sweeps if s.parameter == "|C|")
        assert c_sweep.model == "constant"
        assert abs(c_sweep.slope) < 1e-9
        assert c_sweep.passed

    def test_join_view_log_r_conformant(self):
        db = make_join_db()
        profiler = ConformanceProfiler(db, samples=3)
        cert = profiler.certify(
            "by_state", c_sizes=(64, 256, 1_024), r_sizes=(64, 256, 1_024)
        )
        assert cert.claimed is IMClass.LOG_R
        assert cert.conformant
        parameters = {(s.parameter, s.metric) for s in cert.sweeps}
        assert ("|R|", "work") in parameters
        assert ("|R|", "probes") in parameters

    def test_interpreted_engine_also_certifies(self):
        db = make_db(compile_views=False)
        cert = ConformanceProfiler(db, samples=3).certify(
            "balance", c_sizes=(64, 256, 1_024), u_sizes=None
        )
        assert cert.engine == "interpreted"
        assert cert.conformant

    def test_batch_sweep_at_most_linear_in_u(self):
        db = make_db()
        cert = ConformanceProfiler(db, samples=3).certify(
            "balance", c_sizes=(64, 128, 256), u_sizes=(1, 4, 16)
        )
        u_sweep = next(s for s in cert.sweeps if s.parameter == "u")
        assert u_sweep.model in ("constant", "log", "linear")
        assert u_sweep.passed

    def test_certificate_published_on_database_handle(self):
        db = make_db(observe=True)
        try:
            ConformanceProfiler(db, samples=3).certify(
                "balance", c_sizes=(64, 128, 256), u_sizes=None
            )
            assert "balance" in db.observability.certificates
            assert db.observability.certificates["balance"]["conformant"] is True
            snap = db.observability.snapshot()
            assert snap["certificates"] == {"balance": True}
        finally:
            db.disable_observability()

    def test_certificate_dict_round_trips(self):
        db = make_db()
        cert = ConformanceProfiler(db, samples=3).certify(
            "balance", c_sizes=(64, 128, 256)
        )
        data = cert.to_dict()
        assert data["view"] == "balance"
        assert data["claimed_class"] == IMClass.CONSTANT.value
        assert data["conformant"] is True
        assert all(
            {"parameter", "model", "slope", "r_squared", "passed"} <= set(sweep)
            for sweep in data["sweeps"]
        )
        assert "CONFORMANT" in cert.format()

    def test_database_facade(self):
        db = make_db()
        cert = db.certify_view("balance", samples=3, c_sizes=(64, 128, 256))
        assert cert.conformant
        certs = db.certify_views(samples=3, c_sizes=(64, 128, 256), u_sizes=None)
        assert set(certs) == {"balance"}

    def test_profiler_restores_runtime(self):
        """Measurement installs a private handle; it must not leak."""
        db = make_db()
        ConformanceProfiler(db, samples=2).certify("balance", c_sizes=(64, 128, 256))
        assert obs_runtime.ACTIVE is None

    def test_samples_validated(self):
        with pytest.raises(ValueError):
            ConformanceProfiler(make_db(), samples=0)


# ---------------------------------------------------------------------------
# Profiler: the planted violation
# ---------------------------------------------------------------------------


class TestPlantedViolation:
    def _planted(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
        fees = group.create_chronicle("fees", [("acct", "INT"), ("fee", "INT")])
        return group, calls, fees

    def test_chronicle_product_flagged_non_conformant(self):
        group, calls, fees = self._planted()
        expression = ChronicleProduct(scan(calls), scan(fees))
        cert = certify_expression(
            expression,
            group,
            driver=calls,
            grow=fees,
            sizes=(64, 256, 1_024),
            name="planted",
        )
        assert cert.language is Language.NOT_CA
        assert not cert.conformant
        c_sweep = cert.sweeps[0]
        assert c_sweep.model in ("linear", "nlogn", "quadratic", "cubic")
        assert not c_sweep.passed
        assert "NON-CONFORMANT" in cert.format()

    def test_seq_join_equivalent_stays_flat(self):
        """The CA rewrite of the same join must certify constant."""
        group, calls, fees = self._planted()
        expression = scan(calls).join(scan(fees))
        cert = certify_expression(
            expression,
            group,
            driver=calls,
            grow=fees,
            sizes=(64, 256, 1_024),
            allow_chronicle_access=False,
        )
        assert cert.conformant
        assert cert.sweeps[0].model == "constant"

    def test_unmeasurable_view_raises(self):
        """Drive records that never pass the prefilter → ConformanceError."""
        db = ChronicleDatabase()
        db.create_chronicle("flights", [("acct", "INT"), ("miles", "INT")])
        db.define_view(
            "DEFINE VIEW nothing AS "
            "SELECT acct, SUM(miles) AS total FROM flights "
            "WHERE miles < 0 GROUP BY acct"
        )
        profiler = ConformanceProfiler(db, samples=2)
        with pytest.raises(ConformanceError, match="prefilter"):
            profiler.certify("nothing", c_sizes=(16, 32, 64))
