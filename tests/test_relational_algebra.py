"""Tests for the full relational-algebra evaluator (the oracle/baseline)."""

import pytest

from repro.aggregates import AVG, COUNT, MAX, MIN, SUM, spec
from repro.errors import SchemaError
from repro.relational import algebra as ra
from repro.relational.algebra import Table
from repro.relational.predicate import TRUE, attr_cmp, attr_eq, attrs_cmp
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import Row
from repro.relational.types import INT


def table(schema_spec, rows):
    schema = Schema.build(*schema_spec)
    return Table(schema, [Row(schema, list(r)) for r in rows])


def orders():
    return table(
        [("order_id", "INT"), ("cust", "INT"), ("amount", "INT")],
        [(1, 10, 100), (2, 10, 250), (3, 20, 75), (4, 30, 75)],
    )


def customers():
    return table(
        [("cust", "INT"), ("state", "STR")],
        [(10, "NJ"), (20, "NY"), (30, "NJ")],
    )


class TestTable:
    def test_dedup_on_construction(self):
        t = table([("a", "INT")], [(1,), (1,), (2,)])
        assert len(t) == 2

    def test_from_relation(self):
        relation = Relation("r", Schema.build(("a", "INT")))
        relation.insert({"a": 1})
        assert len(Table.from_relation(relation)) == 1

    def test_equality_is_set_based(self):
        a = table([("a", "INT")], [(1,), (2,)])
        b = table([("a", "INT")], [(2,), (1,)])
        assert a == b


class TestSelectProject:
    def test_select(self):
        result = ra.select(orders(), attr_cmp("amount", ">", 80))
        assert sorted(r["order_id"] for r in result) == [1, 2]

    def test_select_true(self):
        assert len(ra.select(orders(), TRUE)) == 4

    def test_project_dedups(self):
        result = ra.project(orders(), ["amount"])
        assert sorted(r["amount"] for r in result) == [75, 100, 250]

    def test_project_reorders(self):
        result = ra.project(orders(), ["amount", "cust"])
        assert result.schema.names == ("amount", "cust")

    def test_rename(self):
        result = ra.rename(orders(), {"cust": "customer"})
        assert "customer" in result.schema
        assert sorted(r["customer"] for r in result) == [10, 10, 20, 30]


class TestProductsJoins:
    def test_product_size(self):
        result = ra.product(orders(), customers())
        assert len(result) == 12

    def test_product_renames_clash(self):
        result = ra.product(orders(), customers())
        assert "r_cust" in result.schema

    def test_theta_join(self):
        combined = ra.theta_join(orders(), customers(), attrs_cmp("cust", "=", "r_cust"))
        assert len(combined) == 4

    def test_equi_join(self):
        result = ra.equi_join(orders(), customers(), [("cust", "cust")])
        assert len(result) == 4
        row = next(r for r in result if r["order_id"] == 1)
        assert row["state"] == "NJ"
        assert "r_cust" not in result.schema  # right key projected out

    def test_equi_join_keeps_right_keys_optionally(self):
        result = ra.equi_join(
            orders(), customers(), [("cust", "cust")], project_right_keys=False
        )
        assert "r_cust" in result.schema

    def test_equi_join_no_pairs(self):
        with pytest.raises(SchemaError):
            ra.equi_join(orders(), customers(), [])

    def test_equi_join_dangling_left(self):
        extra = table([("order_id", "INT"), ("cust", "INT"), ("amount", "INT")], [(9, 99, 1)])
        result = ra.equi_join(extra, customers(), [("cust", "cust")])
        assert len(result) == 0


class TestSetOperations:
    def test_union(self):
        a = table([("a", "INT")], [(1,), (2,)])
        b = table([("a", "INT")], [(2,), (3,)])
        assert sorted(r["a"] for r in ra.union(a, b)) == [1, 2, 3]

    def test_union_incompatible(self):
        a = table([("a", "INT")], [(1,)])
        b = table([("b", "INT")], [(1,)])
        with pytest.raises(SchemaError):
            ra.union(a, b)

    def test_difference(self):
        a = table([("a", "INT")], [(1,), (2,), (3,)])
        b = table([("a", "INT")], [(2,)])
        assert sorted(r["a"] for r in ra.difference(a, b)) == [1, 3]

    def test_intersection(self):
        a = table([("a", "INT")], [(1,), (2,)])
        b = table([("a", "INT")], [(2,), (3,)])
        assert [r["a"] for r in ra.intersection(a, b)] == [2]


class TestGroupBy:
    def test_group_by_key(self):
        result = ra.group_by(orders(), ["cust"], [spec(SUM, "amount"), spec(COUNT)])
        by_cust = {r["cust"]: (r["sum_amount"], r["count"]) for r in result}
        assert by_cust == {10: (350, 2), 20: (75, 1), 30: (75, 1)}

    def test_global_group(self):
        result = ra.group_by(orders(), [], [spec(SUM, "amount")])
        assert len(result) == 1
        assert list(result)[0]["sum_amount"] == 500

    def test_global_group_over_empty_input(self):
        empty = table([("a", "INT")], [])
        result = ra.group_by(empty, [], [spec(COUNT), spec(MIN, "a")])
        row = list(result)[0]
        assert row["count"] == 0
        assert row["min_a"] is None

    def test_min_max_avg(self):
        result = ra.group_by(
            orders(), ["cust"], [spec(MIN, "amount"), spec(MAX, "amount"), spec(AVG, "amount")]
        )
        row = next(r for r in result if r["cust"] == 10)
        assert (row["min_amount"], row["max_amount"], row["avg_amount"]) == (100, 250, 175.0)

    def test_count_output_is_int_domain(self):
        result = ra.group_by(orders(), ["cust"], [spec(COUNT)])
        assert result.schema.attribute("count").domain is INT


class TestExtend:
    def test_extend_computed_column(self):
        result = ra.extend(orders(), "double", "INT", lambda r: r["amount"] * 2)
        assert sorted(r["double"] for r in result) == [150, 150, 200, 500]

    def test_extend_preserves_sequence_marker(self):
        schema = Schema.build(("sn", "SEQ"), ("v", "INT"))
        chron_schema = Schema(list(schema.attributes), sequence_attribute="sn")
        t = Table(chron_schema, [Row(chron_schema, [1, 5])])
        extended = ra.extend(t, "w", "INT", lambda r: 0)
        assert extended.schema.sequence_attribute == "sn"
