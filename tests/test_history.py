"""Tests for the metrics history sampler (repro.obs.history).

Covers the histogram windowing primitive, the bounded sample ring and
its derived series, the timeline/format read paths, sampler lifecycle
(started with the database, stopped on close and context exit, inert
when observability is off), incident context embedding, and a live
concurrency smoke: /dashboard + /timeline + /metrics scraped while a
sharded database ingests.
"""

import json
import threading
import urllib.request

import pytest

from repro import ChronicleDatabase, DatabaseConfig
from repro.core.config import HistoryConfig
from repro.errors import ConfigError, ObservabilityError
from repro.obs import Observability
from repro.obs import runtime as obs_runtime
from repro.obs.history import (
    INCIDENT_TIMELINE_SAMPLES,
    SCALAR_SERIES,
    MetricsHistory,
    render_dashboard,
)
from repro.obs.metrics import HistogramWindow, MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


def make_db(**kwargs):
    db = ChronicleDatabase(config=DatabaseConfig(**kwargs))
    db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
    db.define_view(
        "DEFINE VIEW usage AS "
        "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
    )
    return db


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


# ---------------------------------------------------------------------------
# HistogramWindow: per-interval deltas of cumulative histograms
# ---------------------------------------------------------------------------


class TestHistogramWindow:
    def test_delta_isolates_the_interval(self):
        registry = MetricsRegistry()
        registry.observe("maintain_seconds", 0.010)
        window = HistogramWindow(registry, "maintain_seconds")
        first = window.delta()
        assert first.count == 1
        registry.observe("maintain_seconds", 0.020)
        registry.observe("maintain_seconds", 0.030)
        second = window.delta()
        assert second.count == 2
        assert second.sum == pytest.approx(0.050)
        # An idle interval reads as empty, not as the lifetime total.
        assert window.delta().count == 0

    def test_missing_family_returns_none(self):
        window = HistogramWindow(MetricsRegistry(), "nope_seconds")
        assert window.delta() is None

    def test_rebaselines_after_registry_reset(self):
        registry = MetricsRegistry()
        for _ in range(5):
            registry.observe("maintain_seconds", 0.010)
        window = HistogramWindow(registry, "maintain_seconds")
        assert window.delta().count == 5
        registry.reset()
        registry.observe("maintain_seconds", 0.010)
        # The cumulative count shrank: the window must not go negative.
        assert window.delta().count == 1


# ---------------------------------------------------------------------------
# Sampling and the bounded ring
# ---------------------------------------------------------------------------


class TestSampling:
    def test_rejects_bad_parameters(self):
        obs = Observability(audit="off")
        with pytest.raises(ValueError):
            MetricsHistory(obs, interval=0)
        with pytest.raises(ValueError):
            MetricsHistory(obs, capacity=1)

    def test_sample_carries_every_scalar_series(self):
        obs = Observability(audit="off")
        history = MetricsHistory(obs)
        sample = history.sample_now()
        for name in SCALAR_SERIES:
            assert name in sample
        assert "at" in sample and "health" in sample
        assert sample["shards"] == {}
        assert sample["incidents"] == []

    def test_rates_derive_from_counter_deltas(self):
        db = make_db(observe=True)
        try:
            history = MetricsHistory(db.observability)
            history.sample_now()  # baseline: no window yet
            for i in range(10):
                db.append("calls", {"caller": i, "minutes": 1})
            sample = history.sample_now()
            assert sample["records_per_sec"] > 0
            assert sample["events_per_sec"] > 0
            assert sample["maintain_events"] > 0
            assert sample["maintain_p99_seconds"] is not None
            # Idle interval: rates fall back to zero, p99 to None.
            idle = history.sample_now()
            assert idle["records_per_sec"] == 0.0
            assert idle["maintain_p99_seconds"] is None
        finally:
            db.disable_observability()

    def test_first_sample_never_spikes(self):
        db = make_db(observe=True)
        try:
            for i in range(50):
                db.append("calls", {"caller": i, "minutes": 1})
            # History created *after* the counters grew: the first
            # sample has no window and must read 0, not 50/epsilon.
            history = MetricsHistory(db.observability)
            assert history.sample_now()["records_per_sec"] == 0.0
        finally:
            db.disable_observability()

    def test_ring_is_bounded(self):
        obs = Observability(audit="off")
        history = MetricsHistory(obs, capacity=8)
        for _ in range(30):
            history.sample_now()
        assert len(history.samples()) == 8
        assert history.timeline()["count"] == 8

    def test_samples_window_and_limit(self):
        obs = Observability(audit="off")
        history = MetricsHistory(obs, capacity=16)
        for _ in range(10):
            history.sample_now()
        assert len(history.samples(limit=3)) == 3
        # The window is measured back from the newest sample.
        newest = history.samples()[-1]["at"]
        oldest = history.samples()[0]["at"]
        span = newest - oldest
        assert len(history.samples(window_seconds=span + 1)) == 10


# ---------------------------------------------------------------------------
# Timeline read path
# ---------------------------------------------------------------------------


class TestTimeline:
    def test_shape_and_series_filter(self):
        obs = Observability(audit="off")
        history = MetricsHistory(obs)
        history.sample_now()
        history.sample_now()
        full = history.timeline()
        assert full["count"] == 2
        assert len(full["at"]) == 2
        assert set(full["series"]) == set(SCALAR_SERIES)
        narrow = history.timeline(series=["records_per_sec"])
        assert set(narrow["series"]) == {"records_per_sec"}
        assert len(narrow["health"]) == 2  # always travels

    def test_unknown_series_rejected(self):
        obs = Observability(audit="off")
        history = MetricsHistory(obs)
        with pytest.raises(ValueError, match="unknown timeline series"):
            history.timeline(series=["bogus_series"])

    def test_format_renders_sparklines_and_health(self):
        db = make_db(observe=True)
        try:
            history = MetricsHistory(db.observability)
            history.sample_now()
            db.append("calls", {"caller": 1, "minutes": 5})
            history.sample_now()
            text = history.format()
            assert text.startswith("timeline: last 2 sample(s)")
            assert "records/s" in text
            assert "health" in text
        finally:
            db.disable_observability()

    def test_format_before_any_sample(self):
        obs = Observability(audit="off")
        assert "no samples" in MetricsHistory(obs).format()


# ---------------------------------------------------------------------------
# Lifecycle: tied to the database, inert when observability is off
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_observe_starts_sampler_and_close_stops_it(self):
        db = make_db(observe=True)
        try:
            history = db.observability.history
            assert history is not None
            assert history.running
            assert any(
                t.name == "repro-history" for t in threading.enumerate()
            )
        finally:
            db.disable_observability()
        db.close()
        assert not history.running
        # The ring stays readable after the thread stopped.
        history.timeline()

    def test_context_exit_stops_sampler(self):
        with make_db(observe=True) as db:
            history = db.observability.history
            assert history.running
            db.disable_observability()
        assert not history.running

    def test_observe_off_means_no_sampler_anywhere(self):
        before = {t.name for t in threading.enumerate()}
        db = make_db()  # observe=False: the default
        db.append("calls", {"caller": 1, "minutes": 5})
        db.close()
        assert obs_runtime.ACTIVE is None
        assert db._observability is None
        after = {t.name for t in threading.enumerate()}
        assert "repro-history" not in after - before

    def test_history_config_disabled_skips_sampler(self):
        db = make_db(observe=True, history=HistoryConfig(enabled=False))
        try:
            assert db.observability.history is None
        finally:
            db.disable_observability()
            db.close()

    def test_double_start_rejected_and_stop_idempotent(self):
        obs = Observability(audit="off")
        history = obs.start_history(interval=60.0)
        try:
            with pytest.raises(ObservabilityError, match="already running"):
                obs.start_history()
        finally:
            obs.stop_history()
        obs.stop_history()  # idempotent
        assert not history.running

    def test_history_config_validation(self):
        with pytest.raises(ConfigError):
            HistoryConfig(sample_interval_seconds=0)
        with pytest.raises(ConfigError):
            HistoryConfig(capacity=1)
        with pytest.raises(ConfigError):
            HistoryConfig(enabled="yes")
        with pytest.raises(ConfigError):
            DatabaseConfig(history="nope")
        assert DatabaseConfig(history=None).history == HistoryConfig()


# ---------------------------------------------------------------------------
# Incident bundles embed the trailing window
# ---------------------------------------------------------------------------


class TestIncidentContext:
    def test_bundle_carries_timeline(self, tmp_path):
        db = make_db(observe=True)
        try:
            db.append("calls", {"caller": 1, "minutes": 5})
            db.observability.history.sample_now()
            path = str(tmp_path / "incident.json")
            db.observability.incident("test-incident", path=path)
            bundle = json.load(open(path))
            timeline = bundle["context"]["timeline"]
            assert timeline["count"] >= 1
            assert timeline["count"] <= INCIDENT_TIMELINE_SAMPLES
            assert "records_per_sec" in timeline["series"]
        finally:
            db.disable_observability()
            db.close()


# ---------------------------------------------------------------------------
# Dashboard rendering
# ---------------------------------------------------------------------------


class TestDashboard:
    def test_renders_without_history(self):
        obs = Observability(audit="off")
        html = render_dashboard(obs)
        assert "<!doctype html>" in html.lower()
        assert "metrics history is off" in html

    def test_renders_tiles_and_health_band(self):
        db = make_db(observe=True)
        try:
            history = db.observability.history
            for i in range(3):
                db.append("calls", {"caller": i, "minutes": 2})
                history.sample_now()
            html = render_dashboard(db.observability)
            assert "<svg" in html
            assert "throughput" in html
            assert "maintain p99" in html
            assert "health" in html
        finally:
            db.disable_observability()
            db.close()


# ---------------------------------------------------------------------------
# Concurrency: live scrapes during sharded ingest
# ---------------------------------------------------------------------------


class TestConcurrentScrapes:
    def test_dashboard_timeline_metrics_during_ingest(self):
        db = make_db(engine="sharded", shards=2, observe=True)
        try:
            history = db.observability.history
            server = db.observability.serve(port=0)
            errors = []

            def scrape(path):
                try:
                    for _ in range(5):
                        status, _, body = _get(server.url + path)
                        assert status == 200
                        assert body
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append((path, exc))

            threads = [
                threading.Thread(target=scrape, args=(path,))
                for path in ("/dashboard", "/timeline", "/metrics")
            ]
            for t in threads:
                t.start()
            for i in range(200):
                db.append("calls", {"caller": i % 7, "minutes": 1})
                if i % 50 == 0:
                    history.sample_now()
            for t in threads:
                t.join(timeout=10)
            assert not errors
            payload = history.timeline()
            assert payload["count"] >= 1
            # Shard lag series appear once a sharded sample landed.
            assert payload["shards"]
        finally:
            db.observability.stop_serving()
            db.disable_observability()
            db.close()
