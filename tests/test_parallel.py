"""Tests for the sharded parallel maintenance engine and the config facade.

Covers partition inference (copy lineage -> PartitionSpec, the
UNPARTITIONABLE cases), the shard-determinism property (sharded N-worker
state must equal serial state after arbitrary interleaved batch appends,
for every workload generator — under the thread, serial, *and* process
executors), stable hash-routing (identical across interpreter runs and
hash seeds), portable plan/summary/snapshot specs (pickle round-trips,
worker replica reconstruction), the process executor's crash contract
(engine_errors_total + incident bundle + consistent watermarks), sharded
checkpoint/restore (including cross-engine), the serial-shard fallback
(warning + metric, for unpartitionable and non-portable views), snapshot
reads through MergedView, DatabaseConfig validation and the
deprecated-keyword shim, engine selection, and exporter lifetime
(close(), context manager, GC finalizer).
"""

import gc
import json
import os
import pickle
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BankingWorkload,
    ChronicleDatabase,
    CreditCardWorkload,
    DatabaseConfig,
    FrequentFlyerWorkload,
    SensorWorkload,
    StockWorkload,
    TelecomWorkload,
)
from repro.aggregates import COUNT, MAX, SUM, spec
from repro.algebra.ast import scan
from repro.algebra.plan import UNPARTITIONABLE, PartitionSpec, infer_partition
from repro.core.config import DatabaseConfig as ConfigAlias
from repro.errors import ConfigError, EngineError
from repro.obs import runtime as obs_runtime
from repro.algebra.plan import (
    build_schema,
    build_summary,
    is_portable,
    schema_spec,
    summary_spec,
)
from repro.aggregates.base import IncrementalAggregate
from repro.parallel import (
    NonPortableViewWarning,
    ShardedDatabase,
    ShardRouter,
    ShardUnitSpec,
    UnitReplica,
    UnpartitionableViewWarning,
    stable_hash,
)
from repro.relational.predicate import attr_cmp, attr_eq
from repro.sca.summarize import GroupBySummary


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


#: (workload class, grouping attribute, summed attribute) — one entry
#: per application domain shipped with the repro.
WORKLOADS = [
    (BankingWorkload, "acct", "cents"),
    (TelecomWorkload, "caller", "seconds"),
    (CreditCardWorkload, "card", "cents"),
    (FrequentFlyerWorkload, "acct", "miles"),
    (StockWorkload, "symbol", "shares"),
    (SensorWorkload, "sensor", "milli"),
]

VIEW_NAMES = ("by_key", "filtered", "grand")


def _build(workload_cls, key, value, config=None):
    """A database over *workload_cls*'s chronicle with three views:
    grouped, filtered-grouped (both partitionable), and a global
    aggregate (unpartitionable -> serial-shard fallback)."""
    db = ChronicleDatabase(config=config)
    workload = workload_cls(seed=7)
    db.create_chronicle(workload.NAME, workload.CHRONICLE_SCHEMA)
    chron = db.chronicle(workload.NAME)
    db.define_view(
        GroupBySummary(scan(chron), [key], [spec(SUM, value), spec(COUNT)]),
        name="by_key",
    )
    db.define_view(
        GroupBySummary(
            scan(chron).select(attr_cmp(value, ">", 10)),
            [key],
            [spec(COUNT), spec(MAX, value)],
        ),
        name="filtered",
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UnpartitionableViewWarning)
        db.define_view(
            GroupBySummary(scan(chron), [], [spec(SUM, value), spec(COUNT)]),
            name="grand",
        )
    return db, workload


def _state(db):
    return {
        name: sorted(tuple(row.values) for row in db.view(name).rows())
        for name in VIEW_NAMES
    }


# ---------------------------------------------------------------------------
# Partition inference
# ---------------------------------------------------------------------------


class TestPartitionInference:
    def _chronicles(self):
        db = ChronicleDatabase()
        db.create_chronicle("a", [("acct", "INT"), ("cents", "INT")])
        db.create_chronicle("b", [("acct", "INT"), ("fee", "INT")])
        return db.chronicle("a"), db.chronicle("b")

    def test_grouped_view_partitions_on_copied_key(self):
        a, _ = self._chronicles()
        summary = GroupBySummary(scan(a), ["acct"], [spec(SUM, "cents")])
        part = infer_partition(summary)
        assert isinstance(part, PartitionSpec)
        assert part.keys == {"a": ("acct",)}

    def test_select_and_union_preserve_lineage(self):
        a, b = self._chronicles()
        node = (
            scan(a)
            .select(attr_cmp("cents", ">", 0))
            .project(["sn", "acct", "cents"])
        )
        part = infer_partition(GroupBySummary(node, ["acct"], [spec(COUNT)]))
        assert part.keys == {"a": ("acct",)}
        union = scan(a).project(["sn", "acct"]).union(scan(b).project(["sn", "acct"]))
        part = infer_partition(GroupBySummary(union, ["acct"], [spec(COUNT)]))
        assert part.keys == {"a": ("acct",), "b": ("acct",)}

    def test_global_aggregate_is_unpartitionable(self):
        a, _ = self._chronicles()
        summary = GroupBySummary(scan(a), [], [spec(SUM, "cents")])
        assert infer_partition(summary) is UNPARTITIONABLE

    def test_seq_join_is_unpartitionable(self):
        a, b = self._chronicles()
        summary = GroupBySummary(
            scan(a).join(scan(b)), ["acct"], [spec(COUNT)]
        )
        assert infer_partition(summary) is UNPARTITIONABLE

    def test_aggregate_sourced_key_is_unpartitionable(self):
        # The grouping key must have copy lineage to the base; a key
        # that is itself an aggregate output cannot route records.
        a, _ = self._chronicles()
        summary = GroupBySummary(scan(a), ["cents"], [spec(COUNT)])
        part = infer_partition(summary)
        assert part is not UNPARTITIONABLE  # cents IS copied
        assert part.keys == {"a": ("cents",)}

    def test_spec_equality_and_canonical(self):
        s1 = PartitionSpec({"a": ("acct",), "b": ("acct",)})
        s2 = PartitionSpec({"b": ("acct",), "a": ("acct",)})
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1.canonical() == s2.canonical()


class TestShardRouter:
    def test_same_key_same_shard(self):
        spec_ = PartitionSpec({"a": ("acct",)})
        router = ShardRouter(spec_, shards=4)
        assert router.shard_of_key((42,)) == router.shard_of_key((42,))
        assert 0 <= router.shard_of_key((42,)) < 4


# ---------------------------------------------------------------------------
# Shard determinism (the ISSUE's property test)
# ---------------------------------------------------------------------------


class TestShardDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        workload_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        shards=st.integers(min_value=1, max_value=4),
        executor=st.sampled_from(["thread", "serial"]),
        batch_sizes=st.lists(
            st.integers(min_value=1, max_value=7), min_size=1, max_size=10
        ),
        window_cut=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_sharded_equals_serial(
        self, workload_index, shards, executor, batch_sizes, window_cut, data
    ):
        self._check(workload_index, shards, executor, batch_sizes, window_cut, data)

    @settings(max_examples=3, deadline=None)
    @given(
        workload_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        shards=st.integers(min_value=1, max_value=2),
        batch_sizes=st.lists(
            st.integers(min_value=1, max_value=5), min_size=1, max_size=6
        ),
        window_cut=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_sharded_equals_serial_process(
        self, workload_index, shards, batch_sizes, window_cut, data
    ):
        # Small example budget: every example spawns worker processes.
        self._check(workload_index, shards, "process", batch_sizes, window_cut, data)

    def _check(self, workload_index, shards, executor, batch_sizes, window_cut, data):
        workload_cls, key, value = WORKLOADS[workload_index]
        serial, workload = _build(workload_cls, key, value)
        sharded, _ = _build(
            workload_cls,
            key,
            value,
            config=DatabaseConfig(
                engine="sharded", shards=shards, executor=executor
            ),
        )
        try:
            records = list(workload.records(sum(batch_sizes)))
            batches, offset = [], 0
            for size in batch_sizes:
                batches.append(records[offset : offset + size])
                offset += size
            # Serial: one maintenance event per batch.  Sharded: the
            # same batches, but delivered through an arbitrary mix of
            # per-batch appends and coalesced ingest windows.
            for batch in batches:
                serial.append(workload.NAME, batch)
            offset = 0
            while offset < len(batches):
                size = data.draw(
                    st.integers(min_value=1, max_value=window_cut),
                    label="window",
                )
                window = batches[offset : offset + size]
                if len(window) == 1 and data.draw(st.booleans(), label="direct"):
                    sharded.append(workload.NAME, window[0])
                else:
                    sharded.ingest(workload.NAME, window)
                offset += size

            assert _state(serial) == _state(sharded)
            # Key-routed point reads agree with the serial engine.
            for row in serial.view("by_key").rows():
                view_key = row.values[: len([key])]
                assert sharded.view_value(
                    "by_key", view_key, f"sum_{value}"
                ) == serial.view_value("by_key", view_key, f"sum_{value}")
                break
            watermarks = sharded.watermarks()
            (serial_wm,) = [
                wm for k, wm in watermarks.items() if k.startswith("serial/")
            ]
            # A unit's watermark is the sequence number of the last
            # event routed to it: never ahead of admission, and the
            # final record's shard has absorbed exactly up to it.
            unit_wms = [
                wm for k, wm in watermarks.items() if not k.startswith("serial/")
            ]
            assert all(wm <= serial_wm for wm in unit_wms)
            assert max(unit_wms) == serial_wm
        finally:
            serial.close()
            sharded.close()


# ---------------------------------------------------------------------------
# Serial-shard fallback
# ---------------------------------------------------------------------------


class TestFallback:
    def test_unpartitionable_view_warns_and_counts(self):
        db = ChronicleDatabase(
            config=DatabaseConfig(engine="sharded", shards=2, observe=True)
        )
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            with pytest.warns(UnpartitionableViewWarning):
                db.define_view(
                    GroupBySummary(scan(chron), [], [spec(SUM, "minutes")]),
                    name="grand",
                )
            assert db.fallback_views == ("grand",)
            assert (
                db.observability.metrics.value("shard_fallback_total", view="grand")
                == 1
            )
            # The fallback view is maintained by the serial registry.
            db.append("calls", {"caller": 1, "minutes": 5})
            db.append("calls", {"caller": 2, "minutes": 7})
            assert db.view_value("grand", (), "sum_minutes") == 12
        finally:
            db.close()

    def test_fallback_warning_is_not_a_deprecation(self):
        # CI runs with -W error::DeprecationWarning; the fallback must
        # not trip that gate.
        assert not issubclass(UnpartitionableViewWarning, DeprecationWarning)
        assert issubclass(UnpartitionableViewWarning, UserWarning)

    def test_serial_engine_never_warns(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        chron = db.chronicle("calls")
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnpartitionableViewWarning)
            db.define_view(
                GroupBySummary(scan(chron), [], [spec(COUNT)]), name="grand"
            )


# ---------------------------------------------------------------------------
# Merged reads
# ---------------------------------------------------------------------------


class TestMergedView:
    def test_reads_union_all_shards(self):
        db, workload = _build(
            BankingWorkload,
            "acct",
            "cents",
            config=DatabaseConfig(engine="sharded", shards=3),
        )
        try:
            db.ingest("transactions", [list(workload.records(40))])
            view = db.view("by_key")
            rows = list(view.rows())
            assert len(rows) == len(view)
            assert {tuple(r.values) for r in iter(view)} == {
                tuple(r.values) for r in rows
            }
            some_key = rows[0].values[:1]
            assert view.lookup(some_key) is not None
            assert db.view_row("by_key", some_key) is not None
            table = view.to_table()
            assert len(table.rows) == len(rows)
        finally:
            db.close()

    def test_partitioned_views_listed(self):
        db, _ = _build(
            BankingWorkload,
            "acct",
            "cents",
            config=DatabaseConfig(engine="sharded", shards=2),
        )
        try:
            assert db.partitioned_views == ("by_key", "filtered")
            assert db.fallback_views == ("grand",)
            assert isinstance(db.stats, dict)
        finally:
            db.close()

    def test_late_view_materializes_from_history(self):
        db = ChronicleDatabase(config=DatabaseConfig(engine="sharded", shards=2))
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            db.append("calls", [{"caller": 1, "minutes": 5}, {"caller": 2, "minutes": 3}])
            db.append("calls", {"caller": 1, "minutes": 2})
            db.define_view(
                GroupBySummary(scan(chron), ["caller"], [spec(SUM, "minutes")]),
                name="usage",
            )
            assert db.view_value("usage", (1,), "sum_minutes") == 7
            db.append("calls", {"caller": 1, "minutes": 1})
            assert db.view_value("usage", (1,), "sum_minutes") == 8
        finally:
            db.close()


# ---------------------------------------------------------------------------
# DatabaseConfig and the facade
# ---------------------------------------------------------------------------


class TestDatabaseConfig:
    def test_defaults(self):
        config = DatabaseConfig()
        assert config.engine == "serial"
        assert config.shards == 4
        assert config.executor == "thread"
        assert config.prefilter_views and config.compile_views
        assert not config.observe

    def test_frozen(self):
        with pytest.raises(Exception):
            DatabaseConfig().engine = "sharded"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "quantum"},
            {"shards": 0},
            {"shards": -1},
            {"executor": "fork"},
            {"audit_mode": "loud"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            DatabaseConfig(**kwargs)

    def test_replace(self):
        config = DatabaseConfig().replace(engine="sharded", shards=2)
        assert (config.engine, config.shards) == ("sharded", 2)
        with pytest.raises(ConfigError):
            DatabaseConfig().replace(nonsense=True)

    def test_reexported_from_package_root(self):
        assert DatabaseConfig is ConfigAlias

    def test_database_exposes_config(self):
        config = DatabaseConfig(prefilter_views=False)
        db = ChronicleDatabase(config=config)
        assert db.config is config


class TestLegacyShim:
    def test_legacy_keywords_warn_and_apply(self):
        with pytest.deprecated_call():
            db = ChronicleDatabase(prefilter_views=False, compile_views=False)
        assert db.config.prefilter_views is False
        assert db.config.compile_views is False

    def test_legacy_keywords_merge_into_config(self):
        with pytest.deprecated_call():
            db = ChronicleDatabase(
                config=DatabaseConfig(shards=2), prefilter_views=False
            )
        assert db.config.shards == 2
        assert db.config.prefilter_views is False

    def test_config_only_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ChronicleDatabase(config=DatabaseConfig(prefilter_views=False))

    def test_query_view_alias(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        db.define_view(
            "DEFINE VIEW usage AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        db.append("calls", {"caller": 1, "minutes": 5})
        assert db.view_row("usage", (1,)) is not None
        with pytest.deprecated_call():
            row = db.query_view("usage", (1,))
        assert row == db.view_row("usage", (1,))


class TestEngineSelection:
    def test_sharded_config_builds_sharded_database(self):
        db = ChronicleDatabase(config=DatabaseConfig(engine="sharded"))
        try:
            assert isinstance(db, ShardedDatabase)
        finally:
            db.close()

    def test_serial_config_builds_plain_database(self):
        db = ChronicleDatabase()
        assert not isinstance(db, ShardedDatabase)

    def test_direct_construction_forces_engine(self):
        db = ShardedDatabase(config=DatabaseConfig(shards=2))
        try:
            assert db.config.engine == "sharded"
        finally:
            db.close()

    def test_ingest_on_serial_engine(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        db.define_view(
            "DEFINE VIEW usage AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        admitted = db.ingest(
            "calls",
            [
                [{"caller": 1, "minutes": 5}],
                [{"caller": 1, "minutes": 2}, {"caller": 2, "minutes": 1}],
            ],
        )
        assert admitted == 3
        assert db.view_value("usage", (1,), "total") == 7


# ---------------------------------------------------------------------------
# Stable routing (PYTHONHASHSEED-independent)
# ---------------------------------------------------------------------------


_ROUTING_PROBE = """
import sys
sys.path.insert(0, {src!r})
from repro.parallel import ShardRouter, stable_hash
from repro.algebra.plan import PartitionSpec
router = ShardRouter(PartitionSpec({{"a": ("acct",)}}), shards=8)
keys = [("alice",), ("bob",), (42,), (3.5, "x"), (None,), (True, 7)]
print(",".join(str(router.shard_of_key(k)) for k in keys))
"""


class TestStableRouting:
    def test_routing_identical_across_interpreter_runs(self):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        outputs = set()
        for seed in ("0", "12345", "random"):
            result = subprocess.run(
                [sys.executable, "-c", _ROUTING_PROBE.format(src=os.path.abspath(src))],
                env={**os.environ, "PYTHONHASHSEED": seed},
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, outputs

    def test_cross_type_equal_keys_hash_identically(self):
        # The builtin hash guarantees hash(1) == hash(1.0) == hash(True);
        # routing must preserve that so lookups keyed either way agree.
        assert stable_hash((1,)) == stable_hash((1.0,)) == stable_hash((True,))
        assert stable_hash((0,)) == stable_hash((0.0,)) == stable_hash((False,))
        assert stable_hash((1.5,)) != stable_hash((1,))

    def test_stable_hash_is_deterministic_value(self):
        # Pin a few values: a change here silently strands every existing
        # checkpoint's shard placement.
        import zlib

        assert stable_hash(("alice",)) == zlib.crc32(b"('alice',)")
        assert stable_hash((42,)) == zlib.crc32(b"(42,)")


# ---------------------------------------------------------------------------
# Portable specs (pickle round-trips) and worker replicas
# ---------------------------------------------------------------------------


class TestPortableSpecs:
    def test_partition_spec_pickles(self):
        spec_ = PartitionSpec({"a": ("acct",), "b": ("acct", "branch")})
        clone = pickle.loads(pickle.dumps(spec_))
        assert clone == spec_
        assert clone.canonical() == spec_.canonical()

    def test_schema_spec_round_trips(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        schema = db.chronicle("calls").schema
        spec_ = pickle.loads(pickle.dumps(schema_spec(schema)))
        rebuilt = build_schema(spec_)
        assert rebuilt.names == schema.names
        assert rebuilt.sequence_attribute == schema.sequence_attribute
        assert [a.domain for a in rebuilt.attributes] == [
            a.domain for a in schema.attributes
        ]

    def test_summary_spec_round_trips(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        chron = db.chronicle("calls")
        summary = GroupBySummary(
            scan(chron).select(attr_cmp("minutes", ">", 3)),
            ["caller"],
            [spec(SUM, "minutes"), spec(COUNT)],
        )
        assert is_portable(summary)
        payload = pickle.loads(pickle.dumps(summary_spec(summary)))
        rebuilt = build_summary(payload, {"calls": chron})
        assert rebuilt.output_schema.names == summary.output_schema.names
        assert [s.output for s in rebuilt.aggregates] == [
            s.output for s in summary.aggregates
        ]

    def test_shard_snapshot_round_trips_through_a_replica(self):
        db = ChronicleDatabase(
            config=DatabaseConfig(engine="sharded", shards=2, executor="serial")
        )
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            db.define_view(
                GroupBySummary(
                    scan(chron), ["caller"], [spec(SUM, "minutes"), spec(COUNT)]
                ),
                name="usage",
            )
            for i in range(30):
                db.append("calls", {"caller": i % 5, "minutes": i})
            (shard_group,) = db.shard_groups
            for unit in shard_group.units:
                snapshot = pickle.loads(pickle.dumps(unit.spec()))
                assert isinstance(snapshot, ShardUnitSpec)
                assert snapshot.watermark == unit.watermark
                replica = UnitReplica(snapshot)
                original = unit.registry.view("usage")
                rebuilt = replica.registry.view("usage")
                assert sorted(
                    tuple(r.values) for r in rebuilt.rows()
                ) == sorted(tuple(r.values) for r in original.rows())
                assert sorted(rebuilt.state_export()) == sorted(
                    original.state_export()
                )
        finally:
            db.close()


# ---------------------------------------------------------------------------
# The process executor
# ---------------------------------------------------------------------------


def _sharded_process_db(shards=2):
    db = ChronicleDatabase(
        config=DatabaseConfig(engine="sharded", shards=shards, executor="process")
    )
    db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
    chron = db.chronicle("calls")
    db.define_view(
        GroupBySummary(scan(chron), ["caller"], [spec(SUM, "minutes"), spec(COUNT)]),
        name="usage",
    )
    return db


class TestProcessExecutor:
    def test_process_executor_is_accepted(self):
        db = ChronicleDatabase(
            config=DatabaseConfig(engine="sharded", shards=2, executor="process")
        )
        try:
            assert db._maintainer.executor == "process"
        finally:
            db.close()

    def test_maintains_views_and_reads_merge(self):
        db = _sharded_process_db()
        try:
            for i in range(20):
                db.append("calls", {"caller": i % 4, "minutes": i})
            assert db.view_value("usage", (1,), "sum_minutes") == 1 + 5 + 9 + 13 + 17
            assert len(db.view("usage")) == 4
            marks = db.watermarks()
            assert marks["kc0:0"] == marks["serial/default"] or (
                marks["kc0:1"] == marks["serial/default"]
            )
        finally:
            db.close()

    def test_worker_crash_contract(self, tmp_path):
        db = _sharded_process_db()
        obs = db.enable_observability(audit="off", incident_dir=str(tmp_path))
        try:
            db.ingest("calls", [[{"caller": i % 4, "minutes": i}] for i in range(8)])
            marks_before = dict(db.watermarks())
            backend = db._maintainer._backend
            for pool in backend._pools:
                if pool is not None:
                    for pid in list(pool._processes):
                        os.kill(pid, signal.SIGKILL)
            time.sleep(0.3)
            with pytest.raises(EngineError, match="worker process died"):
                db.append("calls", {"caller": 1, "minutes": 99})
            assert obs.metrics.value("engine_errors_total") == 1
            bundles = list(tmp_path.glob("incident-*-shard-worker-error.json"))
            assert len(bundles) == 1
            bundle = json.loads(bundles[0].read_text())
            assert "worker process died" in bundle["context"]["error"]
            # The failed window never became visible: shard watermarks
            # stand where they were, admission has moved ahead (lag).
            marks_after = db.watermarks()
            for label in ("kc0:0", "kc0:1"):
                assert marks_after[label] == marks_before[label]
            assert marks_after["serial/default"] > marks_before["serial/default"]
            # The replica's state died with the process: later windows
            # routed there must refuse rather than diverge silently —
            # first discovering the remaining dead slot, then refusing
            # outright once every slot is marked broken.
            with pytest.raises(EngineError, match="worker process died"):
                db.ingest(
                    "calls", [[{"caller": c, "minutes": 1}] for c in range(4)]
                )
            with pytest.raises(EngineError, match="died previously"):
                db.ingest(
                    "calls", [[{"caller": c, "minutes": 1}] for c in range(4)]
                )
        finally:
            obs.uninstall()
            db.close()

    def test_nonportable_view_falls_back_to_serial_shard(self):
        class LocalSum(IncrementalAggregate):
            # A process-local class: its summary spec cannot unpickle in
            # a worker, so the view must stay on the serial shard.
            name = "LOCALSUM"

            def initial(self):
                return 0

            def step(self, state, value):
                return state + value

            def merge(self, left, right):
                return left + right

            def finalize(self, state):
                return state

        db = ChronicleDatabase(
            config=DatabaseConfig(engine="sharded", shards=2, executor="process")
        )
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            summary = GroupBySummary(
                scan(chron), ["caller"], [spec(LocalSum(), "minutes")]
            )
            assert not is_portable(summary)
            with pytest.warns(NonPortableViewWarning):
                db.define_view(summary, name="local")
            assert "local" in db.fallback_views
            db.append("calls", {"caller": 1, "minutes": 5})
            db.append("calls", {"caller": 1, "minutes": 2})
            assert db.view_value("local", (1,), "localsum_minutes") == 7
        finally:
            db.close()

    def test_views_added_and_dropped_after_workers_install(self):
        db = _sharded_process_db()
        try:
            for i in range(10):
                db.append("calls", {"caller": i % 3, "minutes": i})
            chron = db.chronicle("calls")
            # Workers hold replicas now; the late view's materialized
            # state (from retained history) must ship to them too.
            db.define_view(
                GroupBySummary(
                    scan(chron).select(attr_cmp("minutes", ">", 4)),
                    ["caller"],
                    [spec(COUNT)],
                ),
                name="late",
            )
            # History: caller 0 saw minutes {0, 3, 6, 9}; two exceed 4.
            assert db.view_value("late", (0,), "count") == 2
            db.append("calls", {"caller": 0, "minutes": 9})
            assert db.view_value("late", (0,), "count") == 3
            db.drop_view("late")
            db.append("calls", {"caller": 0, "minutes": 11})
            assert "late" not in db.partitioned_views
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Sharded checkpoint/restore (un-gated by stable routing)
# ---------------------------------------------------------------------------


class TestShardedCheckpoint:
    def _fill(self, db):
        for i in range(24):
            db.append("calls", {"caller": i % 5, "minutes": i})

    def _usage(self, db):
        return sorted(tuple(r.values) for r in db.view("usage").rows())

    def _fresh(self, executor=None, engine="sharded"):
        if engine == "sharded":
            config = DatabaseConfig(engine="sharded", shards=2, executor=executor)
        else:
            config = DatabaseConfig(engine="serial")
        db = ChronicleDatabase(config=config)
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        chron = db.chronicle("calls")
        db.define_view(
            GroupBySummary(
                scan(chron), ["caller"], [spec(SUM, "minutes"), spec(COUNT)]
            ),
            name="usage",
        )
        return db

    def test_round_trip_same_engine(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        db = self._fresh("thread")
        try:
            self._fill(db)
            before = self._usage(db)
            count = db.view("usage").maintenance_count
            db.checkpoint(path)
        finally:
            db.close()
        db2 = self._fresh("thread")
        try:
            db2.restore(path)
            assert self._usage(db2) == before
            assert db2.view("usage").maintenance_count == count
            # The restored database continues: watermark advanced, new
            # appends route to the same shards the keys lived on.
            db2.append("calls", {"caller": 2, "minutes": 100})
            assert db2.view_value("usage", (2,), "sum_minutes") == sum(
                i for i in range(24) if i % 5 == 2
            ) + 100
        finally:
            db2.close()

    def test_cross_engine_both_directions(self, tmp_path):
        sharded_path = str(tmp_path / "sharded.json")
        serial_path = str(tmp_path / "serial.json")
        db = self._fresh("serial")
        try:
            self._fill(db)
            expected = self._usage(db)
            db.checkpoint(sharded_path)
        finally:
            db.close()
        # sharded checkpoint -> serial engine
        serial_db = self._fresh(engine="serial")
        try:
            serial_db.restore(sharded_path)
            assert self._usage(serial_db) == expected
            serial_db.checkpoint(serial_path)
        finally:
            serial_db.close()
        # serial checkpoint -> sharded engine
        back = self._fresh("serial")
        try:
            back.restore(serial_path)
            assert self._usage(back) == expected
        finally:
            back.close()

    def test_restore_reinstalls_process_replicas(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        db = self._fresh("process")
        try:
            self._fill(db)
            before = self._usage(db)
            db.checkpoint(path)
            db2 = self._fresh("process")
            try:
                db2.restore(path)
                db2.append("calls", {"caller": 3, "minutes": 50})
                db.append("calls", {"caller": 3, "minutes": 50})
                assert self._usage(db2) == self._usage(db)
                assert self._usage(db2) != before
            finally:
                db2.close()
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Exporter lifetime (the serve_metrics leak fix)
# ---------------------------------------------------------------------------


def _assert_down(url):
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(url + "/metrics", timeout=2)


class TestExporterLifetime:
    def test_close_stops_serving_thread(self):
        db = ChronicleDatabase(config=DatabaseConfig(observe=True))
        server = db.serve_metrics(port=0)
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as response:
            assert response.status == 200
        db.close()
        _assert_down(server.url)

    def test_close_is_idempotent(self):
        db = ChronicleDatabase(config=DatabaseConfig(observe=True))
        db.serve_metrics(port=0)
        db.close()
        db.close()

    def test_context_manager_scopes_exporter(self):
        with ChronicleDatabase(config=DatabaseConfig(observe=True)) as db:
            server = db.serve_metrics(port=0)
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
                assert r.status == 200
        _assert_down(server.url)

    def test_gc_stops_abandoned_exporter(self):
        db = ChronicleDatabase(config=DatabaseConfig(observe=True))
        server = db.serve_metrics(port=0)
        url = server.url
        obs_runtime.ACTIVE = None  # drop the runtime's reference too
        del server
        del db
        gc.collect()
        _assert_down(url)
