"""Tests for the sharded parallel maintenance engine and the config facade.

Covers partition inference (copy lineage -> PartitionSpec, the
UNPARTITIONABLE cases), the shard-determinism property (sharded N-worker
state must equal serial state after arbitrary interleaved batch appends,
for every workload generator), the serial-shard fallback (warning +
metric), snapshot reads through MergedView, DatabaseConfig validation
and the deprecated-keyword shim, engine selection, the gated process
executor and checkpoint paths, and exporter lifetime (close(), context
manager, GC finalizer).
"""

import gc
import urllib.error
import urllib.request
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BankingWorkload,
    ChronicleDatabase,
    CreditCardWorkload,
    DatabaseConfig,
    FrequentFlyerWorkload,
    SensorWorkload,
    StockWorkload,
    TelecomWorkload,
)
from repro.aggregates import COUNT, MAX, SUM, spec
from repro.algebra.ast import scan
from repro.algebra.plan import UNPARTITIONABLE, PartitionSpec, infer_partition
from repro.core.config import DatabaseConfig as ConfigAlias
from repro.errors import ConfigError, EngineError
from repro.obs import runtime as obs_runtime
from repro.parallel import (
    ShardedDatabase,
    ShardRouter,
    UnpartitionableViewWarning,
)
from repro.relational.predicate import attr_cmp, attr_eq
from repro.sca.summarize import GroupBySummary


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


#: (workload class, grouping attribute, summed attribute) — one entry
#: per application domain shipped with the repro.
WORKLOADS = [
    (BankingWorkload, "acct", "cents"),
    (TelecomWorkload, "caller", "seconds"),
    (CreditCardWorkload, "card", "cents"),
    (FrequentFlyerWorkload, "acct", "miles"),
    (StockWorkload, "symbol", "shares"),
    (SensorWorkload, "sensor", "milli"),
]

VIEW_NAMES = ("by_key", "filtered", "grand")


def _build(workload_cls, key, value, config=None):
    """A database over *workload_cls*'s chronicle with three views:
    grouped, filtered-grouped (both partitionable), and a global
    aggregate (unpartitionable -> serial-shard fallback)."""
    db = ChronicleDatabase(config=config)
    workload = workload_cls(seed=7)
    db.create_chronicle(workload.NAME, workload.CHRONICLE_SCHEMA)
    chron = db.chronicle(workload.NAME)
    db.define_view(
        GroupBySummary(scan(chron), [key], [spec(SUM, value), spec(COUNT)]),
        name="by_key",
    )
    db.define_view(
        GroupBySummary(
            scan(chron).select(attr_cmp(value, ">", 10)),
            [key],
            [spec(COUNT), spec(MAX, value)],
        ),
        name="filtered",
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UnpartitionableViewWarning)
        db.define_view(
            GroupBySummary(scan(chron), [], [spec(SUM, value), spec(COUNT)]),
            name="grand",
        )
    return db, workload


def _state(db):
    return {
        name: sorted(tuple(row.values) for row in db.view(name).rows())
        for name in VIEW_NAMES
    }


# ---------------------------------------------------------------------------
# Partition inference
# ---------------------------------------------------------------------------


class TestPartitionInference:
    def _chronicles(self):
        db = ChronicleDatabase()
        db.create_chronicle("a", [("acct", "INT"), ("cents", "INT")])
        db.create_chronicle("b", [("acct", "INT"), ("fee", "INT")])
        return db.chronicle("a"), db.chronicle("b")

    def test_grouped_view_partitions_on_copied_key(self):
        a, _ = self._chronicles()
        summary = GroupBySummary(scan(a), ["acct"], [spec(SUM, "cents")])
        part = infer_partition(summary)
        assert isinstance(part, PartitionSpec)
        assert part.keys == {"a": ("acct",)}

    def test_select_and_union_preserve_lineage(self):
        a, b = self._chronicles()
        node = (
            scan(a)
            .select(attr_cmp("cents", ">", 0))
            .project(["sn", "acct", "cents"])
        )
        part = infer_partition(GroupBySummary(node, ["acct"], [spec(COUNT)]))
        assert part.keys == {"a": ("acct",)}
        union = scan(a).project(["sn", "acct"]).union(scan(b).project(["sn", "acct"]))
        part = infer_partition(GroupBySummary(union, ["acct"], [spec(COUNT)]))
        assert part.keys == {"a": ("acct",), "b": ("acct",)}

    def test_global_aggregate_is_unpartitionable(self):
        a, _ = self._chronicles()
        summary = GroupBySummary(scan(a), [], [spec(SUM, "cents")])
        assert infer_partition(summary) is UNPARTITIONABLE

    def test_seq_join_is_unpartitionable(self):
        a, b = self._chronicles()
        summary = GroupBySummary(
            scan(a).join(scan(b)), ["acct"], [spec(COUNT)]
        )
        assert infer_partition(summary) is UNPARTITIONABLE

    def test_aggregate_sourced_key_is_unpartitionable(self):
        # The grouping key must have copy lineage to the base; a key
        # that is itself an aggregate output cannot route records.
        a, _ = self._chronicles()
        summary = GroupBySummary(scan(a), ["cents"], [spec(COUNT)])
        part = infer_partition(summary)
        assert part is not UNPARTITIONABLE  # cents IS copied
        assert part.keys == {"a": ("cents",)}

    def test_spec_equality_and_canonical(self):
        s1 = PartitionSpec({"a": ("acct",), "b": ("acct",)})
        s2 = PartitionSpec({"b": ("acct",), "a": ("acct",)})
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1.canonical() == s2.canonical()


class TestShardRouter:
    def test_same_key_same_shard(self):
        spec_ = PartitionSpec({"a": ("acct",)})
        router = ShardRouter(spec_, shards=4)
        assert router.shard_of_key((42,)) == router.shard_of_key((42,))
        assert 0 <= router.shard_of_key((42,)) < 4


# ---------------------------------------------------------------------------
# Shard determinism (the ISSUE's property test)
# ---------------------------------------------------------------------------


class TestShardDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        workload_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        shards=st.integers(min_value=1, max_value=4),
        executor=st.sampled_from(["thread", "serial"]),
        batch_sizes=st.lists(
            st.integers(min_value=1, max_value=7), min_size=1, max_size=10
        ),
        window_cut=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_sharded_equals_serial(
        self, workload_index, shards, executor, batch_sizes, window_cut, data
    ):
        workload_cls, key, value = WORKLOADS[workload_index]
        serial, workload = _build(workload_cls, key, value)
        sharded, _ = _build(
            workload_cls,
            key,
            value,
            config=DatabaseConfig(
                engine="sharded", shards=shards, executor=executor
            ),
        )
        try:
            records = list(workload.records(sum(batch_sizes)))
            batches, offset = [], 0
            for size in batch_sizes:
                batches.append(records[offset : offset + size])
                offset += size
            # Serial: one maintenance event per batch.  Sharded: the
            # same batches, but delivered through an arbitrary mix of
            # per-batch appends and coalesced ingest windows.
            for batch in batches:
                serial.append(workload.NAME, batch)
            offset = 0
            while offset < len(batches):
                size = data.draw(
                    st.integers(min_value=1, max_value=window_cut),
                    label="window",
                )
                window = batches[offset : offset + size]
                if len(window) == 1 and data.draw(st.booleans(), label="direct"):
                    sharded.append(workload.NAME, window[0])
                else:
                    sharded.ingest(workload.NAME, window)
                offset += size

            assert _state(serial) == _state(sharded)
            # Key-routed point reads agree with the serial engine.
            for row in serial.view("by_key").rows():
                view_key = row.values[: len([key])]
                assert sharded.view_value(
                    "by_key", view_key, f"sum_{value}"
                ) == serial.view_value("by_key", view_key, f"sum_{value}")
                break
            watermarks = sharded.watermarks()
            (serial_wm,) = [
                wm for k, wm in watermarks.items() if k.startswith("serial/")
            ]
            # A unit's watermark is the sequence number of the last
            # event routed to it: never ahead of admission, and the
            # final record's shard has absorbed exactly up to it.
            unit_wms = [
                wm for k, wm in watermarks.items() if not k.startswith("serial/")
            ]
            assert all(wm <= serial_wm for wm in unit_wms)
            assert max(unit_wms) == serial_wm
        finally:
            serial.close()
            sharded.close()


# ---------------------------------------------------------------------------
# Serial-shard fallback
# ---------------------------------------------------------------------------


class TestFallback:
    def test_unpartitionable_view_warns_and_counts(self):
        db = ChronicleDatabase(
            config=DatabaseConfig(engine="sharded", shards=2, observe=True)
        )
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            with pytest.warns(UnpartitionableViewWarning):
                db.define_view(
                    GroupBySummary(scan(chron), [], [spec(SUM, "minutes")]),
                    name="grand",
                )
            assert db.fallback_views == ("grand",)
            assert (
                db.observability.metrics.value("shard_fallback_total", view="grand")
                == 1
            )
            # The fallback view is maintained by the serial registry.
            db.append("calls", {"caller": 1, "minutes": 5})
            db.append("calls", {"caller": 2, "minutes": 7})
            assert db.view_value("grand", (), "sum_minutes") == 12
        finally:
            db.close()

    def test_fallback_warning_is_not_a_deprecation(self):
        # CI runs with -W error::DeprecationWarning; the fallback must
        # not trip that gate.
        assert not issubclass(UnpartitionableViewWarning, DeprecationWarning)
        assert issubclass(UnpartitionableViewWarning, UserWarning)

    def test_serial_engine_never_warns(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        chron = db.chronicle("calls")
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnpartitionableViewWarning)
            db.define_view(
                GroupBySummary(scan(chron), [], [spec(COUNT)]), name="grand"
            )


# ---------------------------------------------------------------------------
# Merged reads
# ---------------------------------------------------------------------------


class TestMergedView:
    def test_reads_union_all_shards(self):
        db, workload = _build(
            BankingWorkload,
            "acct",
            "cents",
            config=DatabaseConfig(engine="sharded", shards=3),
        )
        try:
            db.ingest("transactions", [list(workload.records(40))])
            view = db.view("by_key")
            rows = list(view.rows())
            assert len(rows) == len(view)
            assert {tuple(r.values) for r in iter(view)} == {
                tuple(r.values) for r in rows
            }
            some_key = rows[0].values[:1]
            assert view.lookup(some_key) is not None
            assert db.view_row("by_key", some_key) is not None
            table = view.to_table()
            assert len(table.rows) == len(rows)
        finally:
            db.close()

    def test_partitioned_views_listed(self):
        db, _ = _build(
            BankingWorkload,
            "acct",
            "cents",
            config=DatabaseConfig(engine="sharded", shards=2),
        )
        try:
            assert db.partitioned_views == ("by_key", "filtered")
            assert db.fallback_views == ("grand",)
            assert isinstance(db.stats, dict)
        finally:
            db.close()

    def test_late_view_materializes_from_history(self):
        db = ChronicleDatabase(config=DatabaseConfig(engine="sharded", shards=2))
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            db.append("calls", [{"caller": 1, "minutes": 5}, {"caller": 2, "minutes": 3}])
            db.append("calls", {"caller": 1, "minutes": 2})
            db.define_view(
                GroupBySummary(scan(chron), ["caller"], [spec(SUM, "minutes")]),
                name="usage",
            )
            assert db.view_value("usage", (1,), "sum_minutes") == 7
            db.append("calls", {"caller": 1, "minutes": 1})
            assert db.view_value("usage", (1,), "sum_minutes") == 8
        finally:
            db.close()


# ---------------------------------------------------------------------------
# DatabaseConfig and the facade
# ---------------------------------------------------------------------------


class TestDatabaseConfig:
    def test_defaults(self):
        config = DatabaseConfig()
        assert config.engine == "serial"
        assert config.shards == 4
        assert config.executor == "thread"
        assert config.prefilter_views and config.compile_views
        assert not config.observe

    def test_frozen(self):
        with pytest.raises(Exception):
            DatabaseConfig().engine = "sharded"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "quantum"},
            {"shards": 0},
            {"shards": -1},
            {"executor": "fork"},
            {"audit_mode": "loud"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            DatabaseConfig(**kwargs)

    def test_replace(self):
        config = DatabaseConfig().replace(engine="sharded", shards=2)
        assert (config.engine, config.shards) == ("sharded", 2)
        with pytest.raises(ConfigError):
            DatabaseConfig().replace(nonsense=True)

    def test_reexported_from_package_root(self):
        assert DatabaseConfig is ConfigAlias

    def test_database_exposes_config(self):
        config = DatabaseConfig(prefilter_views=False)
        db = ChronicleDatabase(config=config)
        assert db.config is config


class TestLegacyShim:
    def test_legacy_keywords_warn_and_apply(self):
        with pytest.deprecated_call():
            db = ChronicleDatabase(prefilter_views=False, compile_views=False)
        assert db.config.prefilter_views is False
        assert db.config.compile_views is False

    def test_legacy_keywords_merge_into_config(self):
        with pytest.deprecated_call():
            db = ChronicleDatabase(
                config=DatabaseConfig(shards=2), prefilter_views=False
            )
        assert db.config.shards == 2
        assert db.config.prefilter_views is False

    def test_config_only_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ChronicleDatabase(config=DatabaseConfig(prefilter_views=False))

    def test_query_view_alias(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        db.define_view(
            "DEFINE VIEW usage AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        db.append("calls", {"caller": 1, "minutes": 5})
        assert db.view_row("usage", (1,)) is not None
        with pytest.deprecated_call():
            row = db.query_view("usage", (1,))
        assert row == db.view_row("usage", (1,))


class TestEngineSelection:
    def test_sharded_config_builds_sharded_database(self):
        db = ChronicleDatabase(config=DatabaseConfig(engine="sharded"))
        try:
            assert isinstance(db, ShardedDatabase)
        finally:
            db.close()

    def test_serial_config_builds_plain_database(self):
        db = ChronicleDatabase()
        assert not isinstance(db, ShardedDatabase)

    def test_direct_construction_forces_engine(self):
        db = ShardedDatabase(config=DatabaseConfig(shards=2))
        try:
            assert db.config.engine == "sharded"
        finally:
            db.close()

    def test_ingest_on_serial_engine(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        db.define_view(
            "DEFINE VIEW usage AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        admitted = db.ingest(
            "calls",
            [
                [{"caller": 1, "minutes": 5}],
                [{"caller": 1, "minutes": 2}, {"caller": 2, "minutes": 1}],
            ],
        )
        assert admitted == 3
        assert db.view_value("usage", (1,), "total") == 7


class TestGatedPaths:
    def test_process_executor_is_gated(self):
        with pytest.raises(EngineError):
            ChronicleDatabase(
                config=DatabaseConfig(engine="sharded", executor="process")
            )

    def test_checkpoint_is_gated(self, tmp_path):
        db = ChronicleDatabase(config=DatabaseConfig(engine="sharded"))
        try:
            with pytest.raises(EngineError):
                db.checkpoint(str(tmp_path / "ckpt"))
            with pytest.raises(EngineError):
                db.restore(str(tmp_path / "ckpt"))
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Exporter lifetime (the serve_metrics leak fix)
# ---------------------------------------------------------------------------


def _assert_down(url):
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(url + "/metrics", timeout=2)


class TestExporterLifetime:
    def test_close_stops_serving_thread(self):
        db = ChronicleDatabase(config=DatabaseConfig(observe=True))
        server = db.serve_metrics(port=0)
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as response:
            assert response.status == 200
        db.close()
        _assert_down(server.url)

    def test_close_is_idempotent(self):
        db = ChronicleDatabase(config=DatabaseConfig(observe=True))
        db.serve_metrics(port=0)
        db.close()
        db.close()

    def test_context_manager_scopes_exporter(self):
        with ChronicleDatabase(config=DatabaseConfig(observe=True)) as db:
            server = db.serve_metrics(port=0)
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
                assert r.status == 200
        _assert_down(server.url)

    def test_gc_stops_abandoned_exporter(self):
        db = ChronicleDatabase(config=DatabaseConfig(observe=True))
        server = db.serve_metrics(port=0)
        url = server.url
        obs_runtime.ACTIVE = None  # drop the runtime's reference too
        del server
        del db
        gc.collect()
        _assert_down(url)
