"""Tests for repro.relational.relation.Relation."""

import pytest

from repro.errors import IntegrityError, KeyViolationError, UnknownAttributeError
from repro.relational.predicate import attr_cmp, attr_eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import Row


def customers():
    relation = Relation(
        "customers",
        Schema.build(("acct", "INT"), ("name", "STR"), ("state", "STR"), key=["acct"]),
    )
    relation.insert({"acct": 1, "name": "alice", "state": "NJ"})
    relation.insert({"acct": 2, "name": "bob", "state": "NY"})
    relation.insert({"acct": 3, "name": "carol", "state": "NJ"})
    return relation


class TestInsert:
    def test_insert_mapping(self):
        relation = customers()
        assert len(relation) == 3

    def test_insert_positional(self):
        relation = Relation("r", Schema.build(("a", "INT"), ("b", "STR")))
        relation.insert([1, "x"])
        assert list(relation)[0].values == (1, "x")

    def test_insert_row(self):
        schema = Schema.build(("a", "INT"))
        relation = Relation("r", schema)
        relation.insert(Row(schema, [5]))
        assert len(relation) == 1

    def test_duplicate_key_rejected(self):
        relation = customers()
        with pytest.raises(KeyViolationError):
            relation.insert({"acct": 1, "name": "dup", "state": "CA"})

    def test_insert_many(self):
        relation = Relation("r", Schema.build(("a", "INT")))
        relation.insert_many([{"a": 1}, {"a": 2}])
        assert len(relation) == 2


class TestLookup:
    def test_lookup_key(self):
        assert customers().lookup_key((2,))["name"] == "bob"

    def test_lookup_key_missing(self):
        assert customers().lookup_key((99,)) is None

    def test_lookup_key_without_key(self):
        relation = Relation("r", Schema.build(("a", "INT")))
        with pytest.raises(IntegrityError):
            relation.lookup_key((1,))

    def test_lookup_via_scan(self):
        rows = customers().lookup(["state"], "NJ")
        assert sorted(r["name"] for r in rows) == ["alice", "carol"]

    def test_lookup_via_secondary_index(self):
        relation = customers()
        relation.create_index(["state"])
        rows = relation.lookup(["state"], "NJ")
        assert sorted(r["name"] for r in rows) == ["alice", "carol"]

    def test_lookup_key_path(self):
        rows = customers().lookup(["acct"], 3)
        assert [r["name"] for r in rows] == ["carol"]

    def test_select(self):
        rows = customers().select(attr_cmp("acct", ">=", 2))
        assert len(rows) == 2


class TestDelete:
    def test_delete_key(self):
        relation = customers()
        assert relation.delete_key((1,))
        assert len(relation) == 2
        assert relation.lookup_key((1,)) is None

    def test_delete_key_missing(self):
        assert not customers().delete_key((42,))

    def test_delete_where(self):
        relation = customers()
        deleted = relation.delete_where(attr_eq("state", "NJ"))
        assert deleted == 2
        assert len(relation) == 1

    def test_reinsert_after_delete(self):
        relation = customers()
        relation.delete_key((1,))
        relation.insert({"acct": 1, "name": "alice2", "state": "CA"})
        assert relation.lookup_key((1,))["name"] == "alice2"

    def test_compaction_preserves_contents(self):
        relation = Relation("r", Schema.build(("a", "INT"), key=["a"]))
        for i in range(200):
            relation.insert({"a": i})
        for i in range(0, 200, 2):
            relation.delete_key((i,))
        assert sorted(r["a"] for r in relation) == list(range(1, 200, 2))
        assert relation.lookup_key((151,))["a"] == 151


class TestUpdate:
    def test_update_key(self):
        relation = customers()
        assert relation.update_key((1,), state="CA")
        assert relation.lookup_key((1,))["state"] == "CA"

    def test_update_key_missing(self):
        assert not customers().update_key((42,), state="CA")

    def test_update_where(self):
        relation = customers()
        assert relation.update_where(attr_eq("state", "NJ"), state="DE") == 2
        assert len(relation.lookup(["state"], "DE")) == 2

    def test_update_changes_key(self):
        relation = customers()
        relation.update_key((1,), acct=10)
        assert relation.lookup_key((1,)) is None
        assert relation.lookup_key((10,))["name"] == "alice"

    def test_update_to_duplicate_key_rejected(self):
        relation = customers()
        with pytest.raises(KeyViolationError):
            relation.update_key((1,), acct=2)

    def test_update_maintains_secondary_index(self):
        relation = customers()
        relation.create_index(["state"])
        relation.update_key((1,), state="TX")
        assert [r["name"] for r in relation.lookup(["state"], "TX")] == ["alice"]
        assert sorted(r["name"] for r in relation.lookup(["state"], "NJ")) == ["carol"]


class TestIndexes:
    def test_create_index_on_existing_rows(self):
        relation = customers()
        relation.create_index(["name"])
        assert relation.has_index(["name"])
        assert relation.lookup(["name"], "bob")[0]["acct"] == 2

    def test_create_index_unknown_attr(self):
        with pytest.raises(UnknownAttributeError):
            customers().create_index(["zzz"])

    def test_create_index_idempotent(self):
        relation = customers()
        relation.create_index(["state"])
        relation.create_index(["state"])
        assert relation.has_index(["state"])

    def test_ordered_index(self):
        relation = customers()
        relation.create_index(["acct"], ordered=True)
        assert relation.lookup(["acct"], 2)[0]["name"] == "bob"

    def test_has_unique_index_via_key(self):
        assert customers().has_unique_index(["acct"])

    def test_has_unique_index_via_secondary(self):
        relation = customers()
        assert not relation.has_unique_index(["name"])
        relation.create_index(["name"], unique=True)
        assert relation.has_unique_index(["name"])

    def test_non_unique_index_not_advertised(self):
        relation = customers()
        relation.create_index(["state"])
        assert not relation.has_unique_index(["state"])

    def test_index_maintained_on_delete(self):
        relation = customers()
        relation.create_index(["state"])
        relation.delete_key((1,))
        assert sorted(r["name"] for r in relation.lookup(["state"], "NJ")) == ["carol"]


class TestMisc:
    def test_clear(self):
        relation = customers()
        relation.clear()
        assert len(relation) == 0
        relation.insert({"acct": 1, "name": "x", "state": "NJ"})
        assert len(relation) == 1

    def test_contains_row(self):
        relation = customers()
        row = relation.lookup_key((1,))
        assert row in relation

    def test_to_set(self):
        assert len(customers().to_set()) == 3
