"""The paper's own examples, end to end.

Example 2.1: the frequent-flyer database — mileage chronicle, customers
relation, persistent views for mileage balance, miles actually flown, and
premier status.

Example 2.2: NJ residents get 500 bonus miles per flight, *based on the
address at flight time*; address changes are proactive updates, so the
temporal join makes the bonus view maintainable without reprocessing.

Section 1's cellular example: total minutes this billing month, shown at
phone power-on — a periodic view looked up in O(1).
"""

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import scan
from repro.core.database import ChronicleDatabase
from repro.relational.predicate import attr_eq
from repro.sca.summarize import GroupBySummary
from repro.views.calendar import monthly
from repro.workloads.frequent_flyer import premier_status


@pytest.fixture
def airline():
    db = ChronicleDatabase()
    db.create_chronicle(
        "mileage", [("acct", "INT"), ("miles", "INT"), ("source", "STR")], retention=0
    )
    db.create_relation(
        "customers", [("acct", "INT"), ("name", "STR"), ("state", "STR")], key=["acct"]
    )
    db.relation("customers").insert({"acct": 1, "name": "alice", "state": "NJ"})
    db.relation("customers").insert({"acct": 2, "name": "bob", "state": "NY"})
    return db


class TestExample21:
    def test_three_persistent_views(self, airline):
        db = airline
        db.define_view(
            "DEFINE VIEW balance AS SELECT acct, SUM(miles) AS miles "
            "FROM mileage GROUP BY acct"
        )
        db.define_view(
            "DEFINE VIEW flown AS SELECT acct, SUM(miles) AS miles "
            "FROM mileage WHERE source = 'flight' GROUP BY acct"
        )
        db.append("mileage", {"acct": 1, "miles": 3000, "source": "flight"})
        db.append("mileage", {"acct": 1, "miles": 500, "source": "promotion"})
        db.append("mileage", {"acct": 2, "miles": 26000, "source": "flight"})
        assert db.view_value("balance", (1,), "miles") == 3500
        assert db.view_value("flown", (1,), "miles") == 3000
        # Premier status derives functionally from the flown view.
        assert premier_status(db.view_value("flown", (1,), "miles")) == "member"
        assert premier_status(db.view_value("flown", (2,), "miles")) == "bronze"

    def test_views_need_joins_and_aggregation(self, airline):
        """Example 2.1: 'the language must allow for aggregation and joins
        between the chronicle and the relation'."""
        db = airline
        view = db.define_view(
            "DEFINE VIEW by_state AS SELECT state, SUM(miles) AS miles "
            "FROM mileage JOIN customers ON mileage.acct = customers.acct "
            "GROUP BY state"
        )
        db.append("mileage", {"acct": 1, "miles": 100, "source": "flight"})
        db.append("mileage", {"acct": 2, "miles": 200, "source": "flight"})
        assert db.view_value("by_state", ("NJ",), "miles") == 100
        assert db.view_value("by_state", ("NY",), "miles") == 200


class TestExample22:
    def test_nj_bonus_follows_address_at_flight_time(self, airline):
        """The temporal join: a flight qualifies for the NJ bonus only if
        the flyer lived in NJ when the flight was recorded."""
        db = airline
        customers = db.relation("customers")
        mileage = db.chronicle("mileage")
        bonus_expr = (
            scan(mileage)
            .select(attr_eq("source", "flight"))
            .keyjoin(customers, [("acct", "acct")])
            .select(attr_eq("state", "NJ"))
        )
        db.define_view(
            GroupBySummary(bonus_expr, ["acct"], [spec(COUNT, None, "bonus_flights")]),
            name="nj_bonus",
        )
        # alice flies while in NJ: bonus.
        db.append("mileage", {"acct": 1, "miles": 1000, "source": "flight"})
        # alice moves to CA (proactive update)...
        db.update_relation("customers", (1,), state="CA")
        # ...and flies again: no bonus for this flight.
        db.append("mileage", {"acct": 1, "miles": 1000, "source": "flight"})
        assert db.view_value("nj_bonus", (1,), "bonus_flights") == 1
        # bonus miles = 500 per qualifying flight
        assert 500 * db.view_value("nj_bonus", (1,), "bonus_flights") == 500

    def test_bob_never_qualifies(self, airline):
        db = airline
        customers = db.relation("customers")
        mileage = db.chronicle("mileage")
        bonus_expr = (
            scan(mileage)
            .keyjoin(customers, [("acct", "acct")])
            .select(attr_eq("state", "NJ"))
        )
        db.define_view(
            GroupBySummary(bonus_expr, ["acct"], [spec(COUNT)]), name="nj"
        )
        db.append("mileage", {"acct": 2, "miles": 100, "source": "flight"})
        assert db.view_value("nj", (2,), "count") is None


class TestSection1Cellular:
    def test_minutes_this_billing_month_at_power_on(self):
        """'total number of minutes of calls made in the current billing
        month from a phone number ... displayed on the customer's phone'
        — a monthly periodic view, answered per-key in O(1)."""
        db = ChronicleDatabase()
        db.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")], retention=0
        )
        months = db.define_periodic_view(
            "monthly_minutes",
            "DEFINE VIEW monthly_minutes AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller",
            monthly(month_length=30),
            chronon_of=lambda row: float(row["day"]),
        )
        # Month 0 and month 1 calls.
        db.append("calls", {"caller": 5551234, "minutes": 10, "day": 3})
        db.append("calls", {"caller": 5551234, "minutes": 20, "day": 29})
        db.append("calls", {"caller": 5551234, "minutes": 7, "day": 31})
        # Power-on during month 1: current month shows 7; previous shows 30.
        assert months[1].value((5551234,), "total") == 7
        assert months[0].value((5551234,), "total") == 30

    def test_total_minutes_since_assignment(self):
        """The second Section 1 query: minutes since the number was
        assigned to the current customer — an unwindowed view, correct
        even though the chronicle is not stored."""
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")], retention=0)
        db.define_view(
            "DEFINE VIEW lifetime AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        for i in range(1000):
            db.append("calls", {"caller": 5551234, "minutes": 2})
        assert db.view_value("lifetime", (5551234,), "total") == 2000
        assert len(db.chronicle("calls")) == 0
