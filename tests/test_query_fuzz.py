"""Property-based fuzzing of the query language.

Random ``DEFINE VIEW`` statements are generated from the grammar,
compiled, streamed against, and checked against batch evaluation — the
golden invariant through the *language* path rather than the programmatic
one.  This catches compiler bugs (scope resolution, pushdown, HAVING
plumbing) that hand-written statements miss.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import ChronicleDatabase
from repro.sca.view import evaluate_summary

CHRONICLE_COLUMNS = ("acct", "mins", "day")
RELATION_COLUMNS = ("acct", "state", "tier")
AGGREGATES = ("SUM", "COUNT", "MIN", "MAX", "AVG")


@st.composite
def where_clauses(draw):
    def comparison():
        column = draw(st.sampled_from(("mins", "day", "acct")))
        op = draw(st.sampled_from(("=", "!=", "<", "<=", ">", ">=")))
        value = draw(st.integers(0, 8))
        return f"{column} {op} {value}"

    kind = draw(st.sampled_from(("single", "or", "and", "mixed")))
    if kind == "single":
        return comparison()
    if kind == "or":
        return f"{comparison()} OR {comparison()}"
    if kind == "and":
        return f"{comparison()} AND {comparison()}"
    return f"{comparison()} AND ({comparison()} OR {comparison()})"


@st.composite
def view_statements(draw):
    """A random DEFINE VIEW over the fixed test catalog."""
    joined = draw(st.booleans())
    grouping = draw(st.sampled_from(("acct", "state" if joined else "acct", None)))
    agg_names = draw(
        st.lists(st.sampled_from(AGGREGATES), min_size=1, max_size=3, unique=True)
    )
    items = []
    if grouping:
        items.append(grouping)
    for index, agg in enumerate(agg_names):
        argument = "*" if agg == "COUNT" else "mins"
        items.append(f"{agg}({argument}) AS out{index}")
    sql = ["DEFINE VIEW fuzz AS SELECT", ", ".join(items), "FROM calls"]
    if joined:
        sql.append("JOIN customers ON calls.acct = customers.acct")
    if draw(st.booleans()):
        sql.append("WHERE " + draw(where_clauses()))
    if grouping:
        sql.append(f"GROUP BY {grouping}")
    if draw(st.booleans()):
        threshold = draw(st.integers(0, 30))
        sql.append(f"HAVING out0 >= {threshold}")
    return " ".join(sql)


def build_database(seed):
    db = ChronicleDatabase()
    db.create_chronicle("calls", [("acct", "INT"), ("mins", "INT"), ("day", "INT")])
    db.create_relation(
        "customers", [("acct", "INT"), ("state", "STR"), ("tier", "INT")], key=["acct"]
    )
    rng = random.Random(seed)
    for acct in range(6):
        db.relation("customers").insert(
            {"acct": acct, "state": "NJ" if acct % 2 else "NY", "tier": acct % 3}
        )
    return db, rng


@settings(max_examples=150, deadline=None)
@given(view_statements(), st.integers(0, 2 ** 16), st.integers(1, 40))
def test_language_golden_invariant(statement, seed, appends):
    db, rng = build_database(seed)
    view = db.define_view(statement)
    for _ in range(appends):
        db.append(
            "calls",
            {
                "acct": rng.randrange(6),
                "mins": rng.randrange(9),
                "day": rng.randrange(5),
            },
        )
    incremental = sorted(tuple(r.values) for r in view)
    batch = sorted(tuple(r.values) for r in evaluate_summary(view.summary))
    assert incremental == batch


@settings(max_examples=80, deadline=None)
@given(view_statements())
def test_language_statements_compile_deterministically(statement):
    """Compiling the same statement twice yields the same classification
    and output schema."""
    db1, _ = build_database(0)
    db2, _ = build_database(0)
    view1 = db1.define_view(statement)
    view2 = db2.define_view(statement)
    assert view1.language == view2.language
    assert view1.summary.output_schema.names == view2.summary.output_schema.names


@settings(max_examples=60, deadline=None)
@given(view_statements(), st.integers(0, 2 ** 16))
def test_language_views_survive_checkpoint(statement, seed):
    """Checkpoint/restore round-trips every language-generated view."""
    import io

    from repro.storage.checkpoint import write_checkpoint, load_checkpoint

    db, rng = build_database(seed)
    view = db.define_view(statement)
    for _ in range(25):
        db.append(
            "calls",
            {"acct": rng.randrange(6), "mins": rng.randrange(9), "day": 0},
        )
    buffer = io.StringIO()
    write_checkpoint(db, buffer)
    buffer.seek(0)

    fresh, _ = build_database(seed)
    fresh_view = fresh.define_view(statement, materialize=False)
    load_checkpoint(fresh, buffer)
    assert sorted(tuple(r.values) for r in fresh_view) == sorted(
        tuple(r.values) for r in view
    )
