"""Tests for the periodic view-definition language (DEFINE PERIODIC VIEW
... OVER ..., the Section 5.1 periodic summarized chronicle algebra)."""

import pytest

from repro.core.database import ChronicleDatabase
from repro.errors import CompileError, ParseError, ViewExpiredError
from repro.query.compiler import Catalog, Compiler
from repro.query.parser import parse_view
from repro.views.periodic import PeriodicViewSet


@pytest.fixture
def db():
    database = ChronicleDatabase()
    database.create_chronicle(
        "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")], retention=0
    )
    return database


class TestParsing:
    def test_every_clause(self):
        view = parse_view(
            "DEFINE PERIODIC VIEW m OVER EVERY 30 AS "
            "SELECT caller, SUM(minutes) AS t FROM calls GROUP BY caller"
        )
        assert view.periodic.width == 30.0
        assert view.periodic.stride == 30.0
        assert view.periodic.by is None

    def test_window_slide_clause(self):
        view = parse_view(
            "DEFINE PERIODIC VIEW w OVER WINDOW 30 SLIDE 1 AS "
            "SELECT SUM(minutes) AS t FROM calls"
        )
        assert view.periodic.width == 30.0
        assert view.periodic.stride == 1.0

    def test_window_default_slide(self):
        view = parse_view(
            "DEFINE PERIODIC VIEW w OVER WINDOW 7 AS SELECT SUM(minutes) AS t FROM calls"
        )
        assert view.periodic.stride == 1.0

    def test_starting_expire_by(self):
        view = parse_view(
            "DEFINE PERIODIC VIEW m OVER EVERY 30 STARTING 10 EXPIRE AFTER 60 BY day "
            "AS SELECT SUM(minutes) AS t FROM calls"
        )
        assert view.periodic.origin == 10.0
        assert view.periodic.expire_after == 60.0
        assert view.periodic.by.name == "day"

    def test_missing_calendar_kind(self):
        with pytest.raises(ParseError):
            parse_view(
                "DEFINE PERIODIC VIEW m OVER 30 AS SELECT SUM(minutes) AS t FROM calls"
            )

    def test_non_periodic_has_no_spec(self):
        view = parse_view("DEFINE VIEW v AS SELECT SUM(minutes) AS t FROM calls")
        assert view.periodic is None


class TestCompiler:
    def test_compile_view_rejects_periodic(self, db):
        compiler = Compiler(db.catalog())
        with pytest.raises(CompileError):
            compiler.compile_view(
                "DEFINE PERIODIC VIEW m OVER EVERY 30 AS "
                "SELECT SUM(minutes) AS t FROM calls"
            )

    def test_compile_definition_builds_chronon_fn(self, db):
        compiler = Compiler(db.catalog())
        compiled = compiler.compile_definition(
            "DEFINE PERIODIC VIEW m OVER EVERY 30 BY day AS "
            "SELECT SUM(minutes) AS t FROM calls"
        )
        assert compiled.is_periodic
        from repro.relational.tuples import Row

        chronicle = db.chronicle("calls")
        row = Row(chronicle.schema, [0, 1, 2, 77])
        assert compiled.chronon_of(row) == 77.0

    def test_by_column_must_be_on_chronicle(self, db):
        db.create_relation("subscribers", [("number", "INT"), ("plan", "STR")],
                           key=["number"])
        compiler = Compiler(db.catalog())
        with pytest.raises(CompileError):
            compiler.compile_definition(
                "DEFINE PERIODIC VIEW m OVER EVERY 30 BY subscribers.plan AS "
                "SELECT SUM(minutes) AS t FROM calls "
                "JOIN subscribers ON calls.caller = subscribers.number"
            )

    def test_unknown_by_column(self, db):
        compiler = Compiler(db.catalog())
        with pytest.raises(Exception):
            compiler.compile_definition(
                "DEFINE PERIODIC VIEW m OVER EVERY 30 BY nope AS "
                "SELECT SUM(minutes) AS t FROM calls"
            )


class TestDatabaseIntegration:
    def test_tiling_periods(self, db):
        months = db.define_view(
            "DEFINE PERIODIC VIEW monthly OVER EVERY 30 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        assert isinstance(months, PeriodicViewSet)
        db.append("calls", {"caller": 1, "minutes": 10, "day": 5})
        db.append("calls", {"caller": 1, "minutes": 20, "day": 45})
        assert months[0].value((1,), "total") == 10
        assert months[1].value((1,), "total") == 20

    def test_sliding_windows(self, db):
        windows = db.define_view(
            "DEFINE PERIODIC VIEW weekly OVER WINDOW 3 SLIDE 1 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        db.append("calls", {"caller": 1, "minutes": 5, "day": 2})
        assert windows.active_indices() == [0, 1, 2]

    def test_expiration_via_language(self, db):
        months = db.define_view(
            "DEFINE PERIODIC VIEW monthly OVER EVERY 30 EXPIRE AFTER 0 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        db.append("calls", {"caller": 1, "minutes": 10, "day": 5})
        db.append("calls", {"caller": 1, "minutes": 10, "day": 65})
        with pytest.raises(ViewExpiredError):
            months[0]

    def test_default_chronon_is_sequence_number(self, db):
        periods = db.define_view(
            "DEFINE PERIODIC VIEW p OVER EVERY 10 AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        for _ in range(25):
            db.append("calls", {"caller": 1, "minutes": 1, "day": 0})
        assert periods.active_indices() == [0, 1, 2]

    def test_registered_under_registry(self, db):
        db.define_view(
            "DEFINE PERIODIC VIEW monthly OVER EVERY 30 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        assert db.periodic_view("monthly") is not None
        assert "monthly" in db.registry

    def test_cli_supports_periodic(self):
        from repro.cli import Session

        session = Session()
        session.execute("CREATE CHRONICLE calls (caller INT, minutes INT, day INT)")
        out = session.execute(
            "DEFINE PERIODIC VIEW monthly OVER EVERY 30 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        assert "monthly" in out
        session.execute('APPEND calls {"caller": 1, "minutes": 5, "day": 2}')
        assert session.db.periodic_view("monthly")[0].value((1,), "total") == 5
