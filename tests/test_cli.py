"""Tests for the command-line session (repro.cli)."""

import io

import pytest

from repro.cli import CliError, Session
from repro.errors import ChronicleError


@pytest.fixture
def session():
    s = Session()
    s.execute("CREATE CHRONICLE calls (caller INT, minutes INT) RETENTION 0")
    s.execute("CREATE RELATION subscribers (number INT, state STR) KEY (number)")
    return s


class TestCatalogStatements:
    def test_create_chronicle(self):
        s = Session()
        out = s.execute("CREATE CHRONICLE calls (caller INT, minutes INT)")
        assert "calls" in out and "retention=all" in out

    def test_create_chronicle_with_retention(self):
        s = Session()
        out = s.execute("CREATE CHRONICLE calls (caller INT) RETENTION 5")
        assert "retention=5" in out
        assert s.db.chronicle("calls").retention == 5

    def test_create_relation_with_key(self, session):
        assert session.db.relation("subscribers").schema.key == ("number",)

    def test_create_relation_without_key(self):
        s = Session()
        out = s.execute("CREATE RELATION r (a INT, b STR)")
        assert "created" in out

    def test_bad_attribute_spec(self):
        s = Session()
        with pytest.raises(CliError):
            s.execute("CREATE CHRONICLE calls (caller)")

    def test_missing_attr_list(self):
        s = Session()
        with pytest.raises(CliError):
            s.execute("CREATE CHRONICLE calls")


class TestDataStatements:
    def test_insert_single(self, session):
        out = session.execute('INSERT subscribers {"number": 1, "state": "NJ"}')
        assert "1 row(s)" in out
        assert session.db.relation("subscribers").lookup_key((1,))["state"] == "NJ"

    def test_insert_list(self, session):
        out = session.execute(
            'INSERT subscribers [{"number": 1, "state": "NJ"}, {"number": 2, "state": "NY"}]'
        )
        assert "2 row(s)" in out

    def test_insert_bad_json(self, session):
        with pytest.raises(CliError):
            session.execute("INSERT subscribers {bad json}")

    def test_append(self, session):
        out = session.execute('APPEND calls {"caller": 1, "minutes": 5}')
        assert "sequence 0" in out
        out = session.execute('APPEND calls {"caller": 1, "minutes": 5}')
        assert "sequence 1" in out

    def test_append_missing_payload(self, session):
        with pytest.raises(CliError):
            session.execute("APPEND calls")


class TestViewsAndQueries:
    def test_define_and_query(self, session):
        out = session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        assert "IM-Constant" in out
        session.execute('APPEND calls {"caller": 7, "minutes": 5}')
        session.execute('APPEND calls {"caller": 7, "minutes": 3}')
        out = session.execute("QUERY usage 7")
        assert "total=8" in out

    def test_query_missing_key(self, session):
        session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        out = session.execute("QUERY usage 99")
        assert "no row" in out

    def test_query_all_rows(self, session):
        session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        session.execute('APPEND calls {"caller": 1, "minutes": 5}')
        session.execute('APPEND calls {"caller": 2, "minutes": 6}')
        out = session.execute("QUERY usage")
        assert out.count("caller=") == 2

    def test_show_view(self, session):
        session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        session.execute('APPEND calls {"caller": 1, "minutes": 5}')
        out = session.execute("SHOW VIEW usage")
        assert "caller=1" in out

    def test_show_catalog(self, session):
        session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        out = session.execute("SHOW CATALOG")
        assert "chronicle calls" in out
        assert "relation subscribers" in out
        assert "view usage" in out

    def test_unknown_statement(self, session):
        with pytest.raises(CliError):
            session.execute("FROBNICATE everything")


class TestObservabilityStatements:
    def _load(self, session):
        session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        session.execute('APPEND calls {"caller": 7, "minutes": 5}')
        session.execute('APPEND calls {"caller": 7, "minutes": 3}')

    def test_show_stats_sections(self, session):
        self._load(session)
        out = session.execute("SHOW STATS")
        assert "== registry ==" in out
        assert "== audit ==" in out
        assert "== metrics ==" in out
        assert "maintained_views: 2" in out
        assert "violations: 0" in out
        assert "append_events_total{group=default} 2" in out
        assert "view_maintained_total{engine=compiled,view=usage} 2" in out

    def test_show_stats_before_any_event(self, session):
        out = session.execute("SHOW STATS")
        assert "(no metrics recorded yet)" in out

    def test_trace_renders_span_tree(self, session):
        self._load(session)
        out = session.execute("TRACE 2")
        assert out.count("append [") == 2
        assert "maintain [view=usage engine=compiled" in out
        assert "delta [operator=" in out
        # The no-access rule holds: no chronicle_read in any counter diff.
        assert "chronicle_read" not in out

    def test_trace_defaults_to_one(self, session):
        self._load(session)
        out = session.execute("TRACE")
        assert out.count("append [") == 1

    def test_trace_before_any_event(self, session):
        assert "no traces" in session.execute("TRACE 5")

    def test_trace_bad_count(self, session):
        with pytest.raises(CliError):
            session.execute("TRACE zero")
        with pytest.raises(CliError):
            session.execute("TRACE 0")
        with pytest.raises(CliError):
            session.execute("TRACE 1 2")

    def test_show_timeline_renders_sparklines(self, session):
        self._load(session)
        out = session.execute("SHOW TIMELINE")
        assert "timeline: last" in out
        session.execute('APPEND calls {"caller": 9, "minutes": 2}')
        out = session.execute("SHOW TIMELINE")
        assert "timeline: last 2 sample(s)" in out
        assert "records/s" in out
        assert "health" in out

    def test_show_timeline_threadless(self, session):
        import threading

        session.execute("SHOW TIMELINE")
        history = session.db.observability.history
        assert history is not None
        assert not history.running
        assert "repro-history" not in {t.name for t in threading.enumerate()}

    def test_show_timeline_count(self, session):
        for _ in range(4):
            session.execute("SHOW TIMELINE")
        out = session.execute("SHOW TIMELINE 2")
        assert "last 2 sample(s)" in out

    def test_show_timeline_bad_count(self, session):
        with pytest.raises(CliError):
            session.execute("SHOW TIMELINE soon")
        with pytest.raises(CliError):
            session.execute("SHOW TIMELINE 0")

    def test_observe_false_disables_commands(self):
        s = Session(observe=False)
        s.execute("CREATE CHRONICLE calls (caller INT) RETENTION 0")
        with pytest.raises(CliError):
            s.execute("SHOW STATS")
        with pytest.raises(CliError):
            s.execute("TRACE 1")
        with pytest.raises(CliError):
            s.execute("SHOW TIMELINE")

    def test_observability_does_not_leak_between_statements(self, session):
        from repro.obs import runtime as obs_runtime

        self._load(session)
        assert obs_runtime.ACTIVE is None


class TestCheckpointStatements:
    def test_checkpoint_restore(self, tmp_path, session):
        session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        session.execute('APPEND calls {"caller": 1, "minutes": 9}')
        path = str(tmp_path / "cli.ckpt")
        session.execute(f"CHECKPOINT {path}")

        fresh = Session()
        fresh.execute("CREATE CHRONICLE calls (caller INT, minutes INT) RETENTION 0")
        fresh.execute("CREATE RELATION subscribers (number INT, state STR) KEY (number)")
        fresh.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        fresh.execute(f"RESTORE {path}")
        assert "total=9" in fresh.execute("QUERY usage 1")


class TestScripts:
    SCRIPT = """
    -- a comment;
    CREATE CHRONICLE calls (caller INT, minutes INT) RETENTION 0;
    DEFINE VIEW usage AS
        SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller;
    APPEND calls {"caller": 1, "minutes": 5};
    QUERY usage 1;
    """

    def test_split_statements_respects_strings(self):
        statements = Session.split_statements("A 'x;y'; B")
        assert statements == ["A 'x;y'", "B"]

    def test_run_script(self):
        out = io.StringIO()
        failures = Session().run_script(self.SCRIPT, out)
        assert failures == 0
        assert "total=5" in out.getvalue()

    def test_run_script_reports_errors_and_continues(self):
        out = io.StringIO()
        failures = Session().run_script(
            "APPEND nowhere {\"x\": 1}; CREATE CHRONICLE c (a INT);", out
        )
        assert failures == 1
        assert "error:" in out.getvalue()
        assert "created" in out.getvalue()


class TestConformanceStatements:
    def _define(self, session):
        session.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )

    def test_certify_prints_certificate(self, session):
        self._define(session)
        out = session.execute("CERTIFY usage")
        assert "conformance certificate: view 'usage'" in out
        assert "IM-Constant" in out
        assert "|C| work: fitted constant" in out
        assert "verdict: CONFORMANT" in out
        # The certificate also lands on the session's handle, where the
        # /certificates route would serve it.
        assert "usage" in session.db.observability.certificates

    def test_certify_requires_view_name(self, session):
        with pytest.raises(CliError, match="CERTIFY"):
            session.execute("CERTIFY")

    def test_serve_metrics_and_stop(self, session):
        self._define(session)
        session.execute('APPEND calls {"caller": 1, "minutes": 5}')
        out = session.execute("SERVE METRICS 0")
        assert "serving metrics at http://127.0.0.1:" in out
        import urllib.request

        url = out.split("serving metrics at ")[1].strip()
        body = urllib.request.urlopen(url, timeout=5).read().decode()
        assert "append_events_total" in body
        stopped = session.execute("SERVE STOP")
        assert "stopped" in stopped
        assert session.execute("SERVE STOP") == "no metrics server running"

    def test_serve_bad_arguments(self, session):
        with pytest.raises(CliError, match="SERVE"):
            session.execute("SERVE")
        with pytest.raises(CliError, match="bad port"):
            session.execute("SERVE METRICS nope")

    def test_show_stats_renders_per_view_latency(self, session):
        self._define(session)
        session.execute('APPEND calls {"caller": 1, "minutes": 5}')
        out = session.execute("SHOW STATS")
        assert "== views ==" in out
        assert "usage: 1 maintain spans, last append" in out


class TestShardStatements:
    """SHOW WORKERS / SHOW SHARDS must degrade gracefully, never traceback."""

    def _sharded(self):
        from repro.core.config import DatabaseConfig

        s = Session(config=DatabaseConfig(engine="sharded", shards=2))
        s.execute("CREATE CHRONICLE calls (caller INT, minutes INT)")
        s.execute(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        return s

    def test_show_shards_on_serial_engine(self, session):
        out = session.execute("SHOW SHARDS")
        assert "engine=serial" in out
        assert "engine='sharded'" in out  # points at the fix

    def test_show_workers_on_serial_engine(self, session):
        out = session.execute("SHOW WORKERS")
        assert "engine=serial" in out
        assert "engine='sharded'" in out

    def test_show_shards_before_first_ingest(self):
        s = self._sharded()
        out = s.execute("SHOW SHARDS")
        assert "engine=sharded shards=2" in out
        assert "watermark=-1" in out  # shards exist, nothing routed yet

    def test_show_workers_before_first_ingest(self):
        s = self._sharded()
        out = s.execute("SHOW WORKERS")
        assert "executor=thread workers=2" in out

    def test_show_shards_before_any_views(self):
        from repro.core.config import DatabaseConfig

        s = Session(config=DatabaseConfig(engine="sharded", shards=2))
        s.execute("CREATE CHRONICLE calls (caller INT, minutes INT)")
        out = s.execute("SHOW SHARDS")
        assert "engine=sharded" in out
