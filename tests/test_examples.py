"""Smoke tests: every example script runs clean and prints its story.

Examples are part of the public deliverable; these tests keep them green
as the library evolves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": ("chronicle stored rows : 0", "view language"),
    "frequent_flyer.py": ("top flyer account", "NJ-bonus"),
    "telecom_billing.py": ("incremental == batch", "months materialized"),
    "banking_atm.py": ("Chemical Bank", "declarative view"),
    "stock_trading.py": ("cyclic buffer == periodic views", "shares"),
    "sensor_monitoring.py": ("prefilter skipped", "noisiest sensor"),
    "credit_card_fraud.py": ("checkpoint/restart", "risk view"),
}


def test_every_example_has_expectations():
    names = {path.name for path in EXAMPLES}
    assert names == set(EXPECTED_MARKERS), (
        "examples/ and EXPECTED_MARKERS are out of sync"
    )


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    for marker in EXPECTED_MARKERS[example.name]:
        assert marker in completed.stdout, (
            f"{example.name} output missing {marker!r}:\n{completed.stdout}"
        )
