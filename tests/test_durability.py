"""Tests for the durability subsystem (WAL + snapshots + open/flush/close).

Covers the crash-recovery property (recovered views must equal a serial
recompute of exactly the logged batches, for every workload generator on
both engines), kill -9 of a live ingesting process (thread and process
executors; recovery counts validated against the SQLite log itself),
watermark-bounded replay (tail length <= snapshot interval), mid-stream
DDL (views defined between snapshots rebuild with their history-derived
state), relation proactivity updates, wal-only full replay, cross-engine
recovery, corrupt-log failure (RecoveryError + incident bundle), the
unified lifecycle API (open/flush/close, the refusal to construct over
existing durable state), zero-cost off mode, DurabilityConfig
validation, NonDurableWarning cases, and the checkpoint deprecation
shims.
"""

import os
import shutil
import signal
import sqlite3
import subprocess
import sys
import tempfile
import textwrap
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BankingWorkload,
    ChronicleDatabase,
    CreditCardWorkload,
    DatabaseConfig,
    DurabilityConfig,
    FrequentFlyerWorkload,
    SensorWorkload,
    StockWorkload,
    TelecomWorkload,
)
from repro.aggregates import COUNT, MAX, SUM, spec
from repro.algebra.ast import scan
from repro.errors import ConfigError
from repro.obs import runtime as obs_runtime
from repro.parallel import UnpartitionableViewWarning
from repro.relational.predicate import attr_cmp
from repro.sca.summarize import GroupBySummary
from repro.storage import checkpoint as checkpoint_module
from repro.storage.durability import NonDurableWarning, RecoveryError
from repro.storage.wal import ChronicleWal, WalError, wal_path


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


#: (workload class, grouping attribute, summed attribute) — one entry
#: per application domain shipped with the repro.
WORKLOADS = [
    (BankingWorkload, "acct", "cents"),
    (TelecomWorkload, "caller", "seconds"),
    (CreditCardWorkload, "card", "cents"),
    (FrequentFlyerWorkload, "acct", "miles"),
    (StockWorkload, "symbol", "shares"),
    (SensorWorkload, "sensor", "milli"),
]

VIEW_NAMES = ("by_key", "filtered", "grand")

#: Engine selections exercised in-process (the process executor is
#: covered by the kill -9 subprocess test below).
ENGINES = {
    "serial": {"engine": "serial"},
    "sharded-serial": {"engine": "sharded", "shards": 2, "executor": "serial"},
    "sharded-thread": {"engine": "sharded", "shards": 2, "executor": "thread"},
}


def _config(directory, engine="serial", mode="wal+snapshot", interval=3, fsync="off"):
    return DatabaseConfig(
        durability=DurabilityConfig(
            mode=mode,
            dir=directory,
            fsync=fsync,
            snapshot_interval_batches=interval,
        ),
        **ENGINES[engine],
    )


def _catalog(db, workload_cls, key, value):
    """The three-view catalog of test_parallel, declared on an open db."""
    workload = workload_cls(seed=7)
    db.create_chronicle(workload.NAME, workload.CHRONICLE_SCHEMA)
    chron = db.chronicle(workload.NAME)
    db.define_view(
        GroupBySummary(scan(chron), [key], [spec(SUM, value), spec(COUNT)]),
        name="by_key",
    )
    db.define_view(
        GroupBySummary(
            scan(chron).select(attr_cmp(value, ">", 10)),
            [key],
            [spec(COUNT), spec(MAX, value)],
        ),
        name="filtered",
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UnpartitionableViewWarning)
        db.define_view(
            GroupBySummary(scan(chron), [], [spec(SUM, value), spec(COUNT)]),
            name="grand",
        )
    return workload


def _state(db):
    return {
        name: sorted(tuple(row.values) for row in db.view(name).rows())
        for name in VIEW_NAMES
    }


def _reference(workload_cls, key, value, batches):
    """Serial, non-durable recompute of *batches* — the ground truth."""
    ref = ChronicleDatabase()
    try:
        workload = _catalog(ref, workload_cls, key, value)
        for batch in batches:
            ref.append(workload.NAME, batch)
        return _state(ref)
    finally:
        ref.close()


class _InjectedCrash(RuntimeError):
    """Raised by the fault-injection listener mid-maintenance."""


def _arm_crash(db):
    """Make the next admitted batch die during maintenance.

    The listener is subscribed after the registry's, so it fires once
    the batch has been admitted, WAL-logged, and (serially) maintained —
    but before the facade's commit hook (and, on the sharded engine,
    before shard dispatch).  Either way the batch is on the log and
    recovery must replay it.
    """

    def _boom(group, event):
        raise _InjectedCrash("injected maintenance crash")

    db.groups["default"].subscribe(_boom)


# ---------------------------------------------------------------------------
# Crash-recovery property: recovered state == serial recompute of the log
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    @settings(max_examples=12, deadline=None)
    @given(
        workload_index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
        engine=st.sampled_from(sorted(ENGINES)),
        committed=st.integers(min_value=1, max_value=10),
        interval=st.integers(min_value=1, max_value=4),
        crash=st.booleans(),
    )
    def test_recovered_state_equals_recompute(
        self, workload_index, engine, committed, interval, crash
    ):
        workload_cls, key, value = WORKLOADS[workload_index]
        records = list(workload_cls(seed=7).records(committed + 1))
        directory = tempfile.mkdtemp(prefix="repro-wal-")
        try:
            config = _config(directory, engine=engine, interval=interval)
            db = ChronicleDatabase.open(directory, config=config)
            workload = _catalog(db, workload_cls, key, value)
            for record in records[:committed]:
                db.append(workload.NAME, record)
            if crash:
                _arm_crash(db)
                with pytest.raises(_InjectedCrash):
                    db.append(workload.NAME, records[-1])
                db.durability.abort()
                expected = _reference(
                    workload_cls, key, value, [[r] for r in records]
                )
            else:
                db.close()
                expected = _reference(
                    workload_cls, key, value, [[r] for r in records[:committed]]
                )

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UnpartitionableViewWarning)
                recovered = ChronicleDatabase.open(directory, config=config)
            try:
                assert _state(recovered) == expected
                report = recovered.durability.last_recovery
                # Replay work is bounded by the snapshot interval: the
                # crashed batch plus at most interval-1 committed since
                # the last snapshot.  A clean close snapshots everything.
                assert report.replayed_batches <= (interval if crash else 0)
                if crash:
                    assert report.replayed_batches >= 1
            finally:
                recovered.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    def test_cross_engine_recovery(self, tmp_path):
        """State written under one engine recovers under the other."""
        directory = str(tmp_path / "db")
        workload_cls, key, value = WORKLOADS[0]
        records = list(workload_cls(seed=7).records(8))

        sharded = _config(directory, engine="sharded-thread", interval=3)
        db = ChronicleDatabase.open(directory, config=sharded)
        workload = _catalog(db, workload_cls, key, value)
        for record in records[:7]:
            db.append(workload.NAME, record)
        _arm_crash(db)
        with pytest.raises(_InjectedCrash):
            db.append(workload.NAME, records[-1])
        db.durability.abort()
        expected = _reference(workload_cls, key, value, [[r] for r in records])

        # Sharded crash -> serial recovery.
        serial = _config(directory, engine="serial", interval=3)
        recovered = ChronicleDatabase.open(directory, config=serial)
        assert _state(recovered) == expected
        recovered.close()

        # Serial close -> sharded recovery, which keeps ingesting.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UnpartitionableViewWarning)
            again = ChronicleDatabase.open(directory, config=sharded)
        try:
            assert _state(again) == expected
            assert again.durability.last_recovery.replayed_batches == 0
            more = list(workload_cls(seed=11).records(3))
            for record in more:
                again.append(workload.NAME, record)
            expected_more = _reference(
                workload_cls, key, value, [[r] for r in records + more]
            )
            assert _state(again) == expected_more
        finally:
            again.close()

    def test_wal_only_mode_replays_full_log(self, tmp_path):
        """Without snapshots, recovery rebuilds everything from batch 0."""
        directory = str(tmp_path / "db")
        workload_cls, key, value = WORKLOADS[1]
        records = list(workload_cls(seed=7).records(9))
        config = _config(directory, mode="wal")
        db = ChronicleDatabase.open(directory, config=config)
        workload = _catalog(db, workload_cls, key, value)
        for record in records:
            db.append(workload.NAME, record)
        db.durability.abort()

        recovered = ChronicleDatabase.open(directory, config=config)
        try:
            report = recovered.durability.last_recovery
            assert report.snapshot_watermark is None
            assert report.replayed_batches == len(records)
            assert _state(recovered) == _reference(
                workload_cls, key, value, [[r] for r in records]
            )
        finally:
            recovered.close()

    def test_mid_stream_view_definition_recovers_history(self, tmp_path):
        """A view defined between snapshots materializes from chronicle
        history the truncated log cannot rebuild — the definition-time
        snapshot must capture it."""
        directory = str(tmp_path / "db")
        config = _config(directory, interval=100)
        db = ChronicleDatabase.open(directory, config=config)
        db.create_chronicle("t", [("k", "INT"), ("v", "INT")])
        for i in range(6):
            db.append("t", {"k": i % 2, "v": i + 1})
        chron = db.chronicle("t")
        db.define_view(
            GroupBySummary(scan(chron), ["k"], [spec(SUM, "v"), spec(COUNT)]),
            name="byk",
            materialize=True,
        )
        for i in range(3):
            db.append("t", {"k": i % 2, "v": 100})
        expected = sorted(tuple(r.values) for r in db.view("byk").rows())
        db.durability.abort()

        recovered = ChronicleDatabase.open(directory, config=config)
        try:
            got = sorted(tuple(r.values) for r in recovered.view("byk").rows())
            assert got == expected
            # Only the post-definition tail replays.
            assert recovered.durability.last_recovery.replayed_batches == 3
        finally:
            recovered.close()

    def test_relation_state_and_updates_recover(self, tmp_path):
        """Direct relation inserts survive via snapshots; proactive
        update_relation calls replay from the log tail."""
        directory = str(tmp_path / "db")
        config = _config(directory, interval=2)
        db = ChronicleDatabase.open(directory, config=config)
        db.create_chronicle("calls", [("number", "INT"), ("seconds", "INT")])
        db.create_relation(
            "subscribers", [("number", "INT"), ("state", "STR")], key=["number"]
        )
        db.relation("subscribers").insert({"number": 1, "state": "NJ"})
        for i in range(4):  # snapshot at batch 2 covers the insert
            db.append("calls", {"number": 1, "seconds": i})
        assert db.update_relation("subscribers", (1,), state="NY")
        db.append("calls", {"number": 1, "seconds": 60})
        db.durability.abort()

        recovered = ChronicleDatabase.open(directory, config=config)
        try:
            rows = [tuple(r.values) for r in recovered.relation("subscribers").rows()]
            assert rows == [(1, "NY")]
            assert recovered.durability.last_recovery.replayed_relation_updates == 1
        finally:
            recovered.close()


# ---------------------------------------------------------------------------
# kill -9: a live ingesting process dies; the log is the ground truth
# ---------------------------------------------------------------------------


_CHILD = textwrap.dedent(
    """
    import sys
    import warnings

    from repro import BankingWorkload, ChronicleDatabase, DatabaseConfig, DurabilityConfig
    from repro.aggregates import COUNT, SUM, spec
    from repro.algebra.ast import scan
    from repro.parallel import UnpartitionableViewWarning
    from repro.sca.summarize import GroupBySummary


    def main():
        directory, executor = sys.argv[1], sys.argv[2]
        config = DatabaseConfig(
            engine="sharded",
            shards=2,
            executor=executor,
            durability=DurabilityConfig(mode="wal", dir=directory, fsync="always"),
        )
        db = ChronicleDatabase.open(directory, config=config)
        workload = BankingWorkload(seed=7)
        db.create_chronicle(workload.NAME, workload.CHRONICLE_SCHEMA)
        chron = db.chronicle(workload.NAME)
        db.define_view(
            GroupBySummary(scan(chron), ["acct"], [spec(SUM, "cents"), spec(COUNT)]),
            name="by_key",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UnpartitionableViewWarning)
            db.define_view(
                GroupBySummary(scan(chron), [], [spec(SUM, "cents"), spec(COUNT)]),
                name="grand",
            )
        for n in range(100000):
            db.append(workload.NAME, list(workload.records(4)))
            print(f"BATCH {n}", flush=True)


    if __name__ == "__main__":
        main()
    """
)


class TestKillNine:
    def _run(self, tmp_path, executor, kill_after):
        directory = str(tmp_path / "db")
        script = tmp_path / "child.py"
        script.write_text(_CHILD)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, str(script), directory, executor],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        seen = 0
        try:
            for line in proc.stdout:
                if line.startswith("BATCH"):
                    seen += 1
                    if seen >= kill_after:
                        break
            assert seen >= kill_after, proc.stderr.read()
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Count durably committed batches straight off the SQLite file —
        # independent of the WAL reader under test.  fsync="always" in
        # the child means every printed BATCH line is on disk.
        conn = sqlite3.connect(wal_path(directory))
        try:
            logged = conn.execute(
                "SELECT COUNT(*) FROM log WHERE kind = 'batch'"
            ).fetchone()[0]
        finally:
            conn.close()
        assert logged >= seen

        config = DatabaseConfig(
            durability=DurabilityConfig(mode="wal", dir=directory, fsync="off")
        )
        db = ChronicleDatabase.open(directory, config=config)
        try:
            assert db.durability.last_recovery.replayed_batches == logged
            (grand,) = db.view("grand").rows()
            grand_sum, grand_count = grand.values
            assert grand_count == logged * 4
            by_key = list(db.view("by_key").rows())
            assert sum(row.values[-1] for row in by_key) == grand_count
            assert sum(row.values[-2] for row in by_key) == grand_sum
            # The reopened database keeps ingesting where the log ends.
            db.append("transactions", list(BankingWorkload(seed=11).records(4)))
            (grand,) = db.view("grand").rows()
            assert grand.values[-1] == (logged + 1) * 4
        finally:
            db.close()

    def test_kill9_thread_executor(self, tmp_path):
        self._run(tmp_path, "thread", kill_after=6)

    def test_kill9_process_executor(self, tmp_path):
        self._run(tmp_path, "process", kill_after=4)


# ---------------------------------------------------------------------------
# Recovery failure: corrupt log -> RecoveryError + incident bundle
# ---------------------------------------------------------------------------


class TestRecoveryFailure:
    def test_corrupt_log_entry(self, tmp_path):
        directory = str(tmp_path / "db")
        config = _config(directory, mode="wal")
        db = ChronicleDatabase.open(directory, config=config)
        db.create_chronicle("t", [("k", "INT")])
        for i in range(3):
            db.append("t", {"k": i})
        db.durability.abort()

        conn = sqlite3.connect(wal_path(directory))
        conn.execute(
            "UPDATE log SET payload = X'DEADBEEF' WHERE kind = 'batch' "
            "AND id = (SELECT MAX(id) FROM log WHERE kind = 'batch')"
        )
        conn.commit()
        conn.close()

        with pytest.raises(RecoveryError):
            ChronicleDatabase.open(directory, config=config)
        assert os.path.exists(os.path.join(directory, "recovery-failure.json"))

    def test_schema_version_mismatch(self, tmp_path):
        directory = str(tmp_path / "db")
        config = _config(directory)
        ChronicleDatabase.open(directory, config=config).close()
        conn = sqlite3.connect(wal_path(directory))
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(WalError, match="schema"):
            ChronicleDatabase.open(directory, config=config)


# ---------------------------------------------------------------------------
# Lifecycle: open/flush/close, construction guard, zero-cost off mode
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_open_promotes_off_mode(self, tmp_path):
        directory = str(tmp_path / "db")
        db = ChronicleDatabase.open(directory)
        try:
            manager = db.durability
            assert manager is not None
            assert manager.config.mode == "wal+snapshot"
            assert manager.config.dir == directory
            assert os.path.exists(wal_path(directory))
        finally:
            db.close()

    def test_open_overrides_configured_dir(self, tmp_path):
        directory = str(tmp_path / "actual")
        elsewhere = str(tmp_path / "ignored")
        config = DatabaseConfig(
            durability=DurabilityConfig(mode="wal", dir=elsewhere)
        )
        db = ChronicleDatabase.open(directory, config=config)
        try:
            assert db.durability.config.dir == directory
            assert not os.path.exists(elsewhere)
        finally:
            db.close()

    def test_constructor_refuses_existing_state(self, tmp_path):
        directory = str(tmp_path / "db")
        config = _config(directory)
        db = ChronicleDatabase.open(directory, config=config)
        db.create_chronicle("t", [("k", "INT")])
        db.close()
        with pytest.raises(WalError, match="open it with"):
            ChronicleDatabase(config=config)
        # open() remains the sanctioned route.
        ChronicleDatabase.open(directory, config=config).close()

    def test_close_is_idempotent_and_final(self, tmp_path):
        directory = str(tmp_path / "db")
        db = ChronicleDatabase.open(directory, config=_config(directory))
        db.create_chronicle("t", [("k", "INT")])
        db.append("t", {"k": 1})
        manager = db.durability
        db.close()
        db.close()
        assert manager.closed
        # Groups are detached: no sink remains after close.
        assert all(g.wal_sink is None for g in db.groups.values())

    def test_flush_and_status(self, tmp_path):
        directory = str(tmp_path / "db")
        db = ChronicleDatabase.open(directory, config=_config(directory, interval=50))
        try:
            db.create_chronicle("t", [("k", "INT")])
            db.append("t", {"k": 1})
            db.flush()
            status = db.durability.status()
            assert status["mode"] == "wal+snapshot"
            assert status["dir"] == directory
            assert status["closed"] is False
            assert status["batches_since_snapshot"] == 1
            assert status["log_rows"] >= 2  # ddl + batch
        finally:
            db.close()

    def test_off_mode_is_zero_cost(self):
        db = ChronicleDatabase()
        try:
            assert db.durability is None
            db.create_chronicle("t", [("k", "INT")])
            assert all(g.wal_sink is None for g in db.groups.values())
            db.append("t", {"k": 1})
            db.flush()  # no-op, no error
        finally:
            db.close()

    def test_open_database_rejects_off_mode(self):
        from repro.storage.durability import open_database

        with pytest.raises(WalError):
            open_database(DatabaseConfig())

    def test_clean_reopen_replays_nothing(self, tmp_path):
        directory = str(tmp_path / "db")
        config = _config(directory, interval=2)
        db = ChronicleDatabase.open(directory, config=config)
        db.create_chronicle("t", [("k", "INT"), ("v", "INT")])
        for i in range(5):
            db.append("t", {"k": i % 2, "v": i})
        db.close()

        reopened = ChronicleDatabase.open(directory, config=config)
        try:
            report = reopened.durability.last_recovery
            assert report.replayed_batches == 0
            assert report.snapshot_watermark == 4
        finally:
            reopened.close()


# ---------------------------------------------------------------------------
# NonDurableWarning: state the log cannot carry
# ---------------------------------------------------------------------------


class TestNonDurable:
    def test_custom_chronon_group_warns(self, tmp_path):
        db = ChronicleDatabase.open(str(tmp_path / "db"))
        try:
            with pytest.warns(NonDurableWarning, match="chronon"):
                db.create_group("monthly", chronons=lambda instant: 1)
        finally:
            db.close()

    def test_periodic_view_warns(self, tmp_path):
        from repro import monthly

        db = ChronicleDatabase.open(str(tmp_path / "db"))
        try:
            db.create_chronicle(
                "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")]
            )
            with pytest.warns(NonDurableWarning, match="periodic"):
                db.define_periodic_view(
                    "usage",
                    "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
                    "FROM calls GROUP BY caller",
                    monthly(month_length=30),
                    chronon_of=lambda row: float(row["day"]),
                )
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Periodic-view clocks survive a crash (WAL meta table)
# ---------------------------------------------------------------------------


class TestPeriodicClockRecovery:
    def _define(self, db):
        from repro import monthly

        with pytest.warns(NonDurableWarning, match="clock resumes"):
            return db.define_periodic_view(
                "usage",
                "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
                "FROM calls GROUP BY caller",
                monthly(month_length=30),
                chronon_of=lambda row: float(row["day"]),
            )

    def test_clock_resumes_after_crash(self, tmp_path):
        directory = str(tmp_path / "db")
        db = ChronicleDatabase.open(directory)
        db.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")]
        )
        view_set = self._define(db)
        db.append("calls", [(1, 10, 5)])
        db.append("calls", [(2, 3, 47)])
        assert view_set._clock == 47.0
        db.durability.abort()  # crash: no final snapshot, no clean close

        reopened = ChronicleDatabase.open(directory)
        try:
            # Re-defining the programmatic view resumes its cadence from
            # the persisted clock instead of a blank one.
            redefined = self._define(reopened)
            assert redefined._clock == 47.0
            # The clock keeps advancing normally from there.
            reopened.append("calls", [(3, 1, 95)])
            assert redefined._clock == 95.0
        finally:
            reopened.close()

    def test_text_defined_periodic_clock_max_semantics(self, tmp_path):
        """A DDL-replayed periodic view takes the later of replayed and
        persisted clocks — a stale meta row never rolls it back."""
        from repro.storage.durability import _PERIODIC_CLOCK_PREFIX

        directory = str(tmp_path / "db")
        db = ChronicleDatabase.open(directory)
        db.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")]
        )
        db.define_view(
            "DEFINE PERIODIC VIEW usage OVER EVERY 30 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        db.append("calls", [(1, 10, 40)])
        assert db.periodic_view("usage")._clock == 40.0
        # Plant a stale meta row behind the replayable stream.
        db.durability.wal.set_meta(_PERIODIC_CLOCK_PREFIX + "usage", "7.0")
        db.durability._logged_clocks.pop("usage", None)
        db.durability.abort()

        reopened = ChronicleDatabase.open(directory)
        try:
            # DDL + tail replay already advanced the clock to 40; the
            # stale persisted 7.0 must not win.
            assert reopened.periodic_view("usage")._clock == 40.0
        finally:
            reopened.close()

    def test_clock_survives_clean_close_too(self, tmp_path):
        directory = str(tmp_path / "db")
        db = ChronicleDatabase.open(directory)
        db.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")]
        )
        self._define(db)
        db.append("calls", [(1, 10, 12)])
        db.close()  # final snapshot carries the orphaned periodic state

        with pytest.warns(NonDurableWarning, match="dropping it"):
            reopened = ChronicleDatabase.open(directory)
        try:
            redefined = self._define(reopened)
            assert redefined._clock == 12.0
        finally:
            reopened.close()


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------


class TestDurabilityConfig:
    def test_defaults(self):
        config = DurabilityConfig()
        assert config.mode == "off"
        assert config.dir is None
        assert config.fsync == "batch"
        assert config.snapshot_interval_batches == 512

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "psync"},
            {"mode": "wal"},  # mode without dir
            {"mode": "wal+snapshot", "dir": "/tmp/x", "fsync": "sometimes"},
            {"dir": 7},
            {"mode": "wal", "dir": "/tmp/x", "snapshot_interval_batches": 0},
            {"mode": "wal", "dir": "/tmp/x", "snapshot_interval_batches": True},
            {"mode": "wal", "dir": "/tmp/x", "snapshot_interval_batches": 2.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DurabilityConfig(**kwargs)

    def test_replace_validates(self):
        config = DurabilityConfig(mode="wal", dir="/tmp/x")
        assert config.replace(fsync="always").fsync == "always"
        with pytest.raises(ConfigError):
            config.replace(fsyncing="always")
        with pytest.raises(ConfigError):
            config.replace(mode="nope")

    def test_database_config_normalizes_none(self):
        assert DatabaseConfig().durability == DurabilityConfig()
        with pytest.raises(ConfigError):
            DatabaseConfig(durability={"mode": "wal"})


# ---------------------------------------------------------------------------
# WAL substrate details + checkpoint deprecation shims
# ---------------------------------------------------------------------------


class TestWalSubstrate:
    def test_fresh_and_close(self, tmp_path):
        directory = str(tmp_path / "db")
        wal = ChronicleWal(directory, fsync="off")
        assert wal.is_fresh()
        wal.log_ddl(("group", "default", 0), -1)
        assert not wal.is_fresh()
        wal.close()
        wal.close()  # idempotent
        assert wal.closed

    def test_snapshot_truncates_batches_keeps_ddl(self, tmp_path):
        wal = ChronicleWal(str(tmp_path / "db"), fsync="off")
        try:
            wal.log_ddl(("group", "default", 0), -1)
            for watermark in range(3):
                wal.log_batch("default", {"t": [[watermark, 1]]}, watermark)
            _, truncated = wal.write_snapshot({"format": 1}, 2)
            assert truncated == 3  # batches gone, ddl kept
            kinds = [entry.kind for entry in wal.entries()]
            assert kinds == ["ddl"]
            snapshot = wal.latest_snapshot()
            assert snapshot.watermark == 2
        finally:
            wal.close()


class TestDeprecatedCheckpointNames:
    def test_legacy_names_warn_and_delegate(self):
        with pytest.warns(DeprecationWarning, match="write_checkpoint"):
            legacy = checkpoint_module.checkpoint_database
        assert legacy is checkpoint_module.write_checkpoint
        with pytest.warns(DeprecationWarning, match="load_checkpoint"):
            legacy = checkpoint_module.restore_database
        assert legacy is checkpoint_module.load_checkpoint

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            checkpoint_module.no_such_function
