"""Tests for the storage layer: hash index and B+-tree.

Includes hypothesis property tests comparing both structures against
dict / sorted-list models.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyViolationError
from repro.storage.btree import BPlusTree
from repro.storage.hash_index import HashIndex


class TestHashIndexBasics:
    def test_insert_get(self):
        index = HashIndex()
        index.insert("k", 1)
        assert index.get("k") == 1

    def test_get_missing(self):
        assert HashIndex().get("nope") is None

    def test_multi_values(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert sorted(index.get_all("k")) == [1, 2]

    def test_unique_rejects_duplicate(self):
        index = HashIndex(unique=True)
        index.insert("k", 1)
        with pytest.raises(KeyViolationError):
            index.insert("k", 2)

    def test_remove_specific_value(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.remove("k", 1)
        assert index.get_all("k") == [2]

    def test_remove_missing(self):
        assert not HashIndex().remove("k")

    def test_replace_upserts(self):
        index = HashIndex(unique=True)
        index.replace("k", 1)
        index.replace("k", 2)
        assert index.get("k") == 2
        assert len(index) == 1

    def test_contains(self):
        index = HashIndex()
        index.insert("k", 1)
        assert "k" in index
        assert "x" not in index

    def test_clear(self):
        index = HashIndex()
        index.insert("k", 1)
        index.clear()
        assert len(index) == 0
        assert index.get("k") is None

    def test_growth_preserves_entries(self):
        index = HashIndex(initial_buckets=8)
        for i in range(1000):
            index.insert(i, i * 2)
        assert len(index) == 1000
        assert all(index.get(i) == i * 2 for i in range(0, 1000, 97))

    def test_bad_initial_buckets(self):
        with pytest.raises(ValueError):
            HashIndex(initial_buckets=6)

    def test_items_iteration(self):
        index = HashIndex()
        for i in range(20):
            index.insert(i, -i)
        assert sorted(index.items()) == [(i, -i) for i in range(20)]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.integers(0, 5), st.booleans()),
        max_size=120,
    )
)
def test_hash_index_matches_dict_model(operations):
    """Property: HashIndex multi-map behaves like dict-of-lists."""
    index = HashIndex()
    model = {}
    for key, value, is_insert in operations:
        if is_insert:
            index.insert(key, value)
            model.setdefault(key, []).append(value)
        else:
            removed = index.remove(key, value)
            bucket = model.get(key, [])
            assert removed == (value in bucket)
            if value in bucket:
                bucket.remove(value)
    for key in "abcdefgh":
        assert sorted(index.get_all(key)) == sorted(model.get(key, []))
    assert len(index) == sum(len(v) for v in model.values())


class TestBPlusTreeBasics:
    def test_insert_get(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "five")
        assert tree.get(5) == "five"

    def test_get_missing(self):
        assert BPlusTree().get(99) is None

    def test_multi_values(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert sorted(tree.get_all(1)) == ["a", "b"]

    def test_unique_rejects_duplicate(self):
        tree = BPlusTree(unique=True)
        tree.insert(1, "a")
        with pytest.raises(KeyViolationError):
            tree.insert(1, "b")

    def test_order_too_small(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_sorted_iteration_after_splits(self):
        tree = BPlusTree(order=4)
        import random

        values = list(range(500))
        random.Random(3).shuffle(values)
        for v in values:
            tree.insert(v, v)
        assert [k for k, _ in tree.items()] == list(range(500))
        assert tree.depth > 1

    def test_range_scan(self):
        tree = BPlusTree(order=4)
        for v in range(100):
            tree.insert(v, v)
        assert [k for k, _ in tree.range(10, 15)] == [10, 11, 12, 13, 14, 15]

    def test_range_scan_exclusive(self):
        tree = BPlusTree(order=4)
        for v in range(20):
            tree.insert(v, v)
        keys = [k for k, _ in tree.range(5, 10, inclusive=(False, False))]
        assert keys == [6, 7, 8, 9]

    def test_range_unbounded(self):
        tree = BPlusTree(order=4)
        for v in range(10):
            tree.insert(v, v)
        assert len(list(tree.range())) == 10
        assert [k for k, _ in tree.range(None, 3)] == [0, 1, 2, 3]
        assert [k for k, _ in tree.range(7, None)] == [7, 8, 9]

    def test_min_max_keys(self):
        tree = BPlusTree(order=4)
        assert tree.min_key() is None and tree.max_key() is None
        for v in (5, 1, 9, 3):
            tree.insert(v, v)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_replace(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        tree.replace(1, "only")
        assert tree.get_all(1) == ["only"]
        assert len(tree) == 1

    def test_replace_missing_inserts(self):
        tree = BPlusTree(order=4, unique=True)
        tree.replace(7, "x")
        assert tree.get(7) == "x"

    def test_remove_and_rebalance(self):
        tree = BPlusTree(order=4)
        for v in range(200):
            tree.insert(v, v)
        for v in range(0, 200, 2):
            assert tree.remove(v)
        assert [k for k, _ in tree.items()] == list(range(1, 200, 2))
        assert len(tree) == 100

    def test_remove_specific_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert tree.get_all(1) == ["b"]

    def test_remove_missing(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        assert not tree.remove(2)
        assert not tree.remove(1, "zzz")

    def test_remove_all(self):
        tree = BPlusTree(order=4)
        for _ in range(5):
            tree.insert(3, "x")
        assert tree.remove_all(3) == 5
        assert tree.get_all(3) == []

    def test_clear(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.clear()
        assert len(tree) == 0

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ("pear", "apple", "fig", "date"):
            tree.insert(word, word)
        assert list(tree.keys()) == ["apple", "date", "fig", "pear"]

    def test_tuple_keys(self):
        tree = BPlusTree(order=4)
        tree.insert((1, "b"), 1)
        tree.insert((1, "a"), 2)
        tree.insert((0, "z"), 3)
        assert list(tree.keys()) == [(0, "z"), (1, "a"), (1, "b")]

    def test_depth_grows_logarithmically(self):
        tree = BPlusTree(order=8)
        for v in range(4096):
            tree.insert(v, v)
        assert tree.depth <= 6


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 50), st.booleans()), max_size=200),
    st.sampled_from([3, 4, 5, 8, 16]),
)
def test_btree_matches_dict_model(operations, order):
    """Property: BPlusTree matches a dict-of-counts model under
    interleaved inserts/removals, and iterates in sorted order."""
    tree = BPlusTree(order=order)
    model = {}
    for key, is_insert in operations:
        if is_insert:
            tree.insert(key, key)
            model[key] = model.get(key, 0) + 1
        else:
            removed = tree.remove(key)
            assert removed == (model.get(key, 0) > 0)
            if key in model:
                model[key] -= 1
                if model[key] == 0:
                    del model[key]
    expected = sorted(k for k, n in model.items() for _ in range(n))
    assert [k for k, _ in tree.items()] == expected
    assert len(tree) == len(expected)


@settings(max_examples=40, deadline=None)
@given(
    st.sets(st.integers(-1000, 1000), max_size=150),
    st.integers(-1000, 1000),
    st.integers(-1000, 1000),
)
def test_btree_range_matches_model(keys, low, high):
    """Property: range scans return exactly the model's sorted slice."""
    low, high = min(low, high), max(low, high)
    tree = BPlusTree(order=5)
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range(low, high)] == expected
