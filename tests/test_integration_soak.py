"""Integration soak: every feature in one long mixed scenario.

A telecom-flavoured database runs thousands of mixed operations —
appends, simultaneous appends, proactive relation updates, periodic
windows, HAVING views, checkpoint/restore mid-stream — over an unstored
chronicle, continuously checking the invariants:

* views equal an independently maintained Python-dict shadow model;
* the chronicle truly stores nothing;
* the registry's prefilter never changes results;
* a mid-stream checkpoint restores into an identical database.
"""

import io
import random

import pytest

from repro.core.config import DatabaseConfig
from repro.core.database import ChronicleDatabase
from repro.storage.checkpoint import write_checkpoint, load_checkpoint

SUBSCRIBERS = 40
STATES = ("NJ", "NY", "CT")


def build(prefilter=True):
    db = ChronicleDatabase(config=DatabaseConfig(prefilter_views=prefilter))
    db.create_chronicle(
        "calls",
        [("caller", "INT"), ("minutes", "INT"), ("day", "INT")],
        retention=0,
    )
    db.create_chronicle("texts", [("sender", "INT"), ("day", "INT")], retention=0)
    db.create_relation(
        "subscribers", [("number", "INT"), ("state", "STR")], key=["number"]
    )
    for number in range(SUBSCRIBERS):
        db.relation("subscribers").insert(
            {"number": number, "state": STATES[number % 3]}
        )
    db.define_view(
        "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total, COUNT(*) AS n "
        "FROM calls GROUP BY caller"
    )
    db.define_view(
        "DEFINE VIEW by_state AS SELECT state, SUM(minutes) AS total "
        "FROM calls JOIN subscribers ON calls.caller = subscribers.number "
        "GROUP BY state"
    )
    db.define_view(
        "DEFINE VIEW heavy AS SELECT caller, SUM(minutes) AS total "
        "FROM calls GROUP BY caller HAVING total > 500"
    )
    db.define_view(
        "DEFINE PERIODIC VIEW monthly OVER EVERY 30 BY day AS "
        "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
    )
    db.define_view(
        "DEFINE VIEW texting AS SELECT sender, COUNT(*) AS n "
        "FROM texts GROUP BY sender"
    )
    return db


class ShadowModel:
    """An independent dict-based model of every view."""

    def __init__(self, db):
        self.usage = {}
        self.by_state = {}
        self.monthly = {}
        self.texting = {}
        self.db = db

    def call(self, caller, minutes, day):
        total, n = self.usage.get(caller, (0, 0))
        self.usage[caller] = (total + minutes, n + 1)
        state = self.db.relation("subscribers").lookup_key((caller,))["state"]
        self.by_state[state] = self.by_state.get(state, 0) + minutes
        month = day // 30
        key = (month, caller)
        self.monthly[key] = self.monthly.get(key, 0) + minutes

    def text(self, sender):
        self.texting[sender] = self.texting.get(sender, 0) + 1


def drive(db, shadow, rng, operations):
    for _ in range(operations):
        roll = rng.random()
        day = rng.randrange(90)
        if roll < 0.70:
            caller = rng.randrange(SUBSCRIBERS)
            minutes = rng.randrange(1, 60)
            db.append("calls", {"caller": caller, "minutes": minutes, "day": day})
            shadow.call(caller, minutes, day)
        elif roll < 0.85:
            sender = rng.randrange(SUBSCRIBERS)
            db.append("texts", {"sender": sender, "day": day})
            shadow.text(sender)
        elif roll < 0.95:
            caller = rng.randrange(SUBSCRIBERS)
            minutes = rng.randrange(1, 60)
            sender = rng.randrange(SUBSCRIBERS)
            db.append_simultaneous(
                {
                    "calls": {"caller": caller, "minutes": minutes, "day": day},
                    "texts": {"sender": sender, "day": day},
                }
            )
            shadow.call(caller, minutes, day)
            shadow.text(sender)
        else:
            # Proactive subscriber state change: by_state views use the
            # new state only for *future* calls — exactly what the shadow
            # model does by reading the current state per call.
            number = rng.randrange(SUBSCRIBERS)
            db.update_relation(
                "subscribers", (number,), state=STATES[rng.randrange(3)]
            )


def check(db, shadow):
    for caller, (total, n) in shadow.usage.items():
        assert db.view_value("usage", (caller,), "total") == total
        assert db.view_value("usage", (caller,), "n") == n
    for state, total in shadow.by_state.items():
        assert db.view_value("by_state", (state,), "total") == total
    for caller, (total, _) in shadow.usage.items():
        row = db.view("heavy").lookup((caller,))
        if total > 500:
            assert row is not None and row["total"] == total
        else:
            assert row is None
    months = db.periodic_view("monthly")
    for (month, caller), total in shadow.monthly.items():
        assert months[month].value((caller,), "total") == total
    for sender, n in shadow.texting.items():
        assert db.view_value("texting", (sender,), "n") == n
    assert len(db.chronicle("calls")) == 0
    assert len(db.chronicle("texts")) == 0


def test_soak_five_thousand_mixed_operations():
    db = build()
    shadow = ShadowModel(db)
    rng = random.Random(2026)
    drive(db, shadow, rng, 5_000)
    check(db, shadow)


def test_soak_prefilter_equivalence():
    rng_a, rng_b = random.Random(7), random.Random(7)
    db_a, db_b = build(prefilter=True), build(prefilter=False)
    shadow_a, shadow_b = ShadowModel(db_a), ShadowModel(db_b)
    drive(db_a, shadow_a, rng_a, 1_500)
    drive(db_b, shadow_b, rng_b, 1_500)
    for view_name in ("usage", "by_state", "heavy", "texting"):
        assert sorted(r.values for r in db_a.view(view_name)) == sorted(
            r.values for r in db_b.view(view_name)
        )


def test_soak_checkpoint_mid_stream():
    db = build()
    shadow = ShadowModel(db)
    rng = random.Random(99)
    drive(db, shadow, rng, 1_000)
    buffer = io.StringIO()
    write_checkpoint(db, buffer)
    buffer.seek(0)

    # "Restart": rebuild the same shape, restore, keep driving both.
    fresh = build()
    load_checkpoint(fresh, buffer)
    fresh_shadow = ShadowModel(fresh)
    fresh_shadow.usage = dict(shadow.usage)
    fresh_shadow.by_state = dict(shadow.by_state)
    fresh_shadow.monthly = dict(shadow.monthly)
    fresh_shadow.texting = dict(shadow.texting)
    rng_fresh = random.Random(123)
    drive(fresh, fresh_shadow, rng_fresh, 1_000)
    for caller, (total, n) in fresh_shadow.usage.items():
        assert fresh.view_value("usage", (caller,), "total") == total
    for state, total in fresh_shadow.by_state.items():
        assert fresh.view_value("by_state", (state,), "total") == total
    # Periodic views are checkpointed too: month totals span both halves.
    months = fresh.periodic_view("monthly")
    for (month, caller), total in fresh_shadow.monthly.items():
        assert months[month].value((caller,), "total") == total
