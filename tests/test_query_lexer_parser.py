"""Tests for the view-definition language lexer and parser."""

import pytest

from repro.errors import LexError, ParseError
from repro.query.ast import ColumnRef, ComparisonExpr, Literal, OrExpr
from repro.query.lexer import tokenize
from repro.query.parser import parse_select, parse_view


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD"] * 3
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Flights miles_2")
        assert [t.text for t in tokens[:-1]] == ["Flights", "miles_2"]

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("NUMBER", "42"),
            ("NUMBER", "3.5"),
        ]

    def test_negative_number_after_comparison(self):
        tokens = tokenize("x < -5")
        assert tokens[2].kind == "NUMBER" and tokens[2].text == "-5"

    def test_qualified_name_not_a_float(self):
        tokens = tokenize("flights.acct")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("IDENT", "flights"),
            ("SYMBOL", "."),
            ("IDENT", "acct"),
        ]

    def test_string_literal(self):
        tokens = tokenize("'NJ'")
        assert tokens[0].kind == "STRING" and tokens[0].text == "NJ"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_symbols_maximal_munch(self):
        tokens = tokenize("<= >= != <> < >")
        assert [t.text for t in tokens[:-1]] == ["<=", ">=", "!=", "!=", "<", ">"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n x")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "x"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  bb")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_eof_token(self):
        assert tokenize("")[0].kind == "EOF"


class TestParser:
    def test_simple_view(self):
        view = parse_view(
            "DEFINE VIEW v AS SELECT acct, SUM(miles) AS total FROM flights GROUP BY acct"
        )
        assert view.name == "v"
        select = view.select
        assert select.source == "flights"
        assert select.items[0].column == ColumnRef(None, "acct")
        assert select.items[1].aggregate == "SUM"
        assert select.items[1].alias == "total"
        assert select.group_by == (ColumnRef(None, "acct"),)

    def test_count_star(self):
        select = parse_select("SELECT COUNT(*) FROM c")
        assert select.items[0].aggregate == "COUNT"
        assert select.items[0].column is None

    def test_join_clause(self):
        select = parse_select(
            "SELECT a FROM c JOIN r ON c.k = r.k AND c.j = r.j"
        )
        join = select.joins[0]
        assert join.source == "r"
        assert not join.cross
        assert len(join.on) == 2

    def test_cross_join(self):
        select = parse_select("SELECT a FROM c CROSS JOIN r")
        assert select.joins[0].cross
        assert select.joins[0].on == ()

    def test_multiple_joins(self):
        select = parse_select("SELECT a FROM c JOIN r ON c.k = r.k CROSS JOIN s")
        assert [j.source for j in select.joins] == ["r", "s"]

    def test_where_or_precedence(self):
        select = parse_select("SELECT a FROM c WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(select.where, OrExpr)
        assert len(select.where.terms) == 2

    def test_where_parentheses(self):
        select = parse_select("SELECT a FROM c WHERE (x = 1 OR y = 2)")
        assert isinstance(select.where, OrExpr)

    def test_comparison_operands(self):
        select = parse_select("SELECT a FROM c WHERE x >= 10")
        where = select.where
        assert isinstance(where, ComparisonExpr)
        assert where.left == ColumnRef(None, "x")
        assert where.op == ">="
        assert where.right == Literal(10)

    def test_string_and_float_literals(self):
        select = parse_select("SELECT a FROM c WHERE s = 'NJ' OR f < 2.5")
        left, right = select.where.terms
        assert left.right == Literal("NJ")
        assert right.right == Literal(2.5)

    def test_attribute_attribute_comparison(self):
        select = parse_select("SELECT a FROM c WHERE x < y")
        assert select.where.right == ColumnRef(None, "y")

    def test_constant_constant_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM c WHERE 1 = 2")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_view("DEFINE VIEW v AS SELECT a FROM c extra")

    def test_missing_group_by_columns(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM c GROUP BY")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_select("SELECT a FROM\n  WHERE x = 1")
        assert excinfo.value.line == 2

    def test_qualified_columns(self):
        select = parse_select("SELECT flights.acct FROM flights")
        assert select.items[0].column == ColumnRef("flights", "acct")

    def test_not_in_where(self):
        select = parse_select("SELECT a FROM c WHERE NOT x = 1")
        from repro.query.ast import NotExpr

        assert isinstance(select.where, NotExpr)
