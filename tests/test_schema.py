"""Tests for repro.relational.schema."""

import pytest

from repro.errors import (
    DuplicateAttributeError,
    SchemaError,
    UnknownAttributeError,
)
from repro.relational.schema import Attribute, Schema
from repro.relational.types import INT, SEQ, STR


def make_chronicle_schema():
    return Schema(
        [Attribute("sn", SEQ), Attribute("acct", INT), Attribute("name", STR)],
        sequence_attribute="sn",
    )


class TestConstruction:
    def test_names_in_order(self):
        schema = Schema.build(("a", "INT"), ("b", "STR"))
        assert schema.names == ("a", "b")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            Schema.build(("a", "INT"), ("a", "STR"))

    def test_key_must_exist(self):
        with pytest.raises(UnknownAttributeError):
            Schema.build(("a", "INT"), key=["b"])

    def test_key_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build(("a", "INT"), ("b", "INT"), key=["a", "a"])

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build(("a", "INT"), key=[])

    def test_sequence_attribute_must_be_seq_domain(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("sn", INT)], sequence_attribute="sn")

    def test_sequence_attribute_must_exist(self):
        with pytest.raises(UnknownAttributeError):
            Schema([Attribute("a", INT)], sequence_attribute="sn")

    def test_is_chronicle_schema(self):
        assert make_chronicle_schema().is_chronicle_schema
        assert not Schema.build(("a", "INT")).is_chronicle_schema

    def test_invalid_attribute_name(self):
        with pytest.raises(SchemaError):
            Attribute("", INT)

    def test_arity(self):
        assert make_chronicle_schema().arity == 3


class TestLookup:
    def test_position(self):
        schema = make_chronicle_schema()
        assert schema.position("acct") == 1

    def test_position_unknown(self):
        with pytest.raises(UnknownAttributeError):
            make_chronicle_schema().position("missing")

    def test_contains(self):
        schema = make_chronicle_schema()
        assert "sn" in schema
        assert "missing" not in schema

    def test_attribute_object(self):
        attr = make_chronicle_schema().attribute("name")
        assert attr.domain is STR

    def test_positions_many(self):
        schema = make_chronicle_schema()
        assert schema.positions(["name", "sn"]) == (2, 0)


class TestProjection:
    def test_project_reorders(self):
        schema = make_chronicle_schema().project(["name", "sn"])
        assert schema.names == ("name", "sn")

    def test_project_keeps_sequence_marker(self):
        schema = make_chronicle_schema().project(["sn", "acct"])
        assert schema.sequence_attribute == "sn"

    def test_project_drops_sequence_marker(self):
        schema = make_chronicle_schema().project(["acct"])
        assert schema.sequence_attribute is None

    def test_project_drops_key(self):
        schema = Schema.build(("a", "INT"), ("b", "INT"), key=["a"]).project(["a"])
        assert schema.key is None

    def test_drop(self):
        schema = make_chronicle_schema().drop(["name"])
        assert schema.names == ("sn", "acct")


class TestRename:
    def test_rename_attribute(self):
        schema = make_chronicle_schema().rename({"acct": "account"})
        assert schema.names == ("sn", "account", "name")

    def test_rename_sequence_attribute(self):
        schema = make_chronicle_schema().rename({"sn": "seq"})
        assert schema.sequence_attribute == "seq"

    def test_rename_key(self):
        schema = Schema.build(("a", "INT"), key=["a"]).rename({"a": "b"})
        assert schema.key == ("b",)


class TestConcat:
    def test_concat_disjoint(self):
        left = Schema.build(("a", "INT"))
        right = Schema.build(("b", "STR"))
        assert left.concat(right).names == ("a", "b")

    def test_concat_renames_clash(self):
        left = Schema.build(("a", "INT"), ("b", "INT"))
        right = Schema.build(("b", "STR"), ("c", "STR"))
        assert left.concat(right).names == ("a", "b", "r_b", "c")

    def test_concat_names_double_clash(self):
        left = Schema.build(("b", "INT"), ("r_b", "INT"))
        right = Schema.build(("b", "STR"))
        assert left.concat_names(right) == ["r2_b"]

    def test_concat_keeps_left_sequence(self):
        left = make_chronicle_schema()
        right = Schema.build(("x", "INT"))
        assert left.concat(right).sequence_attribute == "sn"


class TestCompatibility:
    def test_compatible(self):
        a = Schema.build(("x", "INT"), ("y", "STR"))
        b = Schema.build(("x", "INT"), ("y", "STR"))
        assert a.compatible_with(b)

    def test_incompatible_names(self):
        a = Schema.build(("x", "INT"))
        b = Schema.build(("y", "INT"))
        assert not a.compatible_with(b)

    def test_incompatible_domains(self):
        a = Schema.build(("x", "INT"))
        b = Schema.build(("x", "STR"))
        assert not a.compatible_with(b)

    def test_incompatible_arity(self):
        a = Schema.build(("x", "INT"))
        b = Schema.build(("x", "INT"), ("y", "INT"))
        assert not a.compatible_with(b)

    def test_require_compatible_raises(self):
        a = Schema.build(("x", "INT"))
        b = Schema.build(("y", "INT"))
        with pytest.raises(SchemaError):
            a.require_compatible(b, "union")


class TestCheckValues:
    def test_valid_values(self):
        schema = Schema.build(("a", "INT"), ("b", "STR"))
        assert schema.check_values([1, "x"]) == (1, "x")

    def test_wrong_arity(self):
        schema = Schema.build(("a", "INT"))
        with pytest.raises(SchemaError):
            schema.check_values([1, 2])

    def test_wrong_type(self):
        schema = Schema.build(("a", "INT"))
        with pytest.raises(SchemaError):
            schema.check_values(["nope"])


class TestEquality:
    def test_equal_schemas(self):
        assert Schema.build(("a", "INT")) == Schema.build(("a", "INT"))

    def test_key_matters(self):
        assert Schema.build(("a", "INT"), key=["a"]) != Schema.build(("a", "INT"))

    def test_hashable(self):
        assert len({Schema.build(("a", "INT")), Schema.build(("a", "INT"))}) == 1
