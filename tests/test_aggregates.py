"""Tests for the aggregation framework, including the paper's O(1)-step
contract (batch == fold) and decomposability (merge) properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.base import AggregateSpec, NonIncrementalAggregate, spec
from repro.aggregates.registry import AggregateRegistry, default_registry
from repro.aggregates.standard import (
    AVG,
    COUNT,
    FIRST,
    LAST,
    MAX,
    MIN,
    STDEV,
    SUM,
    VAR,
)
from repro.errors import AggregateError, NotIncrementalError
from repro.relational.types import FLOAT, INT

ALL_AGGREGATES = (COUNT, SUM, MIN, MAX, AVG, VAR, STDEV, FIRST, LAST)
MERGEABLE = tuple(a for a in ALL_AGGREGATES if a.mergeable)
INVERTIBLE = tuple(a for a in ALL_AGGREGATES if a.invertible)


def fold(aggregate, values):
    state = aggregate.initial()
    for value in values:
        state = aggregate.step(state, value)
    return aggregate.finalize(state)


class TestBatchResults:
    def test_count(self):
        assert fold(COUNT, [5, 5, 5]) == 3
        assert fold(COUNT, []) == 0

    def test_sum(self):
        assert fold(SUM, [1, 2, 3]) == 6
        assert fold(SUM, []) == 0

    def test_min_max(self):
        assert fold(MIN, [3, 1, 2]) == 1
        assert fold(MAX, [3, 1, 2]) == 3
        assert fold(MIN, []) is None
        assert fold(MAX, []) is None

    def test_min_max_strings(self):
        assert fold(MIN, ["pear", "apple"]) == "apple"
        assert fold(MAX, ["pear", "apple"]) == "pear"

    def test_avg(self):
        assert fold(AVG, [1, 2, 3]) == 2.0
        assert fold(AVG, []) is None

    def test_var(self):
        assert fold(VAR, [2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(4.0)
        assert fold(VAR, []) is None

    def test_stdev(self):
        assert fold(STDEV, [2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_first_last(self):
        assert fold(FIRST, [7, 8, 9]) == 7
        assert fold(LAST, [7, 8, 9]) == 9
        assert fold(FIRST, []) is None
        assert fold(LAST, []) is None

    def test_compute_matches_fold(self):
        for aggregate in ALL_AGGREGATES:
            assert aggregate.compute([3, 1, 4, 1, 5]) == fold(aggregate, [3, 1, 4, 1, 5])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-1000, 1000)), st.lists(st.integers(-1000, 1000)))
def test_merge_decomposition(left, right):
    """Property: fold(a ++ b) == merge(fold a, fold b) for mergeable
    aggregates — the decomposability the paper's Preliminaries require."""
    for aggregate in MERGEABLE:
        whole = aggregate.initial()
        for v in left + right:
            whole = aggregate.step(whole, v)
        part_l = aggregate.initial()
        for v in left:
            part_l = aggregate.step(part_l, v)
        part_r = aggregate.initial()
        for v in right:
            part_r = aggregate.step(part_r, v)
        merged = aggregate.merge(part_l, part_r)
        a, b = aggregate.finalize(whole), aggregate.finalize(merged)
        if isinstance(a, float) and isinstance(b, float):
            assert a == pytest.approx(b)
        else:
            assert a == b


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1))
def test_unstep_inverts_step(values):
    """Property: unstep removes the last-stepped value exactly."""
    for aggregate in INVERTIBLE:
        state = aggregate.initial()
        for v in values:
            state = aggregate.step(state, v)
        undone = aggregate.unstep(state, values[-1])
        rebuilt = aggregate.initial()
        for v in values[:-1]:
            rebuilt = aggregate.step(rebuilt, v)
        assert undone == rebuilt


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-100, 100)), st.lists(st.integers(-100, 100)))
def test_unmerge_inverts_merge(kept, evicted):
    """Property: unmerge(merge(a, b), b) == a for invertible aggregates —
    the cyclic-buffer eviction step."""
    for aggregate in INVERTIBLE:
        a = aggregate.initial()
        for v in kept:
            a = aggregate.step(a, v)
        b = aggregate.initial()
        for v in evicted:
            b = aggregate.step(b, v)
        assert aggregate.unmerge(aggregate.merge(a, b), b) == a


class TestOutputDomains:
    def test_count_outputs_int(self):
        assert COUNT.output_domain(INT) is INT
        assert COUNT.output_domain(None) is INT

    def test_avg_outputs_float(self):
        assert AVG.output_domain(INT) is FLOAT

    def test_sum_preserves_input(self):
        assert SUM.output_domain(INT) is INT

    def test_min_preserves_input(self):
        from repro.relational.types import STR

        assert MIN.output_domain(STR) is STR


class TestAggregateSpec:
    def test_default_output_name(self):
        assert spec(SUM, "miles").output == "sum_miles"
        assert spec(COUNT).output == "count"

    def test_explicit_output_name(self):
        assert spec(SUM, "miles", "balance").output == "balance"

    def test_argument_extraction(self):
        from repro.relational.schema import Schema
        from repro.relational.tuples import Row

        row = Row(Schema.build(("miles", "INT")), [250])
        assert spec(SUM, "miles").argument(row) == 250
        assert spec(COUNT).argument(row) == 1

    def test_missing_attribute_rejected(self):
        with pytest.raises(AggregateError):
            AggregateSpec(SUM)

    def test_require_incremental_accepts_standard(self):
        spec(SUM, "x").require_incremental()

    def test_require_incremental_rejects_batch_aggregate(self):
        median = NonIncrementalAggregate("MEDIAN", lambda vs: sorted(vs)[len(vs) // 2])
        with pytest.raises(NotIncrementalError):
            spec(median, "x").require_incremental()

    def test_non_incremental_still_computes(self):
        median = NonIncrementalAggregate("MEDIAN", lambda vs: sorted(vs)[len(vs) // 2])
        assert fold(median, [5, 1, 3]) == 3


class TestRegistry:
    def test_default_contains_standard(self):
        registry = default_registry()
        for name in ("SUM", "COUNT", "MIN", "MAX", "AVG", "VAR", "STDEV", "FIRST", "LAST"):
            assert name in registry

    def test_lookup_case_insensitive(self):
        assert default_registry().get("sum") is SUM

    def test_unknown_aggregate(self):
        with pytest.raises(AggregateError):
            default_registry().get("MEDIAN")

    def test_register_custom(self):
        registry = AggregateRegistry()
        median = NonIncrementalAggregate("MEDIAN", lambda vs: 0)
        registry.register(median)
        assert registry.get("median") is median

    def test_register_duplicate_rejected(self):
        registry = default_registry()
        with pytest.raises(AggregateError):
            registry.register(SUM)

    def test_register_replace(self):
        registry = default_registry()
        registry.register(SUM, replace=True)
        assert registry.get("SUM") is SUM

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.register(NonIncrementalAggregate("MEDIAN", lambda vs: 0))
        assert "MEDIAN" in clone
        assert "MEDIAN" not in registry

    def test_iteration_sorted(self):
        names = list(default_registry())
        assert names == sorted(names)
