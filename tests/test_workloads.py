"""Tests for the synthetic workload generators: determinism, schema
conformance, and distribution sanity."""

import pytest

from repro.core.group import ChronicleGroup
from repro.workloads import (
    BankingWorkload,
    CreditCardWorkload,
    FrequentFlyerWorkload,
    SensorWorkload,
    StockWorkload,
    TelecomWorkload,
    ZipfChooser,
    premier_status,
)

ALL_WORKLOADS = (
    TelecomWorkload,
    BankingWorkload,
    CreditCardWorkload,
    FrequentFlyerWorkload,
    StockWorkload,
    SensorWorkload,
)


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
class TestAllWorkloads:
    def test_deterministic_given_seed(self, workload_cls):
        a = list(workload_cls(seed=5).records(50))
        b = list(workload_cls(seed=5).records(50))
        assert a == b

    def test_seed_changes_stream(self, workload_cls):
        a = list(workload_cls(seed=5).records(50))
        b = list(workload_cls(seed=6).records(50))
        assert a != b

    def test_records_conform_to_schema(self, workload_cls):
        workload = workload_cls()
        group = ChronicleGroup("g")
        chronicle = group.create_chronicle(
            workload.NAME, workload.chronicle_spec(), retention=0
        )
        # Appending validates every record against the declared schema.
        for record in workload.records(100):
            group.append(chronicle, record)
        assert chronicle.appended_count == 100

    def test_records_start_offset(self, workload_cls):
        workload = workload_cls(seed=5)
        shifted = list(workload.records(5, start=100))
        assert len(shifted) == 5


class TestZipfChooser:
    def test_skew_toward_head(self):
        import random

        chooser = ZipfChooser(100, s=1.2, rng=random.Random(1))
        draws = [chooser.choose() for _ in range(3000)]
        head = sum(1 for d in draws if d < 10)
        assert head > len(draws) * 0.4  # top-10% gets >40% of traffic

    def test_range(self):
        import random

        chooser = ZipfChooser(10, rng=random.Random(2))
        assert all(0 <= chooser.choose() < 10 for _ in range(500))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfChooser(0)


class TestDomainDetails:
    def test_telecom_days_monotone(self):
        workload = TelecomWorkload(calls_per_day=10)
        days = [r["day"] for r in workload.records(50)]
        assert days == sorted(days)
        assert days[-1] == 4

    def test_telecom_charges_positive(self):
        assert all(r["cents"] > 0 for r in TelecomWorkload().records(200))

    def test_telecom_subscriber_relation(self):
        workload = TelecomWorkload(subscribers=20)
        rows = workload.subscriber_rows()
        assert len(rows) == 20
        assert {r["number"] for r in rows} == set(range(5_550_000, 5_550_020))

    def test_banking_kinds_signed_correctly(self):
        for record in BankingWorkload().records(300):
            if record["kind"] == "deposit":
                assert record["cents"] > 0
            else:
                assert record["cents"] < 0

    def test_banking_accounts_relation(self):
        rows = BankingWorkload(accounts=5).account_rows()
        assert len(rows) == 5

    def test_credit_card_cash_advance_rare(self):
        records = list(CreditCardWorkload(seed=1).records(2000))
        advances = sum(1 for r in records if r["category"] == "cash_advance")
        assert 0 < advances < 120

    def test_frequent_flyer_sources(self):
        records = list(FrequentFlyerWorkload().records(500))
        assert {r["source"] for r in records} <= {"flight", "partner", "promotion"}
        flights = [r for r in records if r["source"] == "flight"]
        assert all(100 <= r["miles"] <= 5000 for r in flights)

    def test_premier_status_thresholds(self):
        assert premier_status(0) == "member"
        assert premier_status(25_000) == "bronze"
        assert premier_status(60_000) == "silver"
        assert premier_status(150_000) == "gold"

    def test_stock_prices_positive_and_walk(self):
        records = list(StockWorkload().records(1000))
        assert all(r["price_cents"] >= 100 for r in records)
        assert all(r["shares"] % 100 == 0 for r in records)

    def test_sensor_spikes_flagged(self):
        records = list(SensorWorkload(seed=2, spike_probability=0.05).records(2000))
        spikes = [r for r in records if r["status"] == "spike"]
        assert spikes  # some spikes occurred
        assert len(spikes) < 300

    def test_sensor_relation_rows(self):
        rows = SensorWorkload(sensors=8).sensor_rows()
        assert len(rows) == 8
        assert all(r["zone"] == 0 for r in rows)
