"""Direct tests for the batch evaluator (repro.algebra.evaluate).

The oracle is mostly exercised through incremental-vs-batch comparisons;
these tests pin down its own semantics, especially the temporal join
against reconstructed relation versions (Section 2.3).
"""

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import ChronicleProduct, NonEquiSeqJoin, scan
from repro.algebra.evaluate import evaluate
from repro.core.group import ChronicleGroup
from repro.relational.predicate import attr_cmp
from repro.relational.schema import Schema
from repro.relational.versioned import VersionedRelation


@pytest.fixture
def setup():
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    customers = VersionedRelation(
        "customers",
        Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"]),
        watermark=lambda: group.watermark,
    )
    customers.insert({"acct": 1, "state": "NJ"})
    return group, calls, fees, customers


class TestBasicOperators:
    def test_scan(self, setup):
        group, calls, _, _ = setup
        group.append(calls, {"acct": 1, "mins": 5})
        table = evaluate(scan(calls))
        assert [r.values for r in table] == [(0, 1, 5)]

    def test_select_project(self, setup):
        group, calls, _, _ = setup
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(calls, {"acct": 2, "mins": 50})
        node = scan(calls).select(attr_cmp("mins", ">", 10)).project(["sn", "acct"])
        table = evaluate(node)
        assert [r.values for r in table] == [(1, 2)]

    def test_union_difference(self, setup):
        group, calls, fees, _ = setup
        group.append_simultaneous(
            {"calls": {"acct": 1, "mins": 5}, "fees": {"acct": 1, "mins": 5}}
        )
        group.append(calls, {"acct": 2, "mins": 7})
        union = evaluate(scan(calls).union(scan(fees)))
        assert len(union) == 2  # identical simultaneous tuple dedups
        difference = evaluate(scan(calls).minus(scan(fees)))
        assert [r["acct"] for r in difference] == [2]

    def test_groupby_sn(self, setup):
        group, calls, _, _ = setup
        group.append(calls, [{"acct": 1, "mins": 5}, {"acct": 1, "mins": 7}])
        node = scan(calls).groupby_sn(["sn", "acct"], [spec(SUM, "mins"), spec(COUNT)])
        table = evaluate(node)
        assert [r.values for r in table] == [(0, 1, 12, 2)]

    def test_extension_operators_evaluable(self, setup):
        group, calls, fees, _ = setup
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(fees, {"acct": 9, "mins": 1})
        product = evaluate(ChronicleProduct(scan(calls), scan(fees)))
        assert len(product) == 1
        less_than = evaluate(NonEquiSeqJoin(scan(calls), scan(fees), "<"))
        assert len(less_than) == 1  # calls@0 < fees@1
        greater = evaluate(NonEquiSeqJoin(scan(calls), scan(fees), ">"))
        assert len(greater) == 0


class TestTemporalJoinReconstruction:
    def test_product_joins_historic_versions(self, setup):
        """C × R with an address change between appends: each chronicle
        tuple joins the version current at its sequence number."""
        group, calls, _, customers = setup
        group.append(calls, {"acct": 1, "mins": 5})      # NJ era
        customers.update_key((1,), state="NY")           # proactive
        group.append(calls, {"acct": 1, "mins": 7})      # NY era
        table = evaluate(scan(calls).product(customers))
        states = sorted((r["sn"], r["state"]) for r in table)
        assert states == [(0, "NJ"), (1, "NY")]

    def test_keyjoin_joins_historic_versions(self, setup):
        group, calls, _, customers = setup
        group.append(calls, {"acct": 1, "mins": 5})
        customers.update_key((1,), state="CT")
        group.append(calls, {"acct": 1, "mins": 7})
        table = evaluate(scan(calls).keyjoin(customers, [("acct", "acct")]))
        states = sorted((r["sn"], r["state"]) for r in table)
        assert states == [(0, "NJ"), (1, "CT")]

    def test_deleted_customer_drops_out_of_later_joins(self, setup):
        group, calls, _, customers = setup
        group.append(calls, {"acct": 1, "mins": 5})
        customers.delete_key((1,))
        group.append(calls, {"acct": 1, "mins": 7})
        table = evaluate(scan(calls).keyjoin(customers, [("acct", "acct")]))
        assert [r["sn"] for r in table] == [0]

    def test_plain_relation_always_joins_current(self, setup):
        """A non-versioned relation has no history: every tuple joins the
        current contents (documented fallback)."""
        from repro.relational.relation import Relation

        group, calls, _, _ = setup
        plain = Relation(
            "plain", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
        )
        plain.insert({"acct": 1, "state": "NJ"})
        group.append(calls, {"acct": 1, "mins": 5})
        plain.update_key((1,), state="NY")
        group.append(calls, {"acct": 1, "mins": 7})
        table = evaluate(scan(calls).keyjoin(plain, [("acct", "acct")]))
        assert sorted(r["state"] for r in table) == ["NY", "NY"]
