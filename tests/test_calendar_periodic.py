"""Tests for calendars and periodic persistent views (Section 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import scan
from repro.core.group import ChronicleGroup
from repro.errors import CalendarError, ViewExpiredError
from repro.sca.summarize import GroupBySummary
from repro.views.calendar import (
    ExplicitCalendar,
    Interval,
    PeriodicCalendar,
    monthly,
    sliding,
)
from repro.views.periodic import PeriodicViewSet


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(0, 10)
        assert 0 in interval
        assert 9.99 in interval
        assert 10 not in interval

    def test_empty_rejected(self):
        with pytest.raises(CalendarError):
            Interval(5, 5)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 20))

    def test_width(self):
        assert Interval(2, 7).width == 5


class TestPeriodicCalendar:
    def test_tiling_months(self):
        calendar = monthly(month_length=30.0)
        assert calendar.interval_at(0) == Interval(0, 30)
        assert calendar.interval_at(2) == Interval(60, 90)

    def test_tiling_indices_unique(self):
        calendar = monthly(month_length=30.0)
        assert calendar.indices_containing(0) == [0]
        assert calendar.indices_containing(29.9) == [0]
        assert calendar.indices_containing(30) == [1]

    def test_before_origin_empty(self):
        calendar = PeriodicCalendar(origin=100, width=10)
        assert calendar.indices_containing(50) == []

    def test_sliding_windows_overlap(self):
        calendar = sliding(window=30, step=1)
        indices = calendar.indices_containing(29.5)
        assert indices == list(range(0, 30))

    def test_finite_count(self):
        calendar = PeriodicCalendar(0, 10, count=3)
        assert len(calendar) == 3
        assert calendar.is_finite()
        with pytest.raises(CalendarError):
            calendar.interval_at(3)
        assert calendar.indices_containing(35) == []

    def test_infinite_len_raises(self):
        with pytest.raises(CalendarError):
            len(monthly())

    def test_intervals_iteration_with_limit(self):
        calendar = monthly(month_length=10)
        assert list(calendar.intervals(limit=2)) == [Interval(0, 10), Interval(10, 20)]

    def test_intervals_iteration_infinite_without_limit(self):
        with pytest.raises(CalendarError):
            list(monthly().intervals())

    def test_validation(self):
        with pytest.raises(CalendarError):
            PeriodicCalendar(0, 0)
        with pytest.raises(CalendarError):
            PeriodicCalendar(0, 10, stride=0)
        with pytest.raises(CalendarError):
            PeriodicCalendar(0, 10, count=0)


@settings(max_examples=80, deadline=None)
@given(
    st.floats(-100, 100),
    st.floats(0.5, 50),
    st.floats(0.5, 50),
    st.floats(-200, 400),
)
def test_indices_containing_matches_definition(origin, width, stride, chronon):
    """Property: indices_containing agrees with direct interval checks."""
    calendar = PeriodicCalendar(origin, width, stride=stride)
    reported = calendar.indices_containing(chronon)
    # Exhaustive check over a safe index range.
    upper = max(int((chronon - origin) / stride) + 2, 0)
    expected = [
        index
        for index in range(0, upper)
        if calendar.interval_at(index).contains(chronon)
    ]
    assert reported == expected


class TestExplicitCalendar:
    def test_sorted_and_indexed(self):
        calendar = ExplicitCalendar([(10, 20), (0, 5)])
        assert calendar.interval_at(0) == Interval(0, 5)
        assert calendar.interval_at(1) == Interval(10, 20)

    def test_indices_containing(self):
        calendar = ExplicitCalendar([(0, 10), (5, 15)])
        assert calendar.indices_containing(7) == [0, 1]
        assert calendar.indices_containing(12) == [1]
        assert calendar.indices_containing(20) == []

    def test_empty_rejected(self):
        with pytest.raises(CalendarError):
            ExplicitCalendar([])

    def test_out_of_range(self):
        with pytest.raises(CalendarError):
            ExplicitCalendar([(0, 1)]).interval_at(5)

    def test_is_finite(self):
        assert ExplicitCalendar([(0, 1)]).is_finite()
        assert len(ExplicitCalendar([(0, 1), (1, 2)])) == 2


def build_periodic(calendar, expire_after=None, on_expire=None):
    group = ChronicleGroup("g")
    calls = group.create_chronicle(
        "calls", [("acct", "INT"), ("mins", "INT"), ("day", "INT")], retention=0
    )
    summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
    view_set = PeriodicViewSet(
        "monthly_mins",
        summary,
        calendar,
        chronon_of=lambda row: float(row["day"]),
        expire_after=expire_after,
        on_expire=on_expire,
    )
    view_set.attach(group)
    return group, calls, view_set


class TestPeriodicViews:
    def test_routing_to_intervals(self):
        group, calls, views = build_periodic(monthly(month_length=30))
        group.append(calls, {"acct": 1, "mins": 10, "day": 5})    # month 0
        group.append(calls, {"acct": 1, "mins": 20, "day": 35})   # month 1
        group.append(calls, {"acct": 1, "mins": 30, "day": 36})   # month 1
        assert views[0].value((1,), "sum_mins") == 10
        assert views[1].value((1,), "sum_mins") == 50

    def test_lazy_instantiation(self):
        group, calls, views = build_periodic(monthly(month_length=30))
        group.append(calls, {"acct": 1, "mins": 10, "day": 95})  # month 3 only
        assert views.active_indices() == [3]
        assert views.instantiated_count == 1

    def test_overlapping_windows_fold_into_all(self):
        group, calls, views = build_periodic(sliding(window=3, step=1))
        group.append(calls, {"acct": 1, "mins": 7, "day": 2})
        # day 2 lies in windows [0,3), [1,4), [2,5)
        assert views.active_indices() == [0, 1, 2]
        for index in (0, 1, 2):
            assert views[index].value((1,), "sum_mins") == 7

    def test_expiration_drops_views(self):
        expired = []
        group, calls, views = build_periodic(
            monthly(month_length=30),
            expire_after=0.0,
            on_expire=lambda index, view: expired.append(index),
        )
        group.append(calls, {"acct": 1, "mins": 10, "day": 5})
        group.append(calls, {"acct": 1, "mins": 20, "day": 65})  # month 2
        assert expired == [0]
        assert views.active_indices() == [2]

    def test_expired_view_raises(self):
        group, calls, views = build_periodic(monthly(month_length=30), expire_after=0.0)
        group.append(calls, {"acct": 1, "mins": 10, "day": 5})
        group.append(calls, {"acct": 1, "mins": 20, "day": 65})
        with pytest.raises(ViewExpiredError):
            views[0]

    def test_expired_interval_not_remaintained(self):
        group, calls, views = build_periodic(monthly(month_length=30), expire_after=0.0)
        group.append(calls, {"acct": 1, "mins": 10, "day": 65})
        # month 0 already expired: a (hypothetical) late record for it is
        # dropped rather than resurrecting the view.  (Chronicle order makes
        # this rare; chronon mappers may be coarse.)
        group.append(calls, {"acct": 1, "mins": 99, "day": 65})
        assert views.active_indices() == [2]

    def test_grace_period_keeps_views(self):
        group, calls, views = build_periodic(monthly(month_length=30), expire_after=100.0)
        group.append(calls, {"acct": 1, "mins": 10, "day": 5})
        group.append(calls, {"acct": 1, "mins": 20, "day": 65})
        assert views.active_indices() == [0, 2]

    def test_explicit_view_access_instantiates(self):
        group, calls, views = build_periodic(monthly(month_length=30))
        view = views.view(7)
        assert views.active_indices() == [7]
        assert len(view) == 0

    def test_default_chronon_uses_group_mapper(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
        summary = GroupBySummary(scan(calls), ["acct"], [spec(COUNT)])
        views = PeriodicViewSet("v", summary, monthly(month_length=10))
        views.attach(group)
        for _ in range(25):
            group.append(calls, {"acct": 1, "mins": 1})
        # Identity chronons: sequence numbers 0..24 → months 0,1,2.
        assert views.active_indices() == [0, 1, 2]
        assert views[1].value((1,), "count") == 10
