"""Tests for the summarization step (Definition 4.3) and persistent views
(Theorem 4.4 behaviour)."""

import pytest

from repro.aggregates import AVG, COUNT, MAX, MIN, SUM, spec
from repro.aggregates.base import NonIncrementalAggregate
from repro.algebra.ast import ChronicleProduct, scan
from repro.algebra.classify import IMClass, Language
from repro.core.group import ChronicleGroup
from repro.errors import (
    AlgebraError,
    NotIncrementalError,
    SchemaError,
    ViewError,
)
from repro.relational.predicate import attr_cmp
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary, ProjectSummary
from repro.sca.view import PersistentView, evaluate_summary


def build(retention=None):
    group = ChronicleGroup("g")
    calls = group.create_chronicle(
        "calls", [("acct", "INT"), ("mins", "INT")], retention=retention
    )
    return group, calls


class TestSummaryValidation:
    def test_project_summary_drops_sn(self):
        _, calls = build()
        summary = ProjectSummary(scan(calls), ["acct"])
        assert summary.output_schema.names == ("acct",)

    def test_project_summary_keeping_sn_rejected(self):
        _, calls = build()
        with pytest.raises(AlgebraError):
            ProjectSummary(scan(calls), ["sn", "acct"])

    def test_project_summary_empty_rejected(self):
        _, calls = build()
        with pytest.raises(SchemaError):
            ProjectSummary(scan(calls), [])

    def test_groupby_summary_schema(self):
        _, calls = build()
        summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        assert summary.output_schema.names == ("acct", "sum_mins")
        assert summary.output_schema.key == ("acct",)

    def test_groupby_summary_with_sn_rejected(self):
        _, calls = build()
        with pytest.raises(AlgebraError):
            GroupBySummary(scan(calls), ["sn", "acct"], [spec(SUM, "mins")])

    def test_groupby_summary_requires_aggregates(self):
        _, calls = build()
        with pytest.raises(AlgebraError):
            GroupBySummary(scan(calls), ["acct"], [])

    def test_groupby_summary_rejects_non_incremental(self):
        # Definition 4.3: only incrementally computable aggregates.
        _, calls = build()
        median = NonIncrementalAggregate("MEDIAN", lambda vs: 0)
        with pytest.raises(NotIncrementalError):
            GroupBySummary(scan(calls), ["acct"], [spec(median, "mins")])

    def test_duplicate_outputs_rejected(self):
        _, calls = build()
        with pytest.raises(SchemaError):
            GroupBySummary(
                scan(calls),
                ["acct"],
                [spec(SUM, "mins", "x"), spec(COUNT, None, "x")],
            )


class TestGroupedView:
    def test_incremental_sum_and_count(self):
        group, calls = build()
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins"), spec(COUNT)])
        )
        attach_view(view, group)
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(calls, {"acct": 1, "mins": 7})
        group.append(calls, {"acct": 2, "mins": 3})
        assert view.value((1,), "sum_mins") == 12
        assert view.value((1,), "count") == 2
        assert view.value((2,), "sum_mins") == 3
        assert view.value((99,), "sum_mins") is None

    def test_min_max_avg(self):
        group, calls = build()
        view = PersistentView(
            "v",
            GroupBySummary(
                scan(calls),
                ["acct"],
                [spec(MIN, "mins"), spec(MAX, "mins"), spec(AVG, "mins")],
            ),
        )
        attach_view(view, group)
        for mins in (5, 1, 9):
            group.append(calls, {"acct": 1, "mins": mins})
        row = view.lookup((1,))
        assert (row["min_mins"], row["max_mins"], row["avg_mins"]) == (1, 9, 5.0)

    def test_global_aggregate(self):
        group, calls = build()
        view = PersistentView("v", GroupBySummary(scan(calls), [], [spec(SUM, "mins")]))
        attach_view(view, group)
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(calls, {"acct": 2, "mins": 7})
        assert len(view) == 1
        assert view.lookup(())["sum_mins"] == 12

    def test_matches_oracle(self):
        group, calls = build()
        summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        view = PersistentView("v", summary)
        attach_view(view, group)
        for i in range(50):
            group.append(calls, {"acct": i % 7, "mins": i})
        assert view.to_table() == evaluate_summary(summary)

    def test_maintenance_count(self):
        group, calls = build()
        view = PersistentView("v", GroupBySummary(scan(calls), ["acct"], [spec(COUNT)]))
        attach_view(view, group)
        for i in range(5):
            group.append(calls, {"acct": 1, "mins": i})
        assert view.maintenance_count == 5


class TestProjectionView:
    def test_set_semantics(self):
        group, calls = build()
        view = PersistentView("v", ProjectSummary(scan(calls), ["acct"]))
        attach_view(view, group)
        for acct in (1, 2, 1, 1, 3):
            group.append(calls, {"acct": acct, "mins": 0})
        assert sorted(r["acct"] for r in view) == [1, 2, 3]

    def test_matches_oracle(self):
        group, calls = build()
        summary = ProjectSummary(scan(calls).select(attr_cmp("mins", ">", 2)), ["acct", "mins"])
        view = PersistentView("v", summary)
        attach_view(view, group)
        for i in range(30):
            group.append(calls, {"acct": i % 5, "mins": i % 7})
        assert view.to_table() == evaluate_summary(summary)


class TestNoStorageMaintenance:
    def test_view_correct_with_zero_retention(self):
        """The headline property: maintenance never touches the chronicle,
        so a chronicle that stores nothing still yields correct views."""
        group, calls = build(retention=0)
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins"), spec(COUNT)])
        )
        attach_view(view, group)
        expected = {}
        for i in range(500):
            acct = i % 13
            expected[acct] = expected.get(acct, 0) + i
            group.append(calls, {"acct": acct, "mins": i})
        assert len(calls) == 0  # truly nothing stored
        for acct, total in expected.items():
            assert view.value((acct,), "sum_mins") == total

    def test_keyjoin_view_with_zero_retention(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle(
            "calls", [("acct", "INT"), ("mins", "INT")], retention=0
        )
        customers = Relation(
            "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
        )
        customers.insert({"acct": 0, "state": "NJ"})
        customers.insert({"acct": 1, "state": "NY"})
        view = PersistentView(
            "v",
            GroupBySummary(
                scan(calls).keyjoin(customers, [("acct", "acct")]),
                ["state"],
                [spec(SUM, "mins")],
            ),
        )
        attach_view(view, group)
        for i in range(100):
            group.append(calls, {"acct": i % 2, "mins": 1})
        assert view.value(("NJ",), "sum_mins") == 50
        assert view.value(("NY",), "sum_mins") == 50


class TestViewRegistrationRules:
    def test_not_ca_expression_rejected(self):
        group = ChronicleGroup("g")
        a = group.create_chronicle("a", [("v", "INT")])
        b = group.create_chronicle("b", [("v", "INT")])
        summary = GroupBySummary(
            ChronicleProduct(scan(a), scan(b)), ["v"], [spec(COUNT)]
        )
        with pytest.raises(ViewError):
            PersistentView("v", summary)

    def test_require_language_enforced(self):
        group, calls = build()
        customers = Relation(
            "customers", Schema.build(("acct", "INT"), ("s", "STR"), key=["acct"])
        )
        summary = GroupBySummary(
            scan(calls).product(customers), ["s"], [spec(COUNT)]
        )
        with pytest.raises(ViewError):
            PersistentView("v", summary, require_language=Language.CA_JOIN)

    def test_require_language_accepts_smaller_fragment(self):
        group, calls = build()
        summary = GroupBySummary(scan(calls), ["acct"], [spec(COUNT)])
        view = PersistentView("v", summary, require_language=Language.CA_JOIN)
        assert view.language is Language.CA1
        assert view.im_class is IMClass.CONSTANT


class TestInitialMaterialization:
    def test_initialize_from_store(self):
        group, calls = build()
        for i in range(10):
            group.append(calls, {"acct": i % 2, "mins": i})
        summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        view = PersistentView("v", summary)
        view.initialize_from_store()
        assert view.value((0,), "sum_mins") == 0 + 2 + 4 + 6 + 8
        # Subsequent appends continue incrementally from the initial state.
        attach_view(view, group)
        group.append(calls, {"acct": 0, "mins": 100})
        assert view.value((0,), "sum_mins") == 120
