"""Tests for the HAVING visibility filter and per-event delta sharing."""

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import scan
from repro.algebra.delta_engine import propagate
from repro.baselines.recompute import RecomputeMaintainer
from repro.core.database import ChronicleDatabase
from repro.core.delta import Delta
from repro.core.group import ChronicleGroup
from repro.errors import CompileError, SchemaError
from repro.relational.predicate import attr_cmp
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView, evaluate_summary
from repro.views.registry import ViewRegistry


@pytest.fixture
def db():
    database = ChronicleDatabase()
    database.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
    return database


class TestHavingLanguage:
    def test_having_filters_visibility(self, db):
        view = db.define_view(
            "DEFINE VIEW heavy AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller HAVING total > 20"
        )
        db.append("calls", {"caller": 1, "minutes": 15})
        db.append("calls", {"caller": 2, "minutes": 30})
        assert [r["caller"] for r in view] == [2]
        assert view.lookup((1,)) is None
        assert len(view) == 1

    def test_group_becomes_visible_as_it_accumulates(self, db):
        view = db.define_view(
            "DEFINE VIEW heavy AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller HAVING total > 20"
        )
        db.append("calls", {"caller": 1, "minutes": 15})
        assert view.lookup((1,)) is None
        db.append("calls", {"caller": 1, "minutes": 10})
        assert view.lookup((1,))["total"] == 25

    def test_having_on_alias_and_on_count(self, db):
        view = db.define_view(
            "DEFINE VIEW busy AS SELECT caller, COUNT(*) AS n "
            "FROM calls GROUP BY caller HAVING n >= 2"
        )
        db.append("calls", {"caller": 1, "minutes": 1})
        db.append("calls", {"caller": 1, "minutes": 2})
        db.append("calls", {"caller": 2, "minutes": 3})
        assert [r["caller"] for r in view] == [1]

    def test_having_matches_oracle(self, db):
        view = db.define_view(
            "DEFINE VIEW heavy AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller HAVING total > 20"
        )
        import random

        rng = random.Random(9)
        for _ in range(100):
            db.append(
                "calls", {"caller": rng.randrange(6), "minutes": rng.randrange(10)}
            )
        assert sorted(r.values for r in view) == sorted(
            r.values for r in evaluate_summary(view.summary)
        )

    def test_having_matches_recompute_baseline(self, db):
        view = db.define_view(
            "DEFINE VIEW heavy AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller HAVING total > 10"
        )
        maintainer = RecomputeMaintainer(view.summary)
        for caller, minutes in ((1, 5), (1, 7), (2, 3)):
            db.append("calls", {"caller": caller, "minutes": minutes})
        assert sorted(r.values for r in maintainer) == sorted(r.values for r in view)

    def test_having_without_group_by_rejected_for_projection(self, db):
        with pytest.raises(CompileError):
            db.define_view(
                "DEFINE VIEW v AS SELECT caller FROM calls HAVING caller > 1"
            )

    def test_having_unknown_output_rejected(self, db):
        with pytest.raises(Exception):
            db.define_view(
                "DEFINE VIEW v AS SELECT caller, SUM(minutes) AS total "
                "FROM calls GROUP BY caller HAVING nope > 1"
            )

    def test_having_on_global_aggregate(self, db):
        view = db.define_view(
            "DEFINE VIEW grand AS SELECT SUM(minutes) AS total FROM calls "
            "HAVING total > 100"
        )
        db.append("calls", {"caller": 1, "minutes": 50})
        assert view.lookup(()) is None
        db.append("calls", {"caller": 1, "minutes": 60})
        assert view.lookup(())["total"] == 110


class TestHavingProgrammatic:
    def test_summary_having_validated(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        with pytest.raises(SchemaError):
            GroupBySummary(
                scan(calls),
                ["caller"],
                [spec(SUM, "minutes")],
                having=attr_cmp("zzz", ">", 1),
            )

    def test_summary_having_applied(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        summary = GroupBySummary(
            scan(calls),
            ["caller"],
            [spec(SUM, "minutes")],
            having=attr_cmp("sum_minutes", ">", 5),
        )
        view = PersistentView("v", summary)
        attach_view(view, group)
        group.append(calls, {"caller": 1, "minutes": 3})
        group.append(calls, {"caller": 2, "minutes": 9})
        assert [r["caller"] for r in view] == [2]


class TestDeltaSharing:
    def test_shared_subtree_computed_once(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        shared = scan(calls).select(attr_cmp("minutes", ">", 0))
        registry = ViewRegistry()
        registry.attach(group)
        registry.register(
            PersistentView("a", GroupBySummary(shared, ["caller"], [spec(SUM, "minutes")]))
        )
        registry.register(
            PersistentView("b", GroupBySummary(shared, [], [spec(COUNT)]))
        )
        from repro.complexity.counters import GLOBAL_COUNTERS

        with GLOBAL_COUNTERS.measure() as cost:
            group.append(calls, {"caller": 1, "minutes": 5})
        # The shared Select's filter runs once, not twice: one tuple_op
        # for the selection + two folds (one per view).
        assert cost["tuple_op"] == 3

    def test_cache_returns_same_delta_object(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        shared = scan(calls).select(attr_cmp("minutes", ">", 0))
        rows = group.append(calls, {"caller": 1, "minutes": 5})
        deltas = {"calls": Delta(calls.schema, rows)}
        cache = {}
        first = propagate(shared, deltas, cache=cache)
        second = propagate(shared, deltas, cache=cache)
        assert first is second

    def test_sharing_preserves_results(self):
        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        shared = scan(calls).select(attr_cmp("minutes", ">", 2))
        registry = ViewRegistry()
        registry.attach(group)
        a = registry.register(
            PersistentView("a", GroupBySummary(shared, ["caller"], [spec(SUM, "minutes")]))
        )
        b = registry.register(
            PersistentView("b", GroupBySummary(shared, [], [spec(COUNT)]))
        )
        import random

        rng = random.Random(3)
        for _ in range(100):
            group.append(calls, {"caller": rng.randrange(4), "minutes": rng.randrange(6)})
        assert sorted(r.values for r in a) == sorted(
            r.values for r in evaluate_summary(a.summary)
        )
        assert list(b)[0]["count"] == list(evaluate_summary(b.summary))[0]["count"]
