"""Tests for repro.relational.types: domains, coercion, NULL handling."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import (
    BOOL,
    FLOAT,
    INT,
    SEQ,
    STR,
    check_value,
    common_domain,
    domain_by_name,
    resolve_domain,
)


class TestMembership:
    def test_int_contains_int(self):
        assert INT.contains(5)

    def test_int_excludes_bool(self):
        assert not INT.contains(True)

    def test_int_excludes_float(self):
        assert not INT.contains(5.0)

    def test_float_contains_float_and_int(self):
        assert FLOAT.contains(2.5)
        assert FLOAT.contains(2)

    def test_float_excludes_bool(self):
        assert not FLOAT.contains(True)

    def test_str_contains_str(self):
        assert STR.contains("abc")
        assert not STR.contains(1)

    def test_bool_contains_bool_only(self):
        assert BOOL.contains(True)
        assert not BOOL.contains(1)

    def test_seq_contains_int(self):
        assert SEQ.contains(42)
        assert not SEQ.contains(4.2)


class TestCoercion:
    def test_identity_coercion(self):
        assert INT.coerce(3) == 3

    def test_float_admits_int_values(self):
        # FLOAT is the numeric domain: ints pass through unchanged so
        # integer aggregates stay exact in FLOAT-typed view columns.
        value = FLOAT.coerce(3)
        assert value == 3
        assert isinstance(value, int)

    def test_str_to_int_fails(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce("3")

    def test_float_to_int_fails(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce(3.5)

    def test_bool_to_int_fails(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce(True)


class TestNullHandling:
    def test_null_allowed_when_nullable(self):
        assert check_value(INT, None, nullable=True) is None

    def test_null_rejected_when_not_nullable(self):
        with pytest.raises(TypeMismatchError):
            check_value(INT, None, nullable=False)

    def test_non_null_value_coerced(self):
        assert check_value(FLOAT, 2, nullable=True) == 2.0


class TestLookup:
    def test_domain_by_name(self):
        assert domain_by_name("int") is INT
        assert domain_by_name("SEQ") is SEQ

    def test_unknown_name(self):
        with pytest.raises(TypeMismatchError):
            domain_by_name("DECIMAL")

    def test_resolve_domain_passthrough(self):
        assert resolve_domain(STR) is STR
        assert resolve_domain("str") is STR

    def test_resolve_domain_bad_input(self):
        with pytest.raises(TypeMismatchError):
            resolve_domain(42)


class TestCommonDomain:
    def test_same_domain(self):
        assert common_domain(INT, INT) is INT

    def test_numeric_mix(self):
        assert common_domain(INT, FLOAT) is FLOAT
        assert common_domain(SEQ, INT) is INT

    def test_incomparable(self):
        assert common_domain(INT, STR) is None
        assert common_domain(BOOL, INT) is None
