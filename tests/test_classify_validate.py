"""Tests for language classification (Definition 4.2, Theorem 4.5) and
structural validation of the CA fragments."""

import pytest

from repro.aggregates import SUM, spec
from repro.algebra.ast import ChronicleProduct, NonEquiSeqJoin, scan
from repro.algebra.classify import IMClass, Language, classify, im_class_of, language_of
from repro.algebra.validate import (
    predicate_in_ca_fragment,
    validate_ca,
    validate_ca1,
    validate_ca_join,
)
from repro.core.group import ChronicleGroup
from repro.errors import LanguageViolationError
from repro.relational.predicate import And, Not, Or, attr_cmp, attr_eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def setup():
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    customers = Relation(
        "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
    )
    customers.insert({"acct": 1, "state": "NJ"})
    customers.insert({"acct": 2, "state": "NY"})
    return group, calls, fees, customers


class TestLanguageFragments:
    def test_pure_chronicle_expression_is_ca1(self, setup):
        _, calls, fees, _ = setup
        node = scan(calls).select(attr_cmp("mins", ">", 0)).union(scan(fees))
        assert language_of(node) is Language.CA1

    def test_keyjoin_promotes_to_ca_join(self, setup):
        _, calls, _, customers = setup
        node = scan(calls).keyjoin(customers, [("acct", "acct")])
        assert language_of(node) is Language.CA_JOIN

    def test_product_promotes_to_ca(self, setup):
        _, calls, _, customers = setup
        node = scan(calls).product(customers)
        assert language_of(node) is Language.CA

    def test_product_dominates_keyjoin(self, setup):
        _, calls, _, customers = setup
        node = scan(calls).keyjoin(customers, [("acct", "acct")]).product(customers)
        assert language_of(node) is Language.CA

    def test_chronicle_product_is_not_ca(self, setup):
        _, calls, fees, _ = setup
        node = ChronicleProduct(scan(calls), scan(fees))
        assert language_of(node) is Language.NOT_CA

    def test_non_equi_join_is_not_ca(self, setup):
        _, calls, fees, _ = setup
        node = NonEquiSeqJoin(scan(calls), scan(fees), "<")
        assert language_of(node) is Language.NOT_CA

    def test_negated_predicate_is_not_ca(self, setup):
        _, calls, _, _ = setup
        node = scan(calls).select(Not(attr_eq("acct", 1)))
        assert language_of(node) is Language.NOT_CA

    def test_language_ordering(self):
        assert Language.CA1 <= Language.CA_JOIN <= Language.CA <= Language.NOT_CA
        assert not (Language.CA <= Language.CA1)


class TestCounts:
    def test_union_and_join_counts(self, setup):
        _, calls, fees, customers = setup
        node = (
            scan(calls)
            .union(scan(fees))
            .keyjoin(customers, [("acct", "acct")])
        )
        result = classify(node)
        assert result.unions == 1
        assert result.joins == 1
        assert result.max_relation_size == 2

    def test_seq_join_counts_as_join(self, setup):
        _, calls, fees, _ = setup
        node = scan(calls).join(scan(fees))
        assert classify(node).joins == 1

    def test_nested_counts(self, setup):
        _, calls, fees, customers = setup
        left = scan(calls).union(scan(fees))
        right = scan(calls).union(scan(fees))
        node = left.join(right).product(customers)
        result = classify(node)
        assert result.unions == 2
        assert result.joins == 2

    def test_delta_size_bound_monotone(self, setup):
        _, calls, fees, customers = setup
        small = classify(scan(calls))
        big = classify(
            scan(calls).union(scan(fees)).product(customers).product(customers)
        )
        assert small.delta_size_bound() <= big.delta_size_bound()


class TestIMClasses:
    def test_theorem_45_mapping(self, setup):
        # Theorem 4.5: SCA1 ⊂ IM-Constant, SCA⋈ ⊂ IM-log(R), SCA ⊂ IM-R^k.
        _, calls, fees, customers = setup
        assert im_class_of(scan(calls)) is IMClass.CONSTANT
        assert (
            im_class_of(scan(calls).keyjoin(customers, [("acct", "acct")]))
            is IMClass.LOG_R
        )
        assert im_class_of(scan(calls).product(customers)) is IMClass.POLY_R
        assert (
            im_class_of(ChronicleProduct(scan(calls), scan(fees)))
            is IMClass.POLY_C
        )

    def test_im_class_ordering(self):
        # The containment chain of Section 3.
        assert IMClass.CONSTANT <= IMClass.LOG_R <= IMClass.POLY_R <= IMClass.POLY_C


class TestPredicateFragment:
    def test_comparisons_and_disjunctions_admissible(self):
        assert predicate_in_ca_fragment(attr_eq("a", 1))
        assert predicate_in_ca_fragment(Or(attr_eq("a", 1), attr_cmp("b", "<", 2)))

    def test_conjunction_sugar_admissible(self):
        assert predicate_in_ca_fragment(And(attr_eq("a", 1), attr_eq("b", 2)))
        assert predicate_in_ca_fragment(
            And(Or(attr_eq("a", 1), attr_eq("a", 2)), attr_eq("b", 3))
        )

    def test_negation_inadmissible(self):
        assert not predicate_in_ca_fragment(Not(attr_eq("a", 1)))

    def test_or_of_and_inadmissible(self):
        # Definition 4.1 allows only disjunctions of atomic terms.
        assert not predicate_in_ca_fragment(
            Or(And(attr_eq("a", 1), attr_eq("b", 2)), attr_eq("c", 3))
        )


class TestValidators:
    def test_validate_ca_accepts_ca(self, setup):
        _, calls, _, customers = setup
        validate_ca(scan(calls).product(customers))

    def test_validate_ca_rejects_extension_ops(self, setup):
        _, calls, fees, _ = setup
        with pytest.raises(LanguageViolationError):
            validate_ca(ChronicleProduct(scan(calls), scan(fees)))
        with pytest.raises(LanguageViolationError):
            validate_ca(NonEquiSeqJoin(scan(calls), scan(fees), "<"))

    def test_validate_ca_rejects_bad_predicate(self, setup):
        _, calls, _, _ = setup
        with pytest.raises(LanguageViolationError):
            validate_ca(scan(calls).select(Not(attr_eq("acct", 1))))

    def test_validate_ca_join_rejects_product(self, setup):
        _, calls, _, customers = setup
        with pytest.raises(LanguageViolationError):
            validate_ca_join(scan(calls).product(customers))

    def test_validate_ca_join_accepts_keyjoin(self, setup):
        _, calls, _, customers = setup
        validate_ca_join(scan(calls).keyjoin(customers, [("acct", "acct")]))

    def test_validate_ca1_rejects_relation_operators(self, setup):
        _, calls, _, customers = setup
        with pytest.raises(LanguageViolationError):
            validate_ca1(scan(calls).keyjoin(customers, [("acct", "acct")]))
        with pytest.raises(LanguageViolationError):
            validate_ca1(scan(calls).product(customers))

    def test_validate_ca1_accepts_pure_chronicle(self, setup):
        _, calls, fees, _ = setup
        validate_ca1(scan(calls).union(scan(fees)).select(attr_eq("acct", 1)))
