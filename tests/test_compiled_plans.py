"""Compiled maintenance plans: equivalence, interning, and fast paths.

The compiled engine (:mod:`repro.algebra.plan`) must be observationally
identical to the tree interpreter: for any CA/SCA expression and any
append stream, a view maintained through compiled plans holds exactly
the rows of one maintained through :func:`repro.algebra.delta_engine
.propagate` (and both match the batch-recompute oracle).  On top of
equivalence, structural interning must make independently defined views
share subexpression deltas — verified through ``GLOBAL_COUNTERS``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import AVG, COUNT, MAX, MIN, SUM, spec
from repro.algebra.ast import ChronicleProduct, scan
from repro.algebra.plan import Interner, PlanCompiler, compile_predicate
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.core.database import ChronicleDatabase
from repro.core.delta import Delta
from repro.core.group import ChronicleGroup
from repro.errors import (
    ChronicleAccessError,
    SchemaError,
    UnknownAttributeError,
    ViewRegistrationError,
)
from repro.relational.predicate import Or, attr_cmp, attr_eq, attrs_cmp
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import Row
from repro.sca.maintenance import attach_compiled_view, attach_view
from repro.sca.summarize import GroupBySummary, ProjectSummary
from repro.sca.view import PersistentView, evaluate_summary
from repro.views.registry import ViewRegistry

ACCT_RANGE = 4
MINS_RANGE = 10


def build_group():
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    customers = Relation(
        "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
    )
    for acct in range(ACCT_RANGE):
        customers.insert({"acct": acct, "state": "NJ" if acct % 2 else "NY"})
    return group, calls, fees, customers


def run_events(group, events):
    for target, records in events:
        payload = [{"acct": acct, "mins": mins} for acct, mins in records]
        if target == "both":
            group.append_simultaneous({"calls": payload, "fees": payload})
        else:
            group.append(target, payload)


def assert_compiled_matches_interpreted(node_factory, summary_factory, events):
    """Maintain one summary through both engines; states must be equal."""
    group, calls, fees, customers = build_group()
    node = node_factory(calls, fees, customers)
    summary = summary_factory(node, customers)
    interpreted_registry = ViewRegistry(compile=False)
    compiled_registry = ViewRegistry(compile=True)
    interpreted_registry.attach(group)
    compiled_registry.attach(group)
    view_i = interpreted_registry.register(PersistentView("v", summary))
    view_c = compiled_registry.register(PersistentView("v", summary))
    run_events(group, events)
    rows_i = sorted(tuple(r.values) for r in view_i)
    rows_c = sorted(tuple(r.values) for r in view_c)
    assert rows_c == rows_i
    oracle = sorted(tuple(r.values) for r in evaluate_summary(summary))
    assert rows_c == oracle


# ---------------------------------------------------------------------------
# Property test: randomized CA/SCA expressions and append streams
# ---------------------------------------------------------------------------


@st.composite
def ca_expressions(draw, depth=2):
    """A function (calls, fees, customers) -> CA node of schema
    (sn, acct, mins)."""
    if depth == 0:
        which = draw(st.sampled_from(["calls", "fees"]))
        return lambda calls, fees, customers: scan(calls if which == "calls" else fees)
    op = draw(
        st.sampled_from(
            ["select", "select_or", "union", "difference", "join", "base", "base"]
        )
    )
    if op == "base":
        return draw(ca_expressions(depth=0))
    if op in ("select", "select_or"):
        child = draw(ca_expressions(depth=depth - 1))
        attr = draw(st.sampled_from(["acct", "mins"]))
        operator = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        bound = draw(st.integers(0, MINS_RANGE))
        if op == "select":
            predicate = attr_cmp(attr, operator, bound)
        else:
            bound2 = draw(st.integers(0, ACCT_RANGE))
            predicate = Or(attr_cmp(attr, operator, bound), attr_eq("acct", bound2))
        return lambda calls, fees, customers, c=child, p=predicate: c(
            calls, fees, customers
        ).select(p)
    left = draw(ca_expressions(depth=depth - 1))
    right = draw(ca_expressions(depth=depth - 1))
    if op == "join":
        # SeqJoin changes the schema, so keep it shallow: join two bases
        # and project back onto the common (sn, acct, mins) shape.
        return lambda calls, fees, customers, l=left, r=right: l(
            calls, fees, customers
        ).join(r(calls, fees, customers)).project(["sn", "acct", "mins"])
    if op == "union":
        return lambda calls, fees, customers, l=left, r=right: l(
            calls, fees, customers
        ).union(r(calls, fees, customers))
    return lambda calls, fees, customers, l=left, r=right: l(
        calls, fees, customers
    ).minus(r(calls, fees, customers))


@st.composite
def summaries(draw):
    """A function (node, customers) -> Summary over the node."""
    kind = draw(st.sampled_from(["project", "group", "group_global"]))
    join_relation = draw(st.booleans())
    group_attr = draw(st.sampled_from(["acct", "state"])) if join_relation else "acct"
    aggs = [spec(SUM, "mins"), spec(COUNT), spec(MIN, "mins"), spec(MAX, "mins"),
            spec(AVG, "mins")]
    chosen = draw(
        st.lists(st.sampled_from(range(len(aggs))), min_size=1, max_size=3, unique=True)
    )
    selected = [aggs[i] for i in chosen]

    def build(node, customers):
        if join_relation:
            node = node.keyjoin(customers, [("acct", "acct")])
        if kind == "project":
            names = ["acct", "mins"] if not join_relation else ["acct", "state"]
            return ProjectSummary(node, names)
        if kind == "group_global":
            return GroupBySummary(node, [], selected)
        return GroupBySummary(node, [group_attr], selected)

    return build


events_strategy = st.lists(
    st.tuples(
        st.sampled_from(["calls", "fees", "both"]),
        st.lists(
            st.tuples(st.integers(0, ACCT_RANGE - 1), st.integers(0, MINS_RANGE)),
            min_size=1,
            max_size=3,
        ),
    ),
    min_size=1,
    max_size=10,
)


@settings(max_examples=80, deadline=None)
@given(ca_expressions(), summaries(), events_strategy)
def test_compiled_equals_interpreted(expression_factory, summary_factory, events):
    assert_compiled_matches_interpreted(expression_factory, summary_factory, events)


@settings(max_examples=40, deadline=None)
@given(ca_expressions(depth=3), summaries(), events_strategy)
def test_compiled_equals_interpreted_deep(expression_factory, summary_factory, events):
    assert_compiled_matches_interpreted(expression_factory, summary_factory, events)


# ---------------------------------------------------------------------------
# Deterministic equivalence of the fused chains and joins
# ---------------------------------------------------------------------------


class TestFusedPipelines:
    def test_project_select_chain(self):
        events = [("calls", [(a % ACCT_RANGE, m % (MINS_RANGE + 1))])
                  for a, m in enumerate(range(25))]
        assert_compiled_matches_interpreted(
            lambda calls, fees, customers: scan(calls)
            .select(attr_cmp("mins", ">", 1))
            .project(["sn", "mins"])
            .select(attr_cmp("mins", "<", 8)),
            lambda node, customers: ProjectSummary(node, ["mins"]),
            events,
        )

    def test_seq_join_with_simultaneous_appends(self):
        events = [("both", [(i % ACCT_RANGE, i % MINS_RANGE), (1, 2)]) for i in range(8)]
        assert_compiled_matches_interpreted(
            lambda calls, fees, customers: scan(calls).join(scan(fees)),
            lambda node, customers: GroupBySummary(
                node, ["acct"], [spec(COUNT), spec(SUM, "r_mins")]
            ),
            events,
        )

    def test_rel_product_with_select(self):
        events = [("calls", [(i % ACCT_RANGE, i % MINS_RANGE)]) for i in range(10)]
        assert_compiled_matches_interpreted(
            lambda calls, fees, customers: scan(calls)
            .product(customers)
            .select(attrs_cmp("acct", "=", "r_acct")),
            lambda node, customers: GroupBySummary(node, ["state"], [spec(SUM, "mins")]),
            events,
        )

    def test_groupby_seq_node(self):
        events = [("calls", [(i % 2, 3), (i % 2, 3)]) for i in range(6)]
        assert_compiled_matches_interpreted(
            lambda calls, fees, customers: scan(calls).groupby_sn(
                ["sn", "acct"], [spec(SUM, "mins", output="batch_mins")]
            ),
            lambda node, customers: GroupBySummary(
                node, ["acct"], [spec(SUM, "batch_mins"), spec(COUNT)]
            ),
            events,
        )

    def test_extension_operator_falls_back_to_interpreter(self):
        group, calls, fees, _ = build_group()
        node = ChronicleProduct(scan(calls), scan(fees))
        compiler = PlanCompiler()
        plan = compiler.compile(compiler.add_root(node))
        rows = group.append(calls, {"acct": 1, "mins": 2})
        deltas = {"calls": Delta(calls.schema, rows)}
        # The fallback routes through propagate(), which (correctly)
        # refuses chronicle access for the Theorem 4.3 extension ops.
        with pytest.raises(ChronicleAccessError):
            plan(deltas)


# ---------------------------------------------------------------------------
# Structural interning / cross-view sharing
# ---------------------------------------------------------------------------


class TestInterning:
    def test_equal_trees_intern_to_one_node(self):
        _, calls, _, _ = build_group()
        interner = Interner()
        a = interner.intern(scan(calls).select(attr_cmp("mins", ">", 2)))
        b = interner.intern(scan(calls).select(attr_cmp("mins", ">", 2)))
        assert a is b

    def test_different_predicates_stay_distinct(self):
        _, calls, _, _ = build_group()
        interner = Interner()
        a = interner.intern(scan(calls).select(attr_cmp("mins", ">", 2)))
        b = interner.intern(scan(calls).select(attr_cmp("mins", ">", 3)))
        assert a is not b
        assert a.children[0] is b.children[0]  # the scan is still shared

    def test_text_defined_views_share_one_delta_computation(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        a = db.define_view(
            "DEFINE VIEW a AS SELECT caller, SUM(minutes) AS total "
            "FROM calls WHERE minutes > 2 GROUP BY caller"
        )
        b = db.define_view(
            "DEFINE VIEW b AS SELECT caller, COUNT(*) AS n "
            "FROM calls WHERE minutes > 2 GROUP BY caller"
        )
        # Independently compiled from text, yet one interned expression.
        assert db.registry.interned_expression("a") is db.registry.interned_expression("b")
        with GLOBAL_COUNTERS.measure() as cost:
            db.append("calls", {"caller": 1, "minutes": 5})
        # The shared filtered scan is evaluated once and served from the
        # per-event cache for the second view: one selection tuple_op plus
        # one fold per view, and exactly one cache hit.
        assert cost["delta_cache_hit"] == 1
        assert cost["tuple_op"] == 3
        assert a.value((1,), "total") == 5
        assert b.value((1,), "n") == 1

    def test_partial_sharing_breaks_fusion_at_shared_node(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        db.define_view(
            "DEFINE VIEW a AS SELECT caller, SUM(minutes) AS total "
            "FROM calls WHERE minutes > 0 GROUP BY caller"
        )
        db.define_view(
            "DEFINE VIEW b AS SELECT caller, SUM(minutes) AS total "
            "FROM calls WHERE minutes > 0 AND caller > 0 GROUP BY caller"
        )
        root_a = db.registry.interned_expression("a")
        root_b = db.registry.interned_expression("b")
        assert root_a is not root_b
        # The trees differ but overlap: at least the scan is one object.
        shared = {id(n) for n in root_a.walk()} & {id(n) for n in root_b.walk()}
        assert shared
        with GLOBAL_COUNTERS.measure() as cost:
            db.append("calls", {"caller": 1, "minutes": 5})
        assert cost["delta_cache_hit"] >= 1

    def test_sharing_preserves_results_over_stream(self):
        import random

        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        a = db.define_view(
            "DEFINE VIEW a AS SELECT caller, SUM(minutes) AS total "
            "FROM calls WHERE minutes > 2 GROUP BY caller"
        )
        b = db.define_view(
            "DEFINE VIEW b AS SELECT COUNT(*) AS n FROM calls WHERE minutes > 2"
        )
        rng = random.Random(7)
        for _ in range(120):
            db.append(
                "calls", {"caller": rng.randrange(4), "minutes": rng.randrange(6)}
            )
        assert sorted(r.values for r in a) == sorted(
            r.values for r in evaluate_summary(a.summary)
        )
        assert list(b)[0]["n"] == list(evaluate_summary(b.summary))[0]["n"]

    def test_unregister_releases_sharing(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        db.define_view(
            "DEFINE VIEW a AS SELECT caller, SUM(minutes) AS total "
            "FROM calls WHERE minutes > 2 GROUP BY caller"
        )
        b = db.define_view(
            "DEFINE VIEW b AS SELECT caller, COUNT(*) AS n "
            "FROM calls WHERE minutes > 2 GROUP BY caller"
        )
        db.drop_view("a")
        with pytest.raises(ViewRegistrationError):
            db.registry.interned_expression("a")
        with GLOBAL_COUNTERS.measure() as cost:
            db.append("calls", {"caller": 2, "minutes": 9})
        # Only one consumer left: nothing is served from the cache.
        assert cost["delta_cache_hit"] == 0
        assert b.value((2,), "n") == 1

    def test_compiled_registry_prefilter_skips_views(self):
        registry = ViewRegistry(prefilter=True, compile=True)
        group, calls, _, _ = build_group()
        registry.attach(group)
        selective = registry.register(
            PersistentView(
                "big",
                GroupBySummary(
                    scan(calls).select(attr_cmp("mins", ">", 100)),
                    ["acct"],
                    [spec(COUNT)],
                ),
            )
        )
        group.append(calls, {"acct": 1, "mins": 5})
        assert selective.maintenance_count == 0  # prefiltered out
        group.append(calls, {"acct": 1, "mins": 500})
        assert selective.maintenance_count == 1
        assert registry.stats["maintained_views"] == 1


# ---------------------------------------------------------------------------
# attach_compiled_view (single-view hook)
# ---------------------------------------------------------------------------


class TestAttachCompiledView:
    def test_matches_interpreted_single_view(self):
        group, calls, fees, customers = build_group()
        node = scan(calls).select(attr_cmp("mins", ">", 1))
        summary = GroupBySummary(node, ["acct"], [spec(SUM, "mins"), spec(COUNT)])
        view_i = PersistentView("i", summary)
        view_c = PersistentView("c", summary)
        attach_view(view_i, group)
        attach_compiled_view(view_c, group)
        for i in range(30):
            group.append(calls, {"acct": i % 3, "mins": i % 5})
        assert sorted(r.values for r in view_c) == sorted(r.values for r in view_i)


# ---------------------------------------------------------------------------
# Compiled predicates
# ---------------------------------------------------------------------------


class TestCompilePredicate:
    def test_positions_not_names(self):
        schema = Schema.build(("a", "INT"), ("b", "INT"))
        test = compile_predicate(attr_cmp("b", ">=", 3), schema)
        assert test((0, 3)) and not test((0, 2))

    def test_null_semantics_match_evaluate(self):
        schema = Schema.build(("a", "INT"), ("b", "INT"))
        for predicate in (
            attr_cmp("a", "<", 5),
            attrs_cmp("a", "=", "b"),
            Or(attr_cmp("a", ">", 1), attr_eq("b", 0)),
        ):
            test = compile_predicate(predicate, schema)
            for values in ((None, 0), (2, None), (2, 2), (0, 0)):
                row = Row(schema, values, validate=False)
                assert test(values) == predicate.evaluate(row)


# ---------------------------------------------------------------------------
# Batched append fast path
# ---------------------------------------------------------------------------


class TestBatchedAdmit:
    def test_unchecked_constructor(self):
        schema = Schema.build(("a", "INT"), ("b", "STR"))
        row = Row.unchecked(schema, (1, "x"))
        assert row.values == (1, "x") and row.schema is schema
        assert row == Row(schema, [1, "x"])

    def test_schema_name_caches(self):
        schema = Schema.build(("a", "INT"), ("b", "STR"))
        assert schema.names is schema.names  # cached, not rebuilt
        assert schema.names_set == frozenset(("a", "b"))

    def test_batch_matches_single_admit_forms(self):
        group, calls, _, _ = build_group()
        rows = group.append(
            "calls",
            [
                {"acct": 1, "mins": 2},
                {"sn": None, "acct": 2, "mins": 3},
                (4, 5),
            ],
        )
        assert [r.values for r in rows] == [(0, 1, 2), (0, 2, 3), (0, 4, 5)]

    def test_batch_rejects_unknown_attribute(self):
        group, calls, _, _ = build_group()
        with pytest.raises(UnknownAttributeError):
            group.append("calls", [{"acct": 1, "mins": 2, "zzz": 9}])
        # Extra key smuggled in place of the omitted sequence attribute.
        with pytest.raises(UnknownAttributeError):
            group.append("calls", [{"acct": 1, "mins": 2, "zzz": 9, "yyy": 1}])

    def test_batch_rejects_missing_attribute(self):
        group, calls, _, _ = build_group()
        with pytest.raises(SchemaError):
            group.append("calls", [{"acct": 1}])

    def test_batch_rejects_foreign_sequence_number(self):
        group, calls, _, _ = build_group()
        with pytest.raises(SchemaError):
            group.append("calls", [{"sn": 99, "acct": 1, "mins": 2}])
        with pytest.raises(SchemaError):
            group.append("calls", [(99, 1, 2)])

    def test_batch_validates_domains(self):
        group, calls, _, _ = build_group()
        with pytest.raises(Exception):
            group.append("calls", [{"acct": "not-an-int", "mins": 2}])

    def test_batch_deduplicates_within_event(self):
        group, calls, _, _ = build_group()
        rows = group.append("calls", [{"acct": 1, "mins": 2}, {"acct": 1, "mins": 2}])
        assert len(rows) == 1
