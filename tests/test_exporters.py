"""Tests for the live exporters (repro.obs.exporters).

Covers the HTTP endpoint (ephemeral-port smoke: /metrics content type
and text-0.0.4 payload, /certificates, /snapshot, 404), the route
registry the handler dispatches through (/timeline, /dashboard, the
unanswerable-/health contract), JSONL span streaming with the rotation
boundary, and the flame-style cost attribution tree.
"""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro import ChronicleDatabase, DatabaseConfig
from repro.errors import ObservabilityError
from repro.obs import (
    JsonlSpanSink,
    MetricsServer,
    Observability,
    Tracer,
    attribution_tree,
    format_attribution,
)
from repro.obs import runtime as obs_runtime
from repro.obs.conformance import ConformanceProfiler


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


def make_db(**kwargs):
    db = ChronicleDatabase(config=DatabaseConfig(**kwargs))
    db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
    db.define_view(
        "DEFINE VIEW usage AS "
        "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
    )
    return db


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------


class TestMetricsServer:
    def test_endpoint_smoke_on_ephemeral_port(self):
        db = make_db(observe=True)
        try:
            db.append("calls", {"caller": 1, "minutes": 5})
            server = db.observability.serve(port=0)
            try:
                assert server.port != 0  # a real port was bound
                status, content_type, body = _get(server.url + "/metrics")
                assert status == 200
                assert content_type.startswith("text/plain; version=0.0.4")
                text = body.decode()
                assert 'append_events_total{group="default"} 1' in text
                assert "# TYPE append_seconds histogram" in text
            finally:
                db.observability.stop_serving()
        finally:
            db.disable_observability()

    def test_certificates_route_serves_profiler_output(self):
        db = make_db(observe=True)
        try:
            ConformanceProfiler(db, samples=2).certify(
                "usage", c_sizes=(32, 64, 128), u_sizes=None
            )
            server = db.observability.serve(port=0)
            try:
                status, content_type, body = _get(server.url + "/certificates")
                assert status == 200
                assert content_type == "application/json"
                certs = json.loads(body)
                assert certs["usage"]["conformant"] is True
                assert certs["usage"]["claimed_class"] == "IM-Constant"
            finally:
                db.observability.stop_serving()
        finally:
            db.disable_observability()

    def test_snapshot_route_and_404(self):
        obs = Observability(audit="off")
        server = MetricsServer(obs, port=0).start()
        try:
            status, content_type, body = _get(server.url + "/snapshot")
            assert status == 200
            snap = json.loads(body)
            assert {"metrics", "audit", "traces", "certificates"} <= set(snap)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_double_serve_rejected(self):
        obs = Observability(audit="off")
        obs.serve(port=0)
        try:
            with pytest.raises(ObservabilityError, match="already running"):
                obs.serve(port=0)
        finally:
            obs.stop_serving()
        assert obs.server is None
        obs.stop_serving()  # idempotent

    def test_stop_releases_port(self):
        obs = Observability(audit="off")
        server = obs.serve(port=0)
        port = server.port
        obs.stop_serving()
        # The port can be bound again immediately.
        rebound = MetricsServer(obs, port=port).start()
        try:
            assert rebound.port == port
        finally:
            rebound.stop()


# ---------------------------------------------------------------------------
# Route registry + the timeline/dashboard endpoints
# ---------------------------------------------------------------------------


class TestRoutes:
    def test_registry_covers_every_endpoint(self):
        from repro.obs.exporters import ROUTES

        assert {
            "/metrics",
            "/certificates",
            "/snapshot",
            "/costs",
            "/health",
            "/timeline",
            "/dashboard",
        } <= set(ROUTES)

    def test_trailing_slash_and_query_normalization(self):
        obs = Observability(audit="off")
        server = obs.serve(port=0)
        try:
            status, _, _ = _get(server.url + "/metrics/")
            assert status == 200
            status, _, _ = _get(server.url + "/metrics?foo=bar")
            assert status == 200
        finally:
            obs.stop_serving()

    def test_unanswerable_health_still_answers_503(self):
        obs = Observability(audit="off")
        obs.health = lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        server = obs.serve(port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/health")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["status"] == "FAILING"
            assert "boom" in payload["error"]
        finally:
            obs.stop_serving()

    def test_broken_route_answers_500_not_hang(self):
        from repro.obs.exporters import ROUTES

        def broken(obs, params):
            raise RuntimeError("route died")

        ROUTES["/broken-test-route"] = broken
        obs = Observability(audit="off")
        server = obs.serve(port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/broken-test-route")
            assert excinfo.value.code == 500
            assert "route died" in json.loads(excinfo.value.read())["error"]
            # The serving thread survived: the next scrape still works.
            status, _, _ = _get(server.url + "/metrics")
            assert status == 200
        finally:
            obs.stop_serving()
            del ROUTES["/broken-test-route"]

    def test_timeline_404_until_history_exists(self):
        obs = Observability(audit="off")
        server = obs.serve(port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/timeline")
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read())
            assert payload["count"] == 0
        finally:
            obs.stop_serving()

    def test_timeline_serves_bounded_json(self):
        db = make_db(observe=True)
        try:
            history = db.observability.history
            for i in range(3):
                db.append("calls", {"caller": i, "minutes": 2})
                history.sample_now()
            server = db.observability.serve(port=0)
            try:
                status, content_type, body = _get(
                    server.url + "/timeline?series=records_per_sec&limit=2"
                )
                assert status == 200
                assert content_type == "application/json"
                payload = json.loads(body)
                assert payload["count"] == 2
                assert set(payload["series"]) == {"records_per_sec"}
                assert len(payload["series"]["records_per_sec"]) == 2
                assert payload["capacity"] == history.capacity
            finally:
                db.observability.stop_serving()
        finally:
            db.disable_observability()
            db.close()

    def test_timeline_rejects_bad_parameters(self):
        db = make_db(observe=True)
        try:
            server = db.observability.serve(port=0)
            try:
                for query in ("?window=soon", "?limit=many", "?series=bogus"):
                    with pytest.raises(urllib.error.HTTPError) as excinfo:
                        _get(server.url + "/timeline" + query)
                    assert excinfo.value.code == 400
            finally:
                db.observability.stop_serving()
        finally:
            db.disable_observability()
            db.close()

    def test_dashboard_serves_html(self):
        db = make_db(observe=True)
        try:
            db.append("calls", {"caller": 1, "minutes": 5})
            db.observability.history.sample_now()
            server = db.observability.serve(port=0)
            try:
                status, content_type, body = _get(server.url + "/dashboard")
                assert status == 200
                assert content_type == "text/html; charset=utf-8"
                html = body.decode()
                assert html.lower().startswith("<!doctype html>")
                assert "<svg" in html
            finally:
                db.observability.stop_serving()
        finally:
            db.disable_observability()
            db.close()


# ---------------------------------------------------------------------------
# JSONL span streaming + rotation
# ---------------------------------------------------------------------------


class TestJsonlSpanSink:
    def test_streams_root_spans_only(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        sink = JsonlSpanSink(path)
        tracer = Tracer(on_span_end=sink)
        with tracer.span("append", group="g"):
            with tracer.span("maintain", view="v"):
                pass
        sink.close()
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == 1  # one trace, not one line per span
        assert lines[0]["name"] == "append"
        assert lines[0]["children"][0]["name"] == "maintain"

    def test_rotation_boundary(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        sink = JsonlSpanSink(path, max_bytes=300, max_files=2)
        tracer = Tracer(on_span_end=sink)
        for i in range(12):
            with tracer.span("append", group="g", i=i):
                pass
        sink.close()
        assert sink.written == 12
        assert sink.rotations > 0
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert not os.path.exists(path + f".{sink.max_files + 1}")
        # Every line in every file is valid JSON; no trace lost or torn.
        total = 0
        for candidate in (path, path + ".1", path + ".2"):
            if os.path.exists(candidate):
                for line in open(candidate):
                    json.loads(line)
                    total += 1
        assert 0 < total <= 12
        # The current file respects the size bound.
        assert os.path.getsize(path) <= 300

    def test_live_pipeline_via_listener(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        db = make_db(observe=True)
        try:
            sink = JsonlSpanSink(path)
            db.observability.add_span_listener(sink)
            db.append("calls", {"caller": 1, "minutes": 5})
            db.append("calls", {"caller": 2, "minutes": 3})
            db.observability.remove_span_listener(sink)
            db.append("calls", {"caller": 3, "minutes": 1})
            sink.close()
        finally:
            db.disable_observability()
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == 2  # the third append came after removal
        assert all(line["name"] == "append" for line in lines)

    def test_bad_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSpanSink(str(tmp_path / "s.jsonl"), max_bytes=0)
        with pytest.raises(ValueError):
            JsonlSpanSink(str(tmp_path / "s.jsonl"), max_files=-1)

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSpanSink(str(tmp_path / "s.jsonl"))
        assert not sink.closed
        sink.close()
        sink.close()  # second close must not raise
        assert sink.closed

    def test_closed_sink_is_a_noop_listener(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        sink = JsonlSpanSink(path)
        tracer = Tracer(on_span_end=sink)
        with tracer.span("append", group="g"):
            pass
        sink.close()
        with tracer.span("append", group="g"):
            pass  # must neither raise nor write
        assert sink.written == 1
        assert len(open(path).readlines()) == 1


# ---------------------------------------------------------------------------
# Span-listener fault isolation
# ---------------------------------------------------------------------------


class TestListenerGuard:
    def test_listener_exception_swallowed_and_counted(self):
        db = make_db(observe=True)

        class Broken:
            calls = 0

            def __call__(self, span):
                Broken.calls += 1
                raise RuntimeError("exporter died")

        try:
            db.observability.add_span_listener(Broken())
            db.append("calls", {"caller": 1, "minutes": 5})
            db.append("calls", {"caller": 2, "minutes": 3})
            counted = db.observability.metrics.value(
                "span_listener_errors_total", listener="Broken"
            )
        finally:
            db.disable_observability()
        assert Broken.calls > 0
        assert counted == Broken.calls
        # The appends themselves were never disturbed.
        assert db.view_value("usage", (1,), "total") == 5

    def test_closed_sink_attached_as_listener_counts_no_errors(self, tmp_path):
        db = make_db(observe=True)
        try:
            sink = JsonlSpanSink(str(tmp_path / "s.jsonl"))
            db.observability.add_span_listener(sink)
            sink.close()  # closed while still attached: silent no-op
            db.append("calls", {"caller": 1, "minutes": 5})
            counted = db.observability.metrics.value(
                "span_listener_errors_total", listener="JsonlSpanSink"
            )
        finally:
            db.disable_observability()
        assert counted is None
        assert sink.written == 0


# ---------------------------------------------------------------------------
# Cost attribution trees
# ---------------------------------------------------------------------------


class TestAttribution:
    def _traces(self):
        db = make_db(observe=True)
        try:
            for i in range(5):
                db.append("calls", {"caller": i % 2, "minutes": 10})
            return db.observability.tracer.traces()
        finally:
            db.disable_observability()

    def test_tree_merges_spans_by_position(self):
        traces = self._traces()
        root = attribution_tree(traces)
        (append_node,) = root.children.values()
        assert append_node.label.startswith("append")
        assert append_node.count == 5
        maintain = [
            child
            for child in append_node.children.values()
            if child.label.startswith("maintain")
        ]
        assert len(maintain) == 1  # one view → one merged position
        assert maintain[0].count == 5
        assert maintain[0].counters.get("tuple_op", 0) >= 5

    def test_format_renders_percentages(self):
        text = format_attribution(self._traces())
        first = text.splitlines()[0]
        assert first.startswith("append")
        assert "100.0%" in first
        assert "n=5" in first
        assert "maintain view=usage" in text

    def test_counter_mode_and_empty(self):
        traces = self._traces()
        text = format_attribution(traces, counter="tuple_op")
        assert "tuple_op" in text
        assert format_attribution([]) == "(no traces)"

    def test_tree_dict_export(self):
        root = attribution_tree(self._traces())
        data = root.to_dict()
        assert data["label"] == "total"
        assert data["children"][0]["count"] == 5
