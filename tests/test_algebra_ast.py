"""Tests for chronicle-algebra AST construction rules (Definition 4.1,
Theorem 4.3(1) rejections, chronicle-group checks, key-join guarantee)."""

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import (
    ChronicleProduct,
    ChronicleScan,
    NonEquiSeqJoin,
    scan,
)
from repro.core.group import ChronicleGroup
from repro.errors import (
    AlgebraError,
    ChronicleGroupError,
    KeyJoinGuaranteeError,
    NotAChronicleError,
    SchemaError,
    UnknownAttributeError,
)
from repro.relational.predicate import attr_cmp, attr_eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def setup():
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    customers = Relation(
        "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
    )
    return group, calls, fees, customers


class TestScanSelectProject:
    def test_scan_schema(self, setup):
        _, calls, _, _ = setup
        node = scan(calls)
        assert node.schema is calls.schema
        assert node.group is calls.group

    def test_select_keeps_schema(self, setup):
        _, calls, _, _ = setup
        node = scan(calls).select(attr_cmp("mins", ">", 0))
        assert node.schema == calls.schema

    def test_select_unknown_attribute(self, setup):
        _, calls, _, _ = setup
        with pytest.raises(UnknownAttributeError):
            scan(calls).select(attr_eq("zzz", 1))

    def test_project_keeping_sn(self, setup):
        _, calls, _, _ = setup
        node = scan(calls).project(["sn", "acct"])
        assert node.schema.names == ("sn", "acct")
        assert node.schema.sequence_attribute == "sn"

    def test_project_dropping_sn_rejected(self, setup):
        # Theorem 4.3(1): the result would not be a chronicle.
        _, calls, _, _ = setup
        with pytest.raises(NotAChronicleError):
            scan(calls).project(["acct"])


class TestBinaryOperators:
    def test_union_same_group(self, setup):
        _, calls, fees, _ = setup
        node = scan(calls).union(scan(fees))
        assert node.schema.compatible_with(calls.schema)

    def test_union_incompatible_schemas(self, setup):
        group, calls, _, _ = setup
        other = group.create_chronicle("other", [("x", "STR")])
        with pytest.raises(SchemaError):
            scan(calls).union(scan(other))

    def test_union_across_groups_rejected(self, setup):
        _, calls, _, _ = setup
        group2 = ChronicleGroup("g2")
        foreign = group2.create_chronicle("calls2", [("acct", "INT"), ("mins", "INT")])
        with pytest.raises(ChronicleGroupError):
            scan(calls).union(scan(foreign))

    def test_difference_same_group(self, setup):
        _, calls, fees, _ = setup
        node = scan(calls).minus(scan(fees))
        assert node.schema.compatible_with(calls.schema)

    def test_difference_across_groups_rejected(self, setup):
        _, calls, _, _ = setup
        group2 = ChronicleGroup("g2")
        foreign = group2.create_chronicle("x", [("acct", "INT"), ("mins", "INT")])
        with pytest.raises(ChronicleGroupError):
            scan(calls).minus(scan(foreign))

    def test_seq_join_schema(self, setup):
        _, calls, fees, _ = setup
        node = scan(calls).join(scan(fees))
        # right sequencing attribute projected out; clashes prefixed
        assert node.schema.names == ("sn", "acct", "mins", "r_acct", "r_mins")
        assert node.schema.sequence_attribute == "sn"

    def test_seq_join_across_groups_rejected(self, setup):
        _, calls, _, _ = setup
        group2 = ChronicleGroup("g2")
        foreign = group2.create_chronicle("x", [("acct", "INT"), ("mins", "INT")])
        with pytest.raises(ChronicleGroupError):
            scan(calls).join(scan(foreign))


class TestGroupBySeq:
    def test_groupby_with_sn(self, setup):
        _, calls, _, _ = setup
        node = scan(calls).groupby_sn(["sn", "acct"], [spec(SUM, "mins")])
        assert node.schema.names == ("sn", "acct", "sum_mins")
        assert node.schema.sequence_attribute == "sn"

    def test_groupby_without_sn_rejected(self, setup):
        # Theorem 4.3(1): grouping without the SN is summarization.
        _, calls, _, _ = setup
        with pytest.raises(NotAChronicleError):
            scan(calls).groupby_sn(["acct"], [spec(SUM, "mins")])

    def test_groupby_requires_aggregates(self, setup):
        _, calls, _, _ = setup
        with pytest.raises(AlgebraError):
            scan(calls).groupby_sn(["sn"], [])

    def test_groupby_unknown_aggregate_attr(self, setup):
        _, calls, _, _ = setup
        with pytest.raises(UnknownAttributeError):
            scan(calls).groupby_sn(["sn"], [spec(SUM, "zzz")])


class TestRelationOperators:
    def test_product_schema(self, setup):
        _, calls, _, customers = setup
        node = scan(calls).product(customers)
        assert node.schema.names == ("sn", "acct", "mins", "r_acct", "state")

    def test_keyjoin_schema_drops_joined_key(self, setup):
        _, calls, _, customers = setup
        node = scan(calls).keyjoin(customers, [("acct", "acct")])
        assert node.schema.names == ("sn", "acct", "mins", "state")

    def test_keyjoin_requires_unique_guarantee(self, setup):
        # Definition 4.2: joining on a non-key has no constant-match bound.
        _, calls, _, _ = setup
        states = Relation("states", Schema.build(("state", "STR"), ("tax", "INT")))
        with pytest.raises(KeyJoinGuaranteeError):
            scan(calls).keyjoin(states, [("acct", "tax")])

    def test_keyjoin_accepts_unique_secondary_index(self, setup):
        _, calls, _, _ = setup
        lookup = Relation("lookup", Schema.build(("code", "INT"), ("label", "STR")))
        lookup.create_index(["code"], unique=True)
        node = scan(calls).keyjoin(lookup, [("acct", "code")])
        assert "label" in node.schema

    def test_keyjoin_requires_pairs(self, setup):
        _, calls, _, customers = setup
        with pytest.raises(AlgebraError):
            scan(calls).keyjoin(customers, [])

    def test_relations_listed(self, setup):
        _, calls, _, customers = setup
        node = scan(calls).keyjoin(customers, [("acct", "acct")])
        assert node.relations() == [customers]

    def test_chronicles_listed(self, setup):
        _, calls, fees, _ = setup
        node = scan(calls).union(scan(fees))
        assert [c.name for c in node.chronicles()] == ["calls", "fees"]


class TestExtensionOperators:
    def test_chronicle_product_constructible(self, setup):
        _, calls, fees, _ = setup
        node = ChronicleProduct(scan(calls), scan(fees))
        assert len(node.schema) == len(calls.schema) + len(fees.schema)

    def test_chronicle_product_across_groups_rejected(self, setup):
        _, calls, _, _ = setup
        group2 = ChronicleGroup("g2")
        foreign = group2.create_chronicle("x", [("v", "INT")])
        with pytest.raises(ChronicleGroupError):
            ChronicleProduct(scan(calls), scan(foreign))

    def test_non_equi_join_constructible(self, setup):
        _, calls, fees, _ = setup
        node = NonEquiSeqJoin(scan(calls), scan(fees), "<")
        assert node.op == "<"

    def test_non_equi_join_rejects_equality(self, setup):
        _, calls, fees, _ = setup
        with pytest.raises(AlgebraError):
            NonEquiSeqJoin(scan(calls), scan(fees), "=")

    def test_non_equi_join_rejects_unknown_op(self, setup):
        _, calls, fees, _ = setup
        with pytest.raises(AlgebraError):
            NonEquiSeqJoin(scan(calls), scan(fees), "~")


class TestTreeQueries:
    def test_walk_preorder(self, setup):
        _, calls, fees, _ = setup
        node = scan(calls).union(scan(fees)).select(attr_eq("acct", 1))
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Select", "Union", "ChronicleScan", "ChronicleScan"]

    def test_group_of_composite(self, setup):
        group, calls, fees, _ = setup
        node = scan(calls).join(scan(fees))
        assert node.group is group
