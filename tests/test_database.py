"""End-to-end tests for the ChronicleDatabase façade (Definition 2.1)."""

import pytest

from repro.aggregates import SUM, spec
from repro.algebra.ast import scan
from repro.core.database import ChronicleDatabase
from repro.errors import (
    ChronicleGroupError,
    RetentionError,
    RetroactiveUpdateError,
    ViewRegistrationError,
)
from repro.sca.summarize import GroupBySummary
from repro.views.calendar import monthly


@pytest.fixture
def db():
    database = ChronicleDatabase()
    database.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")])
    database.create_relation(
        "subscribers", [("number", "INT"), ("state", "STR")], key=["number"]
    )
    database.relation("subscribers").insert({"number": 1, "state": "NJ"})
    database.relation("subscribers").insert({"number": 2, "state": "NY"})
    return database


class TestCatalogManagement:
    def test_duplicate_chronicle_rejected(self, db):
        with pytest.raises(ChronicleGroupError):
            db.create_chronicle("calls", [("x", "INT")])

    def test_duplicate_relation_rejected(self, db):
        with pytest.raises(ChronicleGroupError):
            db.create_relation("subscribers", [("x", "INT")])

    def test_chronicle_relation_name_collision_rejected(self, db):
        with pytest.raises(ChronicleGroupError):
            db.create_relation("calls", [("x", "INT")])
        with pytest.raises(ChronicleGroupError):
            db.create_chronicle("subscribers", [("x", "INT")])

    def test_missing_lookups(self, db):
        with pytest.raises(ChronicleGroupError):
            db.chronicle("nope")
        with pytest.raises(ChronicleGroupError):
            db.relation("nope")
        with pytest.raises(ChronicleGroupError):
            db.group("nope")

    def test_explicit_groups(self):
        db = ChronicleDatabase()
        db.create_group("billing")
        db.create_chronicle("calls", [("x", "INT")], group="billing")
        assert db.chronicle("calls").group.name == "billing"
        with pytest.raises(ChronicleGroupError):
            db.create_group("billing")


class TestViews:
    def test_sql_view_lifecycle(self, db):
        db.define_view(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        db.append("calls", {"caller": 1, "minutes": 10, "day": 0})
        db.append("calls", {"caller": 1, "minutes": 5, "day": 0})
        assert db.view_value("usage", (1,), "total") == 15
        assert db.view_row("usage", (2,)) is None

    def test_programmatic_view(self, db):
        calls = db.chronicle("calls")
        summary = GroupBySummary(scan(calls), ["caller"], [spec(SUM, "minutes")])
        db.define_view(summary, name="usage")
        db.append("calls", {"caller": 2, "minutes": 7, "day": 0})
        assert db.view_value("usage", (2,), "sum_minutes") == 7

    def test_programmatic_view_requires_name(self, db):
        calls = db.chronicle("calls")
        summary = GroupBySummary(scan(calls), ["caller"], [spec(SUM, "minutes")])
        with pytest.raises(ViewRegistrationError):
            db.define_view(summary)

    def test_view_with_relation_join(self, db):
        db.define_view(
            "DEFINE VIEW by_state AS SELECT state, SUM(minutes) AS total "
            "FROM calls JOIN subscribers ON calls.caller = subscribers.number "
            "GROUP BY state"
        )
        db.append("calls", {"caller": 1, "minutes": 10, "day": 0})
        db.append("calls", {"caller": 2, "minutes": 20, "day": 0})
        assert db.view_value("by_state", ("NJ",), "total") == 10
        assert db.view_value("by_state", ("NY",), "total") == 20

    def test_late_view_materializes_from_store(self, db):
        db.append("calls", {"caller": 1, "minutes": 10, "day": 0})
        db.append("calls", {"caller": 1, "minutes": 20, "day": 0})
        db.define_view(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        assert db.view_value("usage", (1,), "total") == 30
        db.append("calls", {"caller": 1, "minutes": 5, "day": 0})
        assert db.view_value("usage", (1,), "total") == 35

    def test_drop_view(self, db):
        view = db.define_view(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        db.drop_view("usage")
        db.append("calls", {"caller": 1, "minutes": 10, "day": 0})
        assert view.maintenance_count == 0

    def test_periodic_view(self, db):
        views = db.define_periodic_view(
            "monthly",
            "DEFINE VIEW monthly AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller",
            monthly(month_length=30),
            chronon_of=lambda row: float(row["day"]),
        )
        db.append("calls", {"caller": 1, "minutes": 10, "day": 5})
        db.append("calls", {"caller": 1, "minutes": 20, "day": 45})
        assert views[0].value((1,), "total") == 10
        assert views[1].value((1,), "total") == 20
        assert db.periodic_view("monthly") is views


class TestUpdates:
    def test_append_unknown_chronicle(self, db):
        with pytest.raises(ChronicleGroupError):
            db.append("nope", {"x": 1})

    def test_proactive_relation_update(self, db):
        db.append("calls", {"caller": 1, "minutes": 10, "day": 0})
        assert db.update_relation("subscribers", (1,), state="CA")
        assert db.relation("subscribers").lookup_key((1,))["state"] == "CA"

    def test_retroactive_relation_update_rejected(self, db):
        db.append("calls", {"caller": 1, "minutes": 10, "day": 0})
        with pytest.raises(RetroactiveUpdateError):
            db.relation("subscribers").update_key((1,), effective_from=0, state="CA")

    def test_simultaneous_appends(self, db):
        db.create_chronicle("texts", [("sender", "INT")])
        stamped = db.append_simultaneous(
            {"calls": {"caller": 1, "minutes": 1, "day": 0}, "texts": {"sender": 2}}
        )
        sns = {rows[0].sequence_number for rows in stamped.values()}
        assert len(sns) == 1


class TestQueries:
    def test_detail_window(self, db):
        for i in range(5):
            db.append("calls", {"caller": 1, "minutes": i, "day": 0})
        rows = db.detail_window("calls", 1, 3)
        assert [r["minutes"] for r in rows] == [1, 2, 3]

    def test_detail_window_respects_retention(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("m", "INT")], retention=2)
        for i in range(10):
            db.append("calls", {"m": i})
        with pytest.raises(RetentionError):
            db.detail_window("calls", 0, 5)

    def test_summary_query_needs_no_chronicle(self):
        """The paper's subsecond summary-query promise: answers come from
        the view even when the chronicle stores nothing."""
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")], retention=0)
        db.define_view(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        for i in range(200):
            db.append("calls", {"caller": i % 3, "minutes": 1})
        assert db.view_value("usage", (0,), "total") == 67
        assert len(db.chronicle("calls")) == 0
