"""Tests for the view-definition compiler (text → CA/SCA trees)."""

import pytest

from repro.algebra.ast import RelKeyJoin, RelProduct, Select, SeqJoin
from repro.algebra.classify import Language, language_of
from repro.core.group import ChronicleGroup
from repro.errors import CompileError
from repro.query.compiler import Catalog, Compiler, compile_view
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sca.summarize import GroupBySummary, ProjectSummary


@pytest.fixture
def catalog():
    group = ChronicleGroup("g")
    flights = group.create_chronicle(
        "flights", [("acct", "INT"), ("miles", "INT"), ("day", "INT")]
    )
    bonuses = group.create_chronicle(
        "bonuses", [("acct", "INT"), ("miles", "INT"), ("day", "INT")]
    )
    customers = Relation(
        "customers",
        Schema.build(("acct", "INT"), ("name", "STR"), ("state", "STR"), key=["acct"]),
    )
    return Catalog(
        {"flights": flights, "bonuses": bonuses}, {"customers": customers}
    )


class TestFromClause:
    def test_unknown_source(self, catalog):
        with pytest.raises(CompileError):
            compile_view("DEFINE VIEW v AS SELECT acct FROM nowhere", catalog)

    def test_relation_as_source_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view("DEFINE VIEW v AS SELECT name FROM customers", catalog)

    def test_plain_scan(self, catalog):
        name, summary = compile_view(
            "DEFINE VIEW v AS SELECT acct FROM flights", catalog
        )
        assert name == "v"
        assert isinstance(summary, ProjectSummary)
        assert language_of(summary.expression) is Language.CA1


class TestJoins:
    def test_key_join_compiles_to_relkeyjoin(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT state, SUM(miles) AS total "
            "FROM flights JOIN customers ON flights.acct = customers.acct "
            "GROUP BY state",
            catalog,
        )
        assert isinstance(summary.expression, RelKeyJoin)
        assert language_of(summary.expression) is Language.CA_JOIN

    def test_join_orientation_flipped(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT state, COUNT(*) AS n "
            "FROM flights JOIN customers ON customers.acct = flights.acct "
            "GROUP BY state",
            catalog,
        )
        assert isinstance(summary.expression, RelKeyJoin)
        assert summary.expression.pairs == (("acct", "acct"),)

    def test_cross_join_compiles_to_product(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT state, COUNT(*) AS n "
            "FROM flights CROSS JOIN customers GROUP BY state",
            catalog,
        )
        assert isinstance(summary.expression, RelProduct)
        assert language_of(summary.expression) is Language.CA

    def test_chronicle_join_on_sequence_numbers(self, catalog):
        # "acct" is ambiguous after the join (both chronicles carry it),
        # so it must be qualified — the compiler renames the right-hand
        # copy to r_acct internally.
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT flights.acct, COUNT(*) AS n "
            "FROM flights JOIN bonuses ON flights.sn = bonuses.sn "
            "GROUP BY flights.acct",
            catalog,
        )
        assert isinstance(summary.expression, SeqJoin)
        assert summary.grouping == ("acct",)

    def test_chronicle_join_unqualified_ambiguous_column_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT acct, COUNT(*) AS n "
                "FROM flights JOIN bonuses ON flights.sn = bonuses.sn "
                "GROUP BY acct",
                catalog,
            )

    def test_chronicle_join_on_other_attribute_rejected(self, catalog):
        # Theorem 4.3: only the SN equijoin is inside CA.
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT acct, COUNT(*) AS n "
                "FROM flights JOIN bonuses ON flights.acct = bonuses.acct "
                "GROUP BY acct",
                catalog,
            )

    def test_chronicle_cross_join_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT acct, COUNT(*) AS n "
                "FROM flights CROSS JOIN bonuses GROUP BY acct",
                catalog,
            )

    def test_qualified_relation_attribute_after_join(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT customers.state, SUM(miles) AS total "
            "FROM flights JOIN customers ON flights.acct = customers.acct "
            "GROUP BY customers.state",
            catalog,
        )
        assert summary.grouping == ("state",)

    def test_joined_key_resolves_to_chronicle_attr(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT customers.acct, COUNT(*) AS n "
            "FROM flights JOIN customers ON flights.acct = customers.acct "
            "GROUP BY customers.acct",
            catalog,
        )
        assert summary.grouping == ("acct",)


class TestWhere:
    def test_where_becomes_selection(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT acct FROM flights WHERE miles > 0",
            catalog,
        )
        assert isinstance(summary.expression, Select)

    def test_constant_normalization(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT acct FROM flights WHERE 100 < miles",
            catalog,
        )
        predicate = summary.expression.predicate
        assert predicate.attr == "miles" and predicate.op == ">"

    def test_where_unknown_column(self, catalog):
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT acct FROM flights WHERE zzz = 1", catalog
            )

    def test_chronicle_conjunct_pushed_below_join(self, catalog):
        """Chronicle-only WHERE conjuncts sit directly above the scan so
        the Section 5.2 prefilter can harvest them."""
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT state, COUNT(*) AS n "
            "FROM flights JOIN customers ON flights.acct = customers.acct "
            "WHERE miles > 100 AND state = 'NJ' GROUP BY state",
            catalog,
        )
        from repro.views.registry import scan_prefilters

        prefilters = scan_prefilters(summary.expression)
        assert len(prefilters["flights"]) == 1  # miles > 100 pushed down
        # The residual (state = 'NJ') stays above the join.
        assert isinstance(summary.expression, Select)

    def test_pushdown_preserves_semantics(self, catalog):
        from repro.core.group import ChronicleGroup
        from repro.sca.view import PersistentView, evaluate_summary
        from repro.sca.maintenance import attach_view

        flights = catalog.chronicles["flights"]
        customers = catalog.relations["customers"]
        customers.insert({"acct": 1, "name": "a", "state": "NJ"})
        customers.insert({"acct": 2, "name": "b", "state": "NY"})
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT state, SUM(miles) AS total "
            "FROM flights JOIN customers ON flights.acct = customers.acct "
            "WHERE miles > 50 AND state = 'NJ' GROUP BY state",
            catalog,
        )
        view = PersistentView("v", summary)
        group = flights.group
        attach_view(view, group)
        for acct, miles in ((1, 40), (1, 60), (2, 70), (1, 80)):
            group.append(flights, {"acct": acct, "miles": miles, "day": 0})
        assert view.value(("NJ",), "total") == 140
        assert view.to_table() == evaluate_summary(summary)


class TestSelectList:
    def test_group_by_produces_groupby_summary(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT acct, SUM(miles) AS total, COUNT(*) AS n "
            "FROM flights GROUP BY acct",
            catalog,
        )
        assert isinstance(summary, GroupBySummary)
        assert summary.grouping == ("acct",)
        assert [s.output for s in summary.aggregates] == ["total", "n"]

    def test_aggregates_without_group_by_are_global(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT SUM(miles) AS total FROM flights", catalog
        )
        assert isinstance(summary, GroupBySummary)
        assert summary.grouping == ()

    def test_plain_select_is_projection(self, catalog):
        _, summary = compile_view(
            "DEFINE VIEW v AS SELECT acct, miles FROM flights", catalog
        )
        assert isinstance(summary, ProjectSummary)
        assert summary.names == ("acct", "miles")

    def test_selecting_sn_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view("DEFINE VIEW v AS SELECT sn, acct FROM flights", catalog)

    def test_grouping_by_sn_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT sn, COUNT(*) AS n FROM flights GROUP BY sn",
                catalog,
            )

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT day, SUM(miles) AS t FROM flights GROUP BY acct",
                catalog,
            )

    def test_group_by_without_aggregate_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT acct FROM flights GROUP BY acct", catalog
            )

    def test_unknown_aggregate(self, catalog):
        with pytest.raises(Exception):
            compile_view(
                "DEFINE VIEW v AS SELECT MEDIAN(miles) AS m FROM flights", catalog
            )

    def test_count_requires_no_argument_but_sum_does(self, catalog):
        with pytest.raises(CompileError):
            compile_view("DEFINE VIEW v AS SELECT SUM(*) AS s FROM flights", catalog)

    def test_projection_alias_rejected(self, catalog):
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW v AS SELECT acct AS account FROM flights", catalog
            )


class TestCatalog:
    def test_kind_of(self, catalog):
        assert catalog.kind_of("flights") == "chronicle"
        assert catalog.kind_of("customers") == "relation"

    def test_kind_of_unknown(self, catalog):
        with pytest.raises(CompileError):
            catalog.kind_of("nope")

    def test_name_collision_detected(self, catalog):
        collision = Relation("flights", Schema.build(("x", "INT")))
        catalog.add_relation(collision)
        with pytest.raises(CompileError):
            catalog.kind_of("flights")

    def test_ambiguous_unqualified_column(self, catalog):
        # "name" only exists in customers, "miles" only in flights; but
        # "acct" exists in both after a join — must qualify in GROUP BY?
        # The joined key case resolves both qualifiers to the chronicle
        # attribute, so it is NOT ambiguous.  An ambiguous case needs a
        # non-key shared attribute.
        group = ChronicleGroup("g2")
        readings = group.create_chronicle("readings", [("zone", "INT"), ("v", "INT")])
        zones = Relation(
            "zones", Schema.build(("zid", "INT"), ("v", "INT"), key=["zid"])
        )
        cat = Catalog({"readings": readings}, {"zones": zones})
        with pytest.raises(CompileError):
            compile_view(
                "DEFINE VIEW x AS SELECT v, COUNT(*) AS n "
                "FROM readings JOIN zones ON readings.zone = zones.zid GROUP BY v",
                cat,
            )
