"""Tests for the plan observability layer: EXPLAIN and the cost ledger.

Covers :mod:`repro.obs.explain` (plan rendering, instrumented EXPLAIN
ANALYZE windows) and :mod:`repro.obs.costmodel` (the continuously
aggregated per-(view, operator, shape) CostLedger), plus their surfaces:
``db.explain``, ``SHOW COSTS`` / ``EXPLAIN`` CLI statements, the
``/costs`` exporter route, and the zero-overhead contract when
observability is off.
"""

import json
import urllib.request

import pytest

from repro import ChronicleDatabase, DatabaseConfig
from repro.errors import ObservabilityError
from repro.obs import CostLedger, Observability
from repro.obs import runtime as obs_runtime
from repro.obs.explain import ExplainReport, explain, explain_analyze


@pytest.fixture(autouse=True)
def _clean_runtime():
    """No test may leak an installed Observability into the next."""
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


def make_banking_db(**kwargs):
    """An E12-style banking database: filtered group-by over deposits."""
    kwargs.setdefault("compile_views", True)
    db = ChronicleDatabase(config=DatabaseConfig(**kwargs))
    db.create_chronicle("deposits", [("acct", "INT"), ("amount", "INT")], retention=0)
    db.define_view(
        "DEFINE VIEW balance AS "
        "SELECT acct, SUM(amount) AS balance FROM deposits "
        "WHERE amount > 10 GROUP BY acct"
    )
    return db


def drive(db, events=10):
    for i in range(events):
        db.append("deposits", {"acct": i % 3, "amount": i * 5})


# ---------------------------------------------------------------------------
# CostLedger mechanics
# ---------------------------------------------------------------------------


class TestCostLedger:
    def test_observe_accumulates(self):
        ledger = CostLedger()
        ledger.observe("v", "Select", "compiled/Select", 0.001, rows=3, counters={"tuple_op": 4})
        ledger.observe("v", "Select", "compiled/Select", 0.003, rows=5, counters={"tuple_op": 6})
        (entry,) = ledger.entries()
        assert entry.calls == 2
        assert entry.rows == 8
        assert entry.counters["tuple_op"] == 10
        assert entry.seconds == pytest.approx(0.004)
        assert entry.mean_seconds == pytest.approx(0.002)

    def test_ewma_tracks_recent_values(self):
        ledger = CostLedger(ewma_alpha=0.5)
        ledger.observe("v", "op", "s", 0.002)
        assert ledger.entries()[0].ewma_seconds == pytest.approx(0.002)
        ledger.observe("v", "op", "s", 0.004)
        # first call seeds the EWMA; then ewma += alpha * (x - ewma)
        assert ledger.entries()[0].ewma_seconds == pytest.approx(0.003)

    def test_bounded_cardinality_drops_new_keys(self):
        ledger = CostLedger(max_entries=2)
        ledger.observe("v", "a", "s1", 0.001)
        ledger.observe("v", "b", "s2", 0.001)
        ledger.observe("v", "c", "s3", 0.001)  # over the cap: dropped
        ledger.observe("v", "a", "s1", 0.001)  # existing key: still folds
        assert len(ledger) == 2
        assert ledger.dropped == 1
        assert ledger.get("v", "a", "s1").calls == 2
        assert ledger.get("v", "c", "s3") is None

    def test_json_round_trip_is_exact(self):
        ledger = CostLedger()
        for i in range(7):
            ledger.observe(
                "balance",
                "GroupBySeq",
                "compiled/GroupBySeq",
                0.0001 * (i + 1),
                rows=i,
                counters={"aggregate_step": i, "index_probe": 1},
            )
        ledger.observe("other", "maintain", "compiled", 0.002, rows=4)
        snapshot = ledger.as_dict()
        restored = CostLedger.from_json(ledger.to_json())
        assert restored.as_dict() == snapshot
        # And a second hop stays fixed: load(save(x)) is idempotent.
        assert CostLedger.from_json(restored.to_json()).as_dict() == snapshot

    def test_save_load_files(self, tmp_path):
        ledger = CostLedger()
        ledger.observe("v", "op", "s", 0.001, rows=2)
        path = str(tmp_path / "costs.json")
        ledger.save(path)
        assert CostLedger.load(path).as_dict() == ledger.as_dict()

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CostLedger.from_dict({"schema": 99, "entries": []})

    def test_format_empty_and_filtered(self):
        ledger = CostLedger()
        assert "cost ledger empty" in ledger.format()
        ledger.observe("a", "op", "s", 0.001)
        ledger.observe("b", "op", "s", 0.001)
        table = ledger.format("a")
        assert "a" in table and "b" not in table


# ---------------------------------------------------------------------------
# Ledger fed from live maintain spans (normal ingest traffic)
# ---------------------------------------------------------------------------


class TestLedgerFromIngest:
    def test_populated_from_normal_appends(self):
        db = make_banking_db()
        obs = Observability(trace=True, trace_operators=True, audit="off")
        with obs_runtime.installed(obs):
            drive(db, events=8)
        views = obs.cost_ledger.views()
        assert "balance" in views
        rollup = obs.cost_ledger.get("balance", "maintain", "compiled")
        # amounts are i*5: only i in 3..7 pass the WHERE amount > 10
        # prefilter, so exactly those five appends reach maintenance.
        assert rollup is not None and rollup.calls == 5
        # Per-operator entries under the engine-prefixed shape path.
        shapes = {e.shape for e in obs.cost_ledger.entries() if e.view == "balance"}
        assert any(shape.startswith("compiled/") for shape in shapes)

    def test_operator_entries_carry_counters(self):
        db = make_banking_db()
        obs = Observability(trace=True, trace_operators=True, audit="off")
        with obs_runtime.installed(obs):
            drive(db, events=8)
        op_entries = [
            e
            for e in obs.cost_ledger.entries()
            if e.view == "balance" and e.operator != "maintain"
        ]
        assert op_entries
        assert any(e.counters for e in op_entries)

    def test_cost_snapshot_round_trips(self):
        db = make_banking_db()
        obs = Observability(trace=True, trace_operators=True, audit="off")
        with obs_runtime.installed(obs):
            drive(db, events=5)
        snapshot = obs.cost_snapshot()
        assert CostLedger.from_json(json.dumps(snapshot)).as_dict() == snapshot

    def test_costs_off_keeps_ledger_empty(self):
        db = make_banking_db()
        obs = Observability(trace=True, trace_operators=True, audit="off", costs=False)
        assert obs.record_costs is False
        with obs_runtime.installed(obs):
            drive(db, events=5)
        assert len(obs.cost_ledger) == 0
        assert obs.tracer.completed_count == 5  # tracing itself still on

    def test_snapshot_reports_ledger_stats(self):
        db = make_banking_db()
        obs = Observability(trace=True, trace_operators=True, audit="off")
        with obs_runtime.installed(obs):
            drive(db, events=3)
        snap = obs.snapshot()
        assert snap["costs"]["recording"] is True
        assert snap["costs"]["entries"] == len(obs.cost_ledger)
        assert snap["costs"]["dropped"] == 0

    def test_link_certificates_stamps_entries(self):
        ledger = CostLedger()
        ledger.observe("balance", "maintain", "compiled", 0.001)
        ledger.observe("other", "maintain", "compiled", 0.001)
        stamped = ledger.link_certificates(
            {
                "balance": {
                    "claimed_class": "IM-Constant",
                    "conformant": True,
                    "sweeps": [
                        {"parameter": "C", "metric": "work", "model": "constant"}
                    ],
                }
            }
        )
        assert stamped == 1
        entry = ledger.get("balance", "maintain", "compiled")
        assert entry.claimed_class == "IM-Constant"
        assert entry.conformant is True
        assert entry.fitted == {"C work": "constant"}
        assert ledger.get("other", "maintain", "compiled").claimed_class is None


# ---------------------------------------------------------------------------
# Zero-overhead contract: observability off ⇒ no ledger hooks execute
# ---------------------------------------------------------------------------


class TestDisabledMode:
    def test_no_runtime_no_ledger(self):
        db = make_banking_db()  # observe not set: nothing installed
        drive(db, events=6)
        assert obs_runtime.ACTIVE is None

    def test_uninstalled_handle_records_nothing(self):
        obs = Observability(trace=True, trace_operators=True, audit="off")
        db = make_banking_db()
        drive(db, events=6)
        assert len(obs.cost_ledger) == 0
        assert obs.tracer.completed_count == 0


# ---------------------------------------------------------------------------
# EXPLAIN: the static plan tree
# ---------------------------------------------------------------------------


class TestExplain:
    def test_reports_plan_shape(self):
        db = make_banking_db()
        report = db.explain("balance")
        assert isinstance(report, ExplainReport)
        text = report.format()
        assert "balance" in text
        assert "scan deposits" in text
        assert "σ" in text  # the WHERE amount > 10 select
        assert "group by" in text

    def test_uncompiled_views_fall_back_to_expression_tree(self):
        db = make_banking_db(compile_views=False)
        text = explain(db, "balance").format()
        assert "scan deposits" in text

    def test_unknown_view_raises(self):
        db = make_banking_db()
        with pytest.raises(ObservabilityError):
            explain(db, "nope")

    def test_shared_scan_annotated(self):
        db = make_banking_db()
        db.define_view(
            "DEFINE VIEW deposits_count AS "
            "SELECT acct, COUNT(*) AS n FROM deposits GROUP BY acct"
        )
        text = explain(db, "deposits_count").format()
        assert "shared" in text  # the interned ChronicleScan serves both views

    def test_to_dict_serializable(self):
        db = make_banking_db()
        payload = db.explain("balance").to_dict()
        json.dumps(payload)  # must be JSON-safe
        assert payload["view"] == "balance"
        assert payload["plan"]


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE: the instrumented window
# ---------------------------------------------------------------------------


def banking_factory(index):
    """Records that always pass the balance view's amount > 10 filter."""
    return {"acct": index % 3, "amount": 20 + index}


class TestExplainAnalyze:
    def test_measured_columns_present(self):
        db = make_banking_db()
        report = db.explain(
            "balance", analyze=True, events=4, batch=2, record_factory=banking_factory
        )
        text = report.format()
        assert "measured" in text
        assert "calls=" in text
        assert "rows=" in text
        assert "mean=" in text
        assert "work=" in text

    def test_analyze_leaves_runtime_clean(self):
        db = make_banking_db()
        db.explain(
            "balance", analyze=True, events=2, batch=1, record_factory=banking_factory
        )
        assert obs_runtime.ACTIVE is None

    def test_analyze_appends_drive_records(self):
        db = make_banking_db()
        before = db.chronicle("deposits").appended_count
        db.explain(
            "balance", analyze=True, events=3, batch=2, record_factory=banking_factory
        )
        # warm-up batch + 3 measured batches of 2
        assert db.chronicle("deposits").appended_count == before + 8

    def test_window_kwargs_require_analyze(self):
        db = make_banking_db()
        with pytest.raises(TypeError):
            db.explain("balance", events=4)

    def test_default_factory_failing_prefilter_raises(self):
        # The synthesized records' amounts are index % keyspace; with a
        # tiny window none exceed 10, so the prefilter starves the view
        # and EXPLAIN ANALYZE must say so rather than return zeros.
        db = make_banking_db()
        with pytest.raises(ObservabilityError):
            explain_analyze(db, "balance", events=2, batch=2)

    def test_explain_analyze_function_direct(self):
        db = make_banking_db()
        report = explain_analyze(
            db, "balance", events=2, batch=2, record_factory=banking_factory
        )
        assert any(m.calls for m in report.measurements.values())


# ---------------------------------------------------------------------------
# Surfaces: CLI statements and the /costs exporter route
# ---------------------------------------------------------------------------


class TestSurfaces:
    def _session(self):
        from repro.cli import Session

        s = Session()
        s.execute("CREATE CHRONICLE deposits (acct INT, amount INT) RETENTION 0")
        s.execute(
            "DEFINE VIEW balance AS SELECT acct, SUM(amount) AS balance "
            "FROM deposits WHERE amount > 10 GROUP BY acct"
        )
        return s

    def test_cli_show_costs_empty_then_populated(self):
        s = self._session()
        assert "cost ledger empty" in s.execute("SHOW COSTS")
        s.execute('APPEND deposits {"acct": 1, "amount": 50}')
        s.execute('APPEND deposits {"acct": 1, "amount": 5}')
        out = s.execute("SHOW COSTS")
        assert "balance" in out
        assert "maintain" in out

    def test_cli_show_costs_filtered(self):
        s = self._session()
        s.execute('APPEND deposits {"acct": 2, "amount": 30}')
        out = s.execute("SHOW COSTS balance")
        assert "balance" in out

    def test_cli_explain(self):
        s = self._session()
        out = s.execute("EXPLAIN balance")
        assert "scan deposits" in out
        out = s.execute("EXPLAIN VIEW balance")
        assert "scan deposits" in out

    def test_cli_explain_analyze(self):
        s = self._session()
        out = s.execute("EXPLAIN ANALYZE balance")
        assert "calls=" in out and "mean=" in out

    def test_cli_explain_bad_syntax(self):
        from repro.cli import CliError

        s = self._session()
        with pytest.raises(CliError):
            s.execute("EXPLAIN")
        with pytest.raises(CliError):
            s.execute("EXPLAIN balance extra")

    def test_costs_route_serves_ledger_json(self):
        db = make_banking_db(observe=True)
        try:
            drive(db, events=4)
            server = db.observability.serve(port=0)
            try:
                with urllib.request.urlopen(server.url + "/costs", timeout=5) as resp:
                    assert resp.status == 200
                    assert resp.headers.get("Content-Type") == "application/json"
                    payload = json.loads(resp.read())
            finally:
                db.observability.stop_serving()
            restored = CostLedger.from_dict(payload)
            assert "balance" in restored.views()
        finally:
            db.disable_observability()
