"""Tests for repro.relational.predicate: the Definition 4.1 fragment."""

import pytest

from repro.errors import AlgebraError
from repro.relational.predicate import (
    TRUE,
    And,
    Comparison,
    Not,
    Or,
    attr_cmp,
    attr_eq,
    attrs_cmp,
    conjunction,
    disjunction,
)
from repro.relational.schema import Schema
from repro.relational.tuples import Row


def row(a=1, b=2, s="x"):
    return Row(Schema.build(("a", "INT"), ("b", "INT"), ("s", "STR")), [a, b, s])


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [("=", 1, True), ("!=", 1, False), ("<", 2, True), ("<=", 1, True),
         (">", 0, True), (">=", 2, False)],
    )
    def test_constant_comparisons(self, op, value, expected):
        assert Comparison("a", op, value).evaluate(row()) is expected

    def test_attribute_comparison(self):
        assert attrs_cmp("a", "<", "b").evaluate(row(1, 2))
        assert not attrs_cmp("a", ">", "b").evaluate(row(1, 2))

    def test_string_comparison(self):
        assert attr_eq("s", "x").evaluate(row())
        assert attr_cmp("s", "<", "z").evaluate(row())

    def test_null_comparisons_are_false(self):
        schema = Schema([*Schema.build(("a", "INT")).attributes], key=None)
        nullable = Schema.build(("a", "INT"))
        r = Row(Schema([nullable.attribute("a").renamed("a")]), [None], validate=False)
        assert not Comparison("a", "=", 1).evaluate(r)
        assert not Comparison("a", "!=", 1).evaluate(r)

    def test_unknown_operator(self):
        with pytest.raises(AlgebraError):
            Comparison("a", "~", 1)

    def test_attributes(self):
        assert Comparison("a", "<", 5).attributes() == frozenset({"a"})
        assert attrs_cmp("a", "<", "b").attributes() == frozenset({"a", "b"})

    def test_flipped(self):
        flipped = attrs_cmp("a", "<", "b").flipped()
        assert flipped.attr == "b" and flipped.op == ">" and flipped.rhs == "a"

    def test_flip_constant_comparison_fails(self):
        with pytest.raises(AlgebraError):
            attr_eq("a", 5).flipped()

    def test_is_ca_predicate(self):
        assert attr_eq("a", 1).is_ca_predicate()

    def test_equality_and_hash(self):
        assert attr_eq("a", 1) == attr_eq("a", 1)
        assert len({attr_eq("a", 1), attr_eq("a", 1)}) == 1


class TestCombinators:
    def test_or(self):
        predicate = Or(attr_eq("a", 99), attr_eq("b", 2))
        assert predicate.evaluate(row())

    def test_or_flattens(self):
        nested = Or(Or(attr_eq("a", 1), attr_eq("a", 2)), attr_eq("a", 3))
        assert len(nested.terms) == 3

    def test_or_of_comparisons_is_ca(self):
        assert Or(attr_eq("a", 1), attr_eq("b", 2)).is_ca_predicate()

    def test_or_containing_and_is_not_ca(self):
        inner = And(attr_eq("a", 1), attr_eq("b", 2))
        assert not Or(inner, attr_eq("a", 3)).is_ca_predicate()

    def test_and(self):
        assert And(attr_eq("a", 1), attr_eq("b", 2)).evaluate(row())
        assert not And(attr_eq("a", 1), attr_eq("b", 99)).evaluate(row())

    def test_and_flattens(self):
        nested = And(And(attr_eq("a", 1), attr_eq("b", 2)), attr_eq("s", "x"))
        assert len(nested.terms) == 3

    def test_and_is_not_ca_atomically(self):
        assert not And(attr_eq("a", 1), attr_eq("b", 2)).is_ca_predicate()

    def test_not(self):
        assert Not(attr_eq("a", 99)).evaluate(row())
        assert not Not(attr_eq("a", 1)).evaluate(row())
        assert not Not(attr_eq("a", 1)).is_ca_predicate()

    def test_empty_or_rejected(self):
        with pytest.raises(AlgebraError):
            Or()

    def test_empty_and_rejected(self):
        with pytest.raises(AlgebraError):
            And()

    def test_operator_overloads(self):
        predicate = attr_eq("a", 1) | attr_eq("b", 9)
        assert isinstance(predicate, Or)
        predicate = attr_eq("a", 1) & attr_eq("b", 2)
        assert isinstance(predicate, And)
        assert isinstance(~attr_eq("a", 1), Not)

    def test_attributes_union(self):
        predicate = Or(attr_eq("a", 1), attrs_cmp("b", "<", "a"))
        assert predicate.attributes() == frozenset({"a", "b"})


class TestHelpers:
    def test_true_predicate(self):
        assert TRUE.evaluate(row())
        assert TRUE.is_ca_predicate()
        assert TRUE.attributes() == frozenset()

    def test_disjunction_single_passthrough(self):
        single = attr_eq("a", 1)
        assert disjunction([single]) is single

    def test_disjunction_many(self):
        assert isinstance(disjunction([attr_eq("a", 1), attr_eq("a", 2)]), Or)

    def test_conjunction_single_passthrough(self):
        single = attr_eq("a", 1)
        assert conjunction([single]) is single

    def test_conjunction_many(self):
        assert isinstance(conjunction([attr_eq("a", 1), attr_eq("b", 2)]), And)
