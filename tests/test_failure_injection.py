"""Systematic failure injection across the model's rule boundaries.

Each test forces one way the chronicle model's guarantees could be
violated and asserts the library refuses with the right error — the
"bug-free by construction" story the paper sells against hand-written
update code.
"""

import pytest

from repro import errors
from repro.aggregates import COUNT, SUM, spec
from repro.aggregates.base import NonIncrementalAggregate
from repro.algebra.ast import ChronicleProduct, scan
from repro.core.chronicle import maintenance_guard
from repro.core.database import ChronicleDatabase
from repro.core.group import ChronicleGroup
from repro.relational.predicate import Not, attr_eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView


@pytest.fixture
def db():
    database = ChronicleDatabase()
    database.create_chronicle(
        "calls", [("caller", "INT"), ("minutes", "INT")], retention=0
    )
    database.create_relation(
        "subscribers", [("number", "INT"), ("state", "STR")], key=["number"]
    )
    return database


class TestSequenceRules:
    def test_sequence_regression_rejected(self, db):
        db.append("calls", {"caller": 1, "minutes": 1}, sequence_number=10)
        with pytest.raises(errors.SequenceOrderError):
            db.append("calls", {"caller": 1, "minutes": 1}, sequence_number=9)

    def test_sequence_reuse_rejected(self, db):
        db.append("calls", {"caller": 1, "minutes": 1}, sequence_number=10)
        with pytest.raises(errors.SequenceOrderError):
            db.append("calls", {"caller": 1, "minutes": 1}, sequence_number=10)

    def test_cross_chronicle_regression_rejected(self, db):
        db.create_chronicle("texts", [("sender", "INT")])
        db.append("calls", {"caller": 1, "minutes": 1}, sequence_number=10)
        # Same group, different chronicle: the watermark is shared.
        with pytest.raises(errors.SequenceOrderError):
            db.append("texts", {"sender": 2}, sequence_number=5)


class TestProactivityRules:
    def test_retroactive_update_rejected_after_appends(self, db):
        db.relation("subscribers").insert({"number": 1, "state": "NJ"})
        db.append("calls", {"caller": 1, "minutes": 1})
        with pytest.raises(errors.RetroactiveUpdateError):
            db.relation("subscribers").update_key((1,), effective_from=0, state="NY")

    def test_views_never_see_retroactive_state(self, db):
        subscribers = db.relation("subscribers")
        subscribers.insert({"number": 1, "state": "NJ"})
        view = db.define_view(
            "DEFINE VIEW by_state AS SELECT state, COUNT(*) AS n "
            "FROM calls JOIN subscribers ON calls.caller = subscribers.number "
            "GROUP BY state"
        )
        db.append("calls", {"caller": 1, "minutes": 1})
        # A (failed) retroactive attempt must leave the view untouched.
        with pytest.raises(errors.RetroactiveUpdateError):
            subscribers.update_key((1,), effective_from=0, state="NY")
        assert view.value(("NJ",), "n") == 1
        assert view.value(("NY",), "n") is None


class TestNoAccessRule:
    def test_user_listener_cannot_read_chronicle_during_maintenance(self, db):
        """Even user code invoked from the maintenance path is barred."""
        chronicle = db.chronicle("calls")
        seen = []

        with maintenance_guard():
            with pytest.raises(errors.ChronicleAccessError):
                seen.extend(chronicle.rows())

    def test_view_over_unstored_chronicle_blocks_initialization_reads(self, db):
        # initialize_from_store on an unstored chronicle yields nothing
        # (there is nothing stored), and the view starts empty.
        view = db.define_view(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller"
        )
        assert len(view) == 0


class TestLanguageRules:
    def test_not_predicate_rejected_for_view(self, db):
        calls = db.chronicle("calls")
        expression = scan(calls).select(Not(attr_eq("caller", 1)))
        summary = GroupBySummary(expression, ["caller"], [spec(COUNT)])
        with pytest.raises(errors.ViewError):
            PersistentView("v", summary)

    def test_chronicle_product_view_rejected(self, db):
        db.create_chronicle("texts", [("sender", "INT")])
        calls, texts = db.chronicle("calls"), db.chronicle("texts")
        expression = ChronicleProduct(scan(calls), scan(texts))
        with pytest.raises(errors.ViewError):
            PersistentView(
                "v", GroupBySummary(expression, ["caller"], [spec(COUNT)])
            )

    def test_non_incremental_aggregate_rejected_in_sca(self, db):
        calls = db.chronicle("calls")
        median = NonIncrementalAggregate(
            "MEDIAN", lambda vs: sorted(vs)[len(vs) // 2]
        )
        with pytest.raises(errors.NotIncrementalError):
            GroupBySummary(scan(calls), ["caller"], [spec(median, "minutes")])

    def test_key_join_without_guarantee_rejected(self, db):
        calls = db.chronicle("calls")
        loose = Relation("loose", Schema.build(("number", "INT"), ("x", "INT")))
        with pytest.raises(errors.KeyJoinGuaranteeError):
            scan(calls).keyjoin(loose, [("caller", "number")])

    def test_cross_group_operations_rejected(self, db):
        other = ChronicleGroup("other")
        foreign = other.create_chronicle("calls2", [("caller", "INT"), ("minutes", "INT")])
        calls = db.chronicle("calls")
        with pytest.raises(errors.ChronicleGroupError):
            scan(calls).union(scan(foreign))


class TestRetentionRules:
    def test_window_query_beyond_retention_rejected(self):
        db = ChronicleDatabase()
        db.create_chronicle("calls", [("m", "INT")], retention=3)
        for i in range(10):
            db.append("calls", {"m": i})
        with pytest.raises(errors.RetentionError):
            db.detail_window("calls", 0, 9)

    def test_recompute_baseline_fails_honestly_without_storage(self):
        """The baseline *needs* the chronicle; with retention it silently
        computes over the window — here we check the honest failure of
        an oracle comparison instead: evaluate over retention=0 sees
        nothing."""
        from repro.algebra.evaluate import evaluate

        group = ChronicleGroup("g")
        calls = group.create_chronicle("calls", [("m", "INT")], retention=0)
        group.append(calls, {"m": 1})
        assert len(evaluate(scan(calls))) == 0  # nothing stored, nothing seen


class TestErrorHierarchy:
    def test_all_errors_derive_from_chronicle_error(self):
        roots = [
            errors.SchemaError,
            errors.IntegrityError,
            errors.ChronicleModelError,
            errors.AlgebraError,
            errors.ViewError,
            errors.QueryError,
        ]
        for root in roots:
            assert issubclass(root, errors.ChronicleError)

    def test_one_clause_catches_everything(self, db):
        try:
            db.append("nowhere", {"x": 1})
        except errors.ChronicleError:
            pass
        else:
            pytest.fail("expected a ChronicleError")

    def test_lex_error_positions(self):
        from repro.query.lexer import tokenize

        with pytest.raises(errors.LexError) as excinfo:
            tokenize("SELECT\n  @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3

    def test_checkpoint_rejects_unserializable_state(self, db, tmp_path):
        """A user aggregate with exotic state is caught, not silently
        mangled."""

        class Weird(NonIncrementalAggregate):
            incremental = True  # lie to get past SCA validation

            def __init__(self):
                super().__init__("WEIRD", lambda vs: 0)

            def initial(self):
                return object()  # not JSON-serializable

            def step(self, state, value):
                return state

        calls = db.chronicle("calls")
        summary = GroupBySummary(scan(calls), ["caller"], [spec(Weird(), "minutes")])
        view = PersistentView("weird", summary)
        db.registry.register(view)
        db.append("calls", {"caller": 1, "minutes": 1})
        from repro.storage.checkpoint import CheckpointError

        with pytest.raises(CheckpointError):
            db.checkpoint(str(tmp_path / "x.ckpt"))
