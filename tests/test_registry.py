"""Tests for affected-view identification (Section 5.2)."""

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import scan
from repro.core.group import ChronicleGroup
from repro.errors import ViewRegistrationError
from repro.relational.predicate import attr_cmp, attr_eq
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView
from repro.views.registry import ViewRegistry, scan_prefilters


def build():
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    return group, calls, fees


def view_over(calls, name, predicate=None):
    node = scan(calls)
    if predicate is not None:
        node = node.select(predicate)
    return PersistentView(name, GroupBySummary(node, ["acct"], [spec(SUM, "mins")]))


class TestScanPrefilters:
    def test_unfiltered_scan_has_no_prefilter(self):
        _, calls, _ = build()
        filters = scan_prefilters(scan(calls))
        assert filters == {"calls": []}

    def test_selection_above_scan_collected(self):
        _, calls, _ = build()
        filters = scan_prefilters(scan(calls).select(attr_eq("acct", 1)))
        assert len(filters["calls"]) == 1

    def test_cascaded_selections_conjoined(self):
        _, calls, _ = build()
        node = scan(calls).select(attr_eq("acct", 1)).select(attr_cmp("mins", ">", 5))
        (predicate,) = scan_prefilters(node)["calls"]
        from repro.relational.tuples import Row

        good = Row(calls.schema, [0, 1, 6])
        bad = Row(calls.schema, [0, 1, 3])
        assert predicate.evaluate(good)
        assert not predicate.evaluate(bad)

    def test_unfiltered_scan_wins_over_filtered(self):
        _, calls, _ = build()
        filtered = scan(calls).select(attr_eq("acct", 1))
        node = filtered.union(scan(calls))
        assert scan_prefilters(node)["calls"] == []

    def test_unfiltered_scan_wins_regardless_of_order(self):
        _, calls, _ = build()
        node = scan(calls).union(scan(calls).select(attr_eq("acct", 1)))
        assert scan_prefilters(node)["calls"] == []

    def test_selection_above_union_not_a_scan_filter(self):
        _, calls, fees = build()
        node = scan(calls).union(scan(fees)).select(attr_eq("acct", 1))
        # Conservative: the selection is not directly above a scan.
        assert scan_prefilters(node) == {"calls": [], "fees": []}


class TestRegistryRouting:
    def test_only_dependent_views_maintained(self):
        group, calls, fees = build()
        registry = ViewRegistry()
        registry.attach(group)
        calls_view = registry.register(view_over(calls, "calls_view"))
        fees_view = registry.register(view_over(fees, "fees_view"))
        group.append(calls, {"acct": 1, "mins": 5})
        assert calls_view.maintenance_count == 1
        assert fees_view.maintenance_count == 0

    def test_prefilter_skips_unaffected_views(self):
        group, calls, _ = build()
        registry = ViewRegistry(prefilter=True)
        registry.attach(group)
        selective = registry.register(
            view_over(calls, "acct1", attr_eq("acct", 1))
        )
        group.append(calls, {"acct": 2, "mins": 5})
        assert selective.maintenance_count == 0
        group.append(calls, {"acct": 1, "mins": 5})
        assert selective.maintenance_count == 1

    def test_prefilter_disabled_maintains_all(self):
        group, calls, _ = build()
        registry = ViewRegistry(prefilter=False)
        registry.attach(group)
        selective = registry.register(view_over(calls, "acct1", attr_eq("acct", 1)))
        group.append(calls, {"acct": 2, "mins": 5})
        assert selective.maintenance_count == 1  # maintained (vacuously)
        assert selective.value((2,), "sum_mins") is None

    def test_prefiltered_and_unfiltered_results_agree(self):
        group, calls, _ = build()
        fast = ViewRegistry(prefilter=True)
        group2 = ChronicleGroup("g2")
        calls2 = group2.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
        slow = ViewRegistry(prefilter=False)
        fast.attach(group)
        slow.attach(group2)
        fast_view = fast.register(view_over(calls, "v", attr_cmp("mins", ">", 5)))
        slow_view = slow.register(view_over(calls2, "v", attr_cmp("mins", ">", 5)))
        import random

        rng = random.Random(5)
        for _ in range(100):
            record = {"acct": rng.randrange(4), "mins": rng.randrange(12)}
            group.append(calls, dict(record))
            group2.append(calls2, dict(record))
        assert sorted(r.values for r in fast_view) == sorted(r.values for r in slow_view)
        assert fast_view.maintenance_count < slow_view.maintenance_count

    def test_stats_tracked(self):
        group, calls, _ = build()
        registry = ViewRegistry()
        registry.attach(group)
        registry.register(view_over(calls, "v", attr_eq("acct", 1)))
        group.append(calls, {"acct": 2, "mins": 5})
        group.append(calls, {"acct": 1, "mins": 5})
        stats = registry.stats
        assert stats["events"] == 2
        assert stats["candidate_views"] == 2
        assert stats["maintained_views"] == 1


class TestRegistration:
    def test_duplicate_name_rejected(self):
        group, calls, _ = build()
        registry = ViewRegistry()
        registry.register(view_over(calls, "v"))
        with pytest.raises(ViewRegistrationError):
            registry.register(view_over(calls, "v"))

    def test_lookup(self):
        group, calls, _ = build()
        registry = ViewRegistry()
        view = registry.register(view_over(calls, "v"))
        assert registry.view("v") is view
        assert "v" in registry
        assert len(registry) == 1

    def test_lookup_missing(self):
        with pytest.raises(ViewRegistrationError):
            ViewRegistry().view("nope")

    def test_unregister(self):
        group, calls, _ = build()
        registry = ViewRegistry()
        registry.attach(group)
        view = registry.register(view_over(calls, "v"))
        registry.unregister("v")
        group.append(calls, {"acct": 1, "mins": 5})
        assert view.maintenance_count == 0
        assert "v" not in registry

    def test_unregister_missing(self):
        with pytest.raises(ViewRegistrationError):
            ViewRegistry().unregister("nope")

    def test_views_iteration(self):
        group, calls, _ = build()
        registry = ViewRegistry()
        registry.register(view_over(calls, "a"))
        registry.register(view_over(calls, "b"))
        assert sorted(v.name for v in registry.views()) == ["a", "b"]
