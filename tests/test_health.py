"""Tests for operational health: SLO policies, shard lag, trace
correlation, the /health route, and the flight recorder.

Covers SloPolicy validation and the DatabaseConfig.slo knob, the
deterministic verdict semantics of evaluate_health (hard vs soft
breaches), end-to-end DEGRADED -> FAILING transitions on a live sharded
database (including the HTTP status codes /health answers with),
per-shard lag gauges and label hygiene (no shard="?" bucket, ever),
cross-thread trace correlation (every shard_apply span carries the
producing ingest's trace id), the flight-recorder ring/cooldown/bundle
format, incident dumps on auditor violations and shard-worker errors,
and concurrent scrapes while maintenance runs on the thread executor.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import ChronicleDatabase, DatabaseConfig
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.errors import (
    ConfigError,
    EngineError,
    MaintenanceAuditError,
    ObservabilityError,
)
from repro.obs import (
    FlightRecorder,
    HealthReport,
    Observability,
    ShardHealth,
    ShardLag,
    SloPolicy,
    evaluate_health,
)
from repro.obs import runtime as obs_runtime


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


def make_db(**kwargs):
    """A database (serial by default) with one partitionable view."""
    db = ChronicleDatabase(config=DatabaseConfig(**kwargs))
    db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")], retention=0)
    db.define_view(
        "DEFINE VIEW usage AS "
        "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
    )
    return db


def make_sharded(**kwargs):
    kwargs.setdefault("engine", "sharded")
    kwargs.setdefault("shards", 2)
    return make_db(**kwargs)


def _append_some(db, n=8):
    for i in range(n):
        db.append("calls", {"caller": i % 4, "minutes": 1 + i})


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read()


# ---------------------------------------------------------------------------
# SloPolicy + DatabaseConfig.slo
# ---------------------------------------------------------------------------


class TestSloPolicy:
    def test_defaults_and_dict_roundtrip(self):
        policy = SloPolicy()
        d = policy.as_dict()
        assert d["max_maintain_p99_seconds"] == 0.25
        assert d["max_auditor_violations"] == 0
        assert SloPolicy(**d) == policy

    def test_zero_limits_are_legal(self):
        # Tests and drills use zero limits to inject deterministic breaches.
        SloPolicy(max_maintain_p99_seconds=0, max_shard_lag_batches=0)

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigError, match="must be >= 0"):
            SloPolicy(max_shard_lag_seconds=-1.0)

    def test_non_number_rejected(self):
        with pytest.raises(ConfigError, match="must be a number"):
            SloPolicy(max_queue_depth="lots")
        with pytest.raises(ConfigError, match="must be a number"):
            SloPolicy(max_engine_errors=True)

    def test_config_carries_policy_to_handle(self):
        policy = SloPolicy(max_maintain_p99_seconds=1.5)
        db = make_db(observe=True, slo=policy)
        try:
            assert db.observability.slo == policy
        finally:
            db.observability.uninstall()

    def test_config_rejects_wrong_slo_type(self):
        with pytest.raises(ConfigError, match="slo must be an SloPolicy"):
            DatabaseConfig(slo={"max_maintain_p99_seconds": 1.0})

    def test_config_replace_swaps_policy(self):
        config = DatabaseConfig()
        strict = config.replace(slo=SloPolicy(max_engine_errors=0))
        assert strict.slo is not None and config.slo is None


# ---------------------------------------------------------------------------
# evaluate_health verdict semantics
# ---------------------------------------------------------------------------


def _lag(shard="kc0:0", batches=0, seconds=0.0, records=10):
    return ShardLag(
        shard=shard,
        watermark=5,
        lag_batches=batches,
        lag_seconds=seconds,
        records_applied=records,
        windows_applied=3,
        last_apply_at=0.0,
    )


class TestEvaluateHealth:
    def test_fresh_handle_is_ok(self):
        report = evaluate_health(Observability(audit="off"))
        assert report.status == "OK"
        assert not report.breaches
        assert {c.name for c in report.checks} == {
            "maintain_p99_seconds",
            "auditor_violations",
            "engine_errors",
        }

    def test_one_soft_breach_is_degraded(self):
        obs = Observability(audit="off")
        obs.metrics.observe("view_maintain_seconds", 0.01, view="v", engine="x")
        report = evaluate_health(obs, SloPolicy(max_maintain_p99_seconds=0))
        assert report.status == "DEGRADED"
        assert [c.name for c in report.breaches] == ["maintain_p99_seconds"]

    def test_two_soft_breaches_are_failing(self):
        obs = Observability(audit="off")
        obs.metrics.observe("view_maintain_seconds", 0.01, view="v", engine="x")
        snapshot = ShardHealth(
            admission_watermark=9,
            shards=[_lag(batches=4, seconds=2.0)],
            queue_depth=0,
        )
        report = evaluate_health(
            obs,
            SloPolicy(max_maintain_p99_seconds=0, max_shard_lag_batches=0),
            snapshot,
        )
        assert report.status == "FAILING"
        assert len(report.breaches) == 2

    def test_hard_breach_alone_is_failing(self):
        obs = Observability(audit="off")
        obs.metrics.inc("engine_errors_total")
        report = evaluate_health(obs, SloPolicy())
        assert report.status == "FAILING"
        breach = report.breaches[0]
        assert breach.name == "engine_errors" and breach.hard

    def test_shard_checks_only_with_snapshot(self):
        obs = Observability(audit="off")
        snapshot = ShardHealth(
            admission_watermark=3, shards=[_lag(), _lag(shard="kc0:1")], queue_depth=1
        )
        report = evaluate_health(obs, SloPolicy(), snapshot)
        names = {c.name for c in report.checks}
        assert {"shard_lag_batches", "shard_lag_seconds", "queue_depth"} <= names
        assert report.shard_health is snapshot

    def test_format_renders_verdict_and_shards(self):
        obs = Observability(audit="off")
        snapshot = ShardHealth(
            admission_watermark=3, shards=[_lag(batches=2)], queue_depth=0
        )
        text = evaluate_health(obs, SloPolicy(max_shard_lag_batches=0), snapshot).format()
        assert text.startswith("health: DEGRADED")
        assert "kc0:0" in text and "lag=2 batches" in text

    def test_report_dict_is_json_ready(self):
        report = evaluate_health(Observability(audit="off"))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["status"] == "OK"
        assert payload["policy"]["max_engine_errors"] == 0
        assert all(c["ok"] for c in payload["checks"])


class TestIpcOverheadCheck:
    """The soft ipc_overhead_fraction check, fed by the telemetry relay."""

    def _ipc(self, obs, encode=0.1, decode=0.1, visibility=2.0):
        obs.metrics.observe(
            "ipc_encode_seconds", encode, shard="kc0:0", direction="down"
        )
        obs.metrics.observe(
            "ipc_decode_seconds", decode, shard="kc0:0", direction="up"
        )
        if visibility:
            obs.metrics.observe("ingest_visibility_seconds", visibility)

    def test_absent_without_ipc_samples(self):
        report = evaluate_health(Observability(audit="off"))
        assert "ipc_overhead_fraction" not in {c.name for c in report.checks}

    def test_within_budget_is_ok(self):
        obs = Observability(audit="off")
        self._ipc(obs, encode=0.1, decode=0.1, visibility=2.0)
        report = evaluate_health(obs)
        check = next(
            c for c in report.checks if c.name == "ipc_overhead_fraction"
        )
        assert check.ok and not check.hard
        assert check.observed == pytest.approx(0.1, abs=1e-6)
        assert report.status == "OK"

    def test_breach_is_soft(self):
        obs = Observability(audit="off")
        self._ipc(obs, encode=1.0, decode=1.0, visibility=2.0)
        report = evaluate_health(obs, SloPolicy(max_ipc_overhead_fraction=0.5))
        assert report.status == "DEGRADED"
        assert [c.name for c in report.breaches] == ["ipc_overhead_fraction"]

    def test_no_visibility_samples_counts_as_full_overhead(self):
        obs = Observability(audit="off")
        self._ipc(obs, visibility=0)
        check = next(
            c
            for c in evaluate_health(obs).checks
            if c.name == "ipc_overhead_fraction"
        )
        assert check.observed == 1.0 and not check.ok

    def test_policy_field_validates(self):
        assert SloPolicy().max_ipc_overhead_fraction == 0.5
        SloPolicy(max_ipc_overhead_fraction=0)
        with pytest.raises(ConfigError):
            SloPolicy(max_ipc_overhead_fraction=-0.1)


class TestShardHealthSnapshot:
    def test_imbalance_ratio(self):
        snapshot = ShardHealth(
            admission_watermark=1,
            shards=[_lag(records=30), _lag(shard="kc0:1", records=10)],
            queue_depth=0,
        )
        assert snapshot.imbalance_ratio == pytest.approx(1.5)
        empty = ShardHealth(admission_watermark=-1, shards=[], queue_depth=0)
        assert empty.imbalance_ratio == 0.0
        assert empty.max_lag_batches == 0 and empty.max_lag_seconds == 0.0

    def test_live_snapshot_tracks_watermarks(self):
        db = make_sharded()
        obs = db.enable_observability(audit="off")
        try:
            _append_some(db, 8)
            snapshot = db.shard_health()
        finally:
            obs.uninstall()
        assert len(snapshot.shards) == 2
        assert snapshot.admission_watermark == 7
        # Quiescent: everything dispatched has been absorbed.
        assert snapshot.max_lag_batches == 0
        assert snapshot.max_lag_seconds == 0.0
        assert snapshot.queue_depth == 0
        assert sum(s.records_applied for s in snapshot.shards) == 8
        assert {s.shard for s in snapshot.shards} == {"kc0:0", "kc0:1"}

    def test_snapshot_works_without_observability(self):
        db = make_sharded()
        _append_some(db, 4)
        assert db.shard_health().max_lag_batches == 0


# ---------------------------------------------------------------------------
# End-to-end health on a live database
# ---------------------------------------------------------------------------


class TestDatabaseHealth:
    def test_health_requires_observability(self):
        db = make_db()
        with pytest.raises(ObservabilityError, match="health requires"):
            db.health()
        with pytest.raises(ObservabilityError, match="dump_incident requires"):
            db.dump_incident()

    def test_healthy_database_reports_ok(self):
        db = make_sharded(observe=True)
        try:
            _append_some(db)
            report = db.health()
            assert isinstance(report, HealthReport)
            assert report.status == "OK"
            assert report.shard_health is not None
        finally:
            db.observability.uninstall()

    def test_injected_breach_degrades_then_fails(self):
        """The acceptance drill: DEGRADED on a soft breach, FAILING once a
        hard one lands, visible through db.health() and /health."""
        db = make_sharded(observe=True, slo=SloPolicy(max_maintain_p99_seconds=0))
        server = db.serve_metrics(port=0)
        try:
            _append_some(db)
            # Any maintenance latency at all breaches the zero p99 limit.
            assert db.health().status == "DEGRADED"
            status, body = _get(server.url + "/health")
            payload = json.loads(body)
            assert status == 200 and payload["status"] == "DEGRADED"

            # A shard-worker failure is a hard breach: FAILING, 503.
            original = db._maintainer.run

            def exploding(tasks):
                raise EngineError("injected worker failure")

            db._maintainer.run = exploding
            with pytest.raises(EngineError):
                db.append("calls", {"caller": 1, "minutes": 1})
            db._maintainer.run = original

            assert db.health().status == "FAILING"
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(server.url + "/health")
            assert info.value.code == 503
            assert json.loads(info.value.read())["status"] == "FAILING"
        finally:
            db.close()
            db.observability.uninstall()

    def test_shard_lag_seconds_exported_per_shard(self):
        db = make_sharded(observe=True)
        try:
            _append_some(db, 12)
            text = db.observability.metrics.to_prometheus()
        finally:
            db.observability.uninstall()
        assert 'shard_lag_seconds{shard="kc0:0"}' in text
        assert 'shard_lag_seconds{shard="kc0:1"}' in text
        assert 'shard_lag_batches{shard="kc0:0"}' in text

    def test_no_unknown_shard_bucket(self):
        """Label hygiene: a shard="?" series must never be emitted."""
        db = make_sharded(observe=True)
        try:
            _append_some(db, 12)
            db.ingest("calls", [[{"caller": i, "minutes": 1}] for i in range(4)])
            text = db.observability.metrics.to_prometheus()
            snap = db.observability.metrics.as_dict()
        finally:
            db.observability.uninstall()
        assert 'shard="?"' not in text
        for name in ("shard_batches_total", "shard_lag_batches", "shard_lag_seconds"):
            assert all("?" not in key for key in snap[name]["series"])

    def test_show_health_cli(self):
        from repro.cli import Session

        session = Session(config=DatabaseConfig(engine="sharded", shards=2))
        session.execute("CREATE CHRONICLE calls (caller INT, minutes INT) RETENTION 0")
        session.execute(
            "DEFINE VIEW usage AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        session.execute('APPEND calls {"caller": 1, "minutes": 5}')
        out = session.execute("SHOW HEALTH")
        assert "health: OK" in out
        assert "maintain_p99_seconds" in out
        assert "kc0:0" in out


# ---------------------------------------------------------------------------
# Cross-thread trace correlation
# ---------------------------------------------------------------------------


class TestTraceCorrelation:
    def _spans(self, obs):
        out = []
        for root in obs.tracer.traces():
            out.extend(root.walk())
        return out

    def test_every_shard_apply_carries_producer_trace_id(self):
        db = make_sharded(observe=True, executor="thread")
        try:
            _append_some(db, 10)
            db.ingest("calls", [[{"caller": i, "minutes": 2}] for i in range(6)])
            spans = self._spans(db.observability)
        finally:
            db.observability.uninstall()
        ingest_ids = {s.trace_id for s in spans if s.name == "ingest"}
        applies = [s for s in spans if s.name == "shard_apply"]
        assert applies, "expected shard_apply spans"
        for span in applies:
            assert span.trace_id in ingest_ids
            assert span.parent_id is not None

    def test_linked_spans_reference_ingest_span_id(self):
        db = make_sharded(observe=True, executor="thread")
        try:
            _append_some(db, 10)
            spans = self._spans(db.observability)
        finally:
            db.observability.uninstall()
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.name != "shard_apply":
                continue
            parent = by_id.get(span.parent_id)
            assert parent is not None
            assert parent.name == "ingest"
            assert parent.trace_id == span.trace_id

    def test_trace_ids_survive_jsonl_export(self):
        import io

        db = make_sharded(observe=True)
        try:
            _append_some(db, 4)
            buffer = io.StringIO()
            db.observability.tracer.export_jsonl(buffer)
            lines = buffer.getvalue().splitlines()
        finally:
            db.observability.uninstall()
        assert lines
        for line in lines:
            payload = json.loads(line)
            assert "trace_id" in payload and "span_id" in payload

    def test_serial_engine_spans_share_one_trace(self):
        db = make_db(observe=True)
        try:
            db.append("calls", {"caller": 1, "minutes": 5})
            root = db.observability.tracer.last()
        finally:
            db.observability.uninstall()
        assert root.trace_id == root.span_id and root.parent_id is None
        for span in root.walk():
            assert span.trace_id == root.trace_id


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.note("tick", i=i)
        events = recorder.events()
        assert len(events) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]

    def test_trigger_without_directory_stays_in_memory(self):
        recorder = FlightRecorder()
        assert recorder.trigger("drill") is None
        assert recorder.triggered == 1 and recorder.dumped == 0
        assert recorder.events()[-1]["kind"] == "trigger"

    def test_explicit_path_dump(self, tmp_path):
        recorder = FlightRecorder()
        recorder.note("tick", n=1)
        path = recorder.trigger(
            "manual", {"extra": "context"}, path=str(tmp_path / "bundle.json")
        )
        bundle = json.loads(open(path).read())
        assert bundle["reason"] == "manual"
        assert bundle["context"] == {"extra": "context"}
        assert any(e["kind"] == "tick" for e in bundle["events"])

    def test_directory_dump_with_cooldown(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path), cooldown_seconds=3600)
        first = recorder.trigger("auditor-violation")
        second = recorder.trigger("auditor-violation")  # debounced
        third = recorder.trigger("slo-breach")  # different reason: dumps
        assert first is not None and second is None and third is not None
        assert recorder.triggered == 3 and recorder.dumped == 2
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "incident-0001-auditor-violation.json",
            "incident-0003-slo-breach.json",
        ]

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(cooldown_seconds=-1)


class TestIncidents:
    def test_auditor_violation_triggers_recorder(self):
        db = make_db()
        view = db.view("usage")
        original = view.apply_delta

        def leaky(delta):
            GLOBAL_COUNTERS.count("chronicle_read")
            return original(delta)

        view.apply_delta = leaky
        with db.enable_observability(audit="warn"):
            with pytest.warns(Warning):
                db.append("calls", {"caller": 1, "minutes": 5})
        recorder = db.observability.recorder
        assert recorder.triggered == 1
        assert any(e.get("reason") == "auditor-violation" for e in recorder.events())

    def test_raise_mode_writes_bundle_before_aborting(self, tmp_path):
        db = make_db()
        view = db.view("usage")
        original = view.apply_delta

        def leaky(delta):
            GLOBAL_COUNTERS.count("chronicle_read")
            return original(delta)

        view.apply_delta = leaky
        with db.enable_observability(audit="raise", incident_dir=str(tmp_path)):
            with pytest.raises(MaintenanceAuditError):
                db.append("calls", {"caller": 1, "minutes": 5})
        bundles = list(tmp_path.glob("incident-*-auditor-violation.json"))
        assert len(bundles) == 1
        bundle = json.loads(bundles[0].read_text())
        assert "no-chronicle-access" in bundle["context"]["error"]
        assert "watermarks" in bundle["context"]
        assert "snapshot" in bundle["context"]

    def test_shard_worker_error_bundle_is_readable(self, tmp_path):
        db = make_sharded(executor="thread")
        obs = db.enable_observability(audit="off", incident_dir=str(tmp_path))
        try:
            _append_some(db, 6)

            def exploding(tasks):
                raise EngineError("injected worker failure")

            db._maintainer.run = exploding
            with pytest.raises(EngineError):
                db.append("calls", {"caller": 9, "minutes": 9})
        finally:
            obs.uninstall()
        bundles = list(tmp_path.glob("incident-*-shard-worker-error.json"))
        assert len(bundles) == 1
        bundle = json.loads(bundles[0].read_text())
        assert "injected worker failure" in bundle["context"]["error"]
        # The tape: recent root spans with trace ids, plus watermarks.
        spans = [e for e in bundle["events"] if e["kind"] == "span"]
        assert spans and all("trace_id" in s for s in spans)
        marks = bundle["context"]["watermarks"]
        assert any(key.startswith("kc0:") for key in marks)
        assert obs.metrics.value("engine_errors_total") == 1

    def test_manual_dump_incident(self, tmp_path):
        db = make_db(observe=True)
        try:
            db.append("calls", {"caller": 1, "minutes": 5})
            path = db.dump_incident(path=str(tmp_path / "manual.json"))
        finally:
            db.observability.uninstall()
        bundle = json.loads(open(path).read())
        assert bundle["reason"] == "manual"
        assert bundle["context"]["registry_stats"]["events"] == 1
        assert any(e["kind"] == "span" for e in bundle["events"])

    def test_snapshot_reports_recorder_and_health(self):
        db = make_db(observe=True)
        try:
            db.append("calls", {"caller": 1, "minutes": 5})
            db.health()
            snap = db.observability.snapshot()
        finally:
            db.observability.uninstall()
        assert snap["health"] == "OK"
        assert snap["recorder"]["events"] >= 1
        assert snap["recorder"]["triggered"] == 0


# ---------------------------------------------------------------------------
# Concurrent scrape while maintenance runs (thread executor)
# ---------------------------------------------------------------------------


class TestConcurrentScrape:
    def test_endpoints_answer_mid_maintenance(self):
        db = make_sharded(observe=True, executor="thread", shards=2)
        server = db.serve_metrics(port=0)
        errors = []
        done = threading.Event()

        def writer():
            try:
                for round_ in range(30):
                    db.ingest(
                        "calls",
                        [
                            [{"caller": (round_ * 7 + i) % 16, "minutes": 1}]
                            for i in range(4)
                        ],
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            scrapes = 0
            while not done.is_set() or scrapes < 3:
                status, body = _get(server.url + "/metrics")
                assert status == 200 and b"shard_" in body
                status, body = _get(server.url + "/snapshot")
                assert json.loads(body)["recorder"]["triggered"] == 0
                status, body = _get(server.url + "/health")
                assert json.loads(body)["status"] in ("OK", "DEGRADED")
                scrapes += 1
                if scrapes > 200:  # pragma: no cover - watchdog
                    break
        finally:
            thread.join(timeout=30)
            db.close()
            db.observability.uninstall()
        assert not errors
        assert db.view("usage").maintenance_count > 0
