"""Tests for the chronicle-model kernel: sequences, chronicles, groups,
deltas — the Section 2 rules."""

import pytest

from repro.core.chronicle import Chronicle, in_maintenance, maintenance_guard
from repro.core.delta import Delta
from repro.core.group import ChronicleGroup, chronicle_schema
from repro.core.sequence import (
    IdentityChronons,
    LinearChronons,
    RecordedChronons,
    SequenceIssuer,
)
from repro.errors import (
    ChronicleAccessError,
    ChronicleGroupError,
    RetentionError,
    SchemaError,
    SequenceOrderError,
)
from repro.relational.schema import Schema
from repro.relational.tuples import Row


class TestSequenceIssuer:
    def test_issue_is_monotone(self):
        issuer = SequenceIssuer()
        assert [issuer.issue() for _ in range(3)] == [0, 1, 2]
        assert issuer.watermark == 2

    def test_custom_start(self):
        issuer = SequenceIssuer(start=100)
        assert issuer.watermark == 99
        assert issuer.issue() == 100

    def test_accept_valid(self):
        issuer = SequenceIssuer()
        issuer.issue()
        assert issuer.accept(10) == 10
        assert issuer.watermark == 10

    def test_accept_stale_rejected(self):
        issuer = SequenceIssuer()
        issuer.accept(5)
        with pytest.raises(SequenceOrderError):
            issuer.accept(5)
        with pytest.raises(SequenceOrderError):
            issuer.accept(3)

    def test_sparse_numbers_allowed(self):
        issuer = SequenceIssuer()
        issuer.accept(7)
        issuer.accept(1000)  # no density requirement (Section 2.1)
        assert issuer.watermark == 1000


class TestChronons:
    def test_identity(self):
        assert IdentityChronons().chronon(42) == 42.0

    def test_linear(self):
        mapper = LinearChronons(origin=100.0, step=0.5)
        assert mapper.chronon(4) == 102.0

    def test_linear_rejects_bad_step(self):
        with pytest.raises(ValueError):
            LinearChronons(step=0)

    def test_recorded_lookup(self):
        mapper = RecordedChronons()
        mapper.record(0, 10.0)
        mapper.record(5, 20.0)
        assert mapper.chronon(0) == 10.0
        assert mapper.chronon(3) == 10.0  # last recording at or before
        assert mapper.chronon(5) == 20.0
        assert mapper.chronon(100) == 20.0

    def test_recorded_before_first(self):
        mapper = RecordedChronons()
        mapper.record(5, 20.0)
        with pytest.raises(SequenceOrderError):
            mapper.chronon(4)

    def test_recorded_monotone_sn(self):
        mapper = RecordedChronons()
        mapper.record(5, 20.0)
        with pytest.raises(SequenceOrderError):
            mapper.record(5, 30.0)

    def test_recorded_monotone_instants(self):
        mapper = RecordedChronons()
        mapper.record(5, 20.0)
        with pytest.raises(SequenceOrderError):
            mapper.record(6, 19.0)


class TestChronicleSchemaHelper:
    def test_adds_sequence_column(self):
        schema = chronicle_schema(("acct", "INT"))
        assert schema.names == ("sn", "acct")
        assert schema.sequence_attribute == "sn"

    def test_custom_sequence_name(self):
        schema = chronicle_schema(("acct", "INT"), sequence_attribute="seq")
        assert schema.sequence_attribute == "seq"

    def test_plain_schema_rejected_by_chronicle(self):
        with pytest.raises(SchemaError):
            Chronicle("c", Schema.build(("a", "INT")))


class TestGroupAppends:
    def make(self, retention=None):
        group = ChronicleGroup("g")
        chronicle = group.create_chronicle(
            "c", [("acct", "INT"), ("v", "INT")], retention=retention
        )
        return group, chronicle

    def test_append_stamps_sequence(self):
        group, chronicle = self.make()
        rows = group.append(chronicle, {"acct": 1, "v": 10})
        assert rows[0].sequence_number == 0
        rows = group.append("c", {"acct": 2, "v": 20})
        assert rows[0].sequence_number == 1

    def test_append_positional_without_sn(self):
        group, chronicle = self.make()
        rows = group.append(chronicle, (7, 70))
        assert rows[0].values == (0, 7, 70)

    def test_append_batch_shares_sequence_number(self):
        group, chronicle = self.make()
        rows = group.append(chronicle, [{"acct": 1, "v": 1}, {"acct": 2, "v": 2}])
        assert [r.sequence_number for r in rows] == [0, 0]

    def test_explicit_sequence_number(self):
        group, chronicle = self.make()
        group.append(chronicle, {"acct": 1, "v": 1}, sequence_number=10)
        assert group.watermark == 10
        with pytest.raises(SequenceOrderError):
            group.append(chronicle, {"acct": 1, "v": 1}, sequence_number=10)

    def test_record_supplying_conflicting_sn_rejected(self):
        group, chronicle = self.make()
        with pytest.raises(SchemaError):
            group.append(chronicle, {"sn": 99, "acct": 1, "v": 1})

    def test_record_supplying_matching_sn_allowed(self):
        group, chronicle = self.make()
        rows = group.append(chronicle, {"sn": 0, "acct": 1, "v": 1})
        assert rows[0].sequence_number == 0

    def test_simultaneous_appends_share_sn(self):
        group = ChronicleGroup("g")
        a = group.create_chronicle("a", [("x", "INT")])
        b = group.create_chronicle("b", [("y", "INT")])
        stamped = group.append_simultaneous({a: {"x": 1}, b: {"y": 2}})
        assert stamped["a"][0].sequence_number == stamped["b"][0].sequence_number == 0

    def test_sequential_appends_across_chronicles_strictly_increase(self):
        group = ChronicleGroup("g")
        a = group.create_chronicle("a", [("x", "INT")])
        b = group.create_chronicle("b", [("y", "INT")])
        group.append(a, {"x": 1})
        rows = group.append(b, {"y": 2})
        assert rows[0].sequence_number == 1

    def test_foreign_chronicle_rejected(self):
        group1 = ChronicleGroup("g1")
        group2 = ChronicleGroup("g2")
        foreign = group2.create_chronicle("c", [("x", "INT")])
        with pytest.raises(ChronicleGroupError):
            group1.append(foreign, {"x": 1})

    def test_duplicate_chronicle_name_rejected(self):
        group, _ = self.make()
        with pytest.raises(ChronicleGroupError):
            group.create_chronicle("c", [("x", "INT")])

    def test_listener_receives_event(self):
        group, chronicle = self.make()
        events = []
        group.subscribe(lambda g, event: events.append(event))
        group.append(chronicle, {"acct": 1, "v": 10})
        assert len(events) == 1
        assert set(events[0]) == {"c"}

    def test_unsubscribe(self):
        group, chronicle = self.make()
        events = []
        listener = lambda g, event: events.append(event)
        group.subscribe(listener)
        group.unsubscribe(listener)
        group.append(chronicle, {"acct": 1, "v": 10})
        assert events == []

    def test_chronon_recording_on_append(self):
        group = ChronicleGroup("g", chronons=RecordedChronons())
        chronicle = group.create_chronicle("c", [("x", "INT")])
        group.append(chronicle, {"x": 1}, instant=100.0)
        assert group.chronons.chronon(0) == 100.0

    def test_adopt_external_chronicle(self):
        group = ChronicleGroup("g")
        chronicle = Chronicle("ext", chronicle_schema(("x", "INT")))
        group.adopt(chronicle)
        assert chronicle.group is group
        group.append("ext", {"x": 1})


class TestRetention:
    def make(self, retention):
        group = ChronicleGroup("g")
        chronicle = group.create_chronicle("c", [("v", "INT")], retention=retention)
        return group, chronicle

    def test_retention_none_stores_all(self):
        group, chronicle = self.make(None)
        for i in range(100):
            group.append(chronicle, {"v": i})
        assert len(chronicle) == 100

    def test_retention_zero_stores_nothing(self):
        group, chronicle = self.make(0)
        for i in range(100):
            group.append(chronicle, {"v": i})
        assert chronicle.appended_count == 100
        assert len(chronicle) == 0

    def test_retention_window(self):
        group, chronicle = self.make(10)
        for i in range(100):
            group.append(chronicle, {"v": i})
        stored = list(chronicle.rows())
        assert len(stored) == 10
        assert stored[0]["v"] == 90

    def test_window_query(self):
        group, chronicle = self.make(None)
        for i in range(20):
            group.append(chronicle, {"v": i})
        rows = chronicle.window(5, 8)
        assert [r["v"] for r in rows] == [5, 6, 7, 8]

    def test_window_before_retained_range_rejected(self):
        group, chronicle = self.make(10)
        for i in range(100):
            group.append(chronicle, {"v": i})
        with pytest.raises(RetentionError):
            chronicle.window(0, 5)

    def test_window_on_unstored_chronicle_rejected(self):
        group, chronicle = self.make(0)
        group.append(chronicle, {"v": 1})
        with pytest.raises(RetentionError):
            chronicle.window()

    def test_last_sequence_number(self):
        group, chronicle = self.make(None)
        assert chronicle.last_sequence_number() is None
        group.append(chronicle, {"v": 1})
        assert chronicle.last_sequence_number() == 0

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            self.make(-1)


class TestNoAccessGuard:
    def test_reads_blocked_during_maintenance(self):
        group = ChronicleGroup("g")
        chronicle = group.create_chronicle("c", [("v", "INT")])
        group.append(chronicle, {"v": 1})
        assert not in_maintenance()
        with maintenance_guard():
            assert in_maintenance()
            with pytest.raises(ChronicleAccessError):
                list(chronicle.rows())
            with pytest.raises(ChronicleAccessError):
                chronicle.window()
            with pytest.raises(ChronicleAccessError):
                len(chronicle)
        assert not in_maintenance()
        assert len(chronicle) == 1  # readable again

    def test_guard_nests(self):
        with maintenance_guard():
            with maintenance_guard():
                assert in_maintenance()
            assert in_maintenance()
        assert not in_maintenance()


class TestDelta:
    def schema(self):
        return chronicle_schema(("v", "INT"))

    def test_dedup(self):
        schema = self.schema()
        rows = [Row(schema, [1, 5]), Row(schema, [1, 5]), Row(schema, [1, 6])]
        delta = Delta(schema, rows)
        assert len(delta) == 2

    def test_empty(self):
        delta = Delta.empty(self.schema())
        assert delta.is_empty
        assert len(delta) == 0

    def test_sequence_numbers(self):
        schema = self.schema()
        delta = Delta(schema, [Row(schema, [3, 1]), Row(schema, [3, 2]), Row(schema, [4, 1])])
        assert delta.sequence_numbers() == (3, 4)

    def test_assert_fresh_accepts_new(self):
        schema = self.schema()
        delta = Delta(schema, [Row(schema, [5, 1])])
        delta.assert_fresh(watermark_before=4)

    def test_assert_fresh_rejects_stale(self):
        schema = self.schema()
        delta = Delta(schema, [Row(schema, [5, 1])])
        with pytest.raises(SequenceOrderError):
            delta.assert_fresh(watermark_before=5)
