"""Tests for the measurement kit: counters, fitting, sweep harness."""

import math

import pytest

from repro.complexity.counters import GLOBAL_COUNTERS, CostCounters
from repro.complexity.fitting import fit_series, growth_ratio, is_flat
from repro.complexity.harness import Sweep, format_table, measure, report


class TestCounters:
    def test_count_and_snapshot(self):
        counters = CostCounters()
        counters.count("tuple_op")
        counters.count("index_probe", 5)
        snap = counters.snapshot()
        assert snap["tuple_op"] == 1
        assert snap["index_probe"] == 5

    def test_diff(self):
        counters = CostCounters()
        counters.count("tuple_op", 3)
        before = counters.snapshot()
        counters.count("tuple_op", 4)
        assert counters.diff(before)["tuple_op"] == 4

    def test_measure_context(self):
        counters = CostCounters()
        with counters.measure() as cost:
            counters.count("view_read", 2)
        assert cost["view_read"] == 2

    def test_disabled_context(self):
        counters = CostCounters()
        with counters.disabled():
            counters.count("tuple_op")
        assert counters.counts["tuple_op"] == 0
        counters.count("tuple_op")
        assert counters.counts["tuple_op"] == 1

    def test_reset_and_total(self):
        counters = CostCounters()
        counters.count("tuple_op", 2)
        counters.count("index_probe")
        assert counters.total == 3
        counters.reset()
        assert counters.total == 0

    def test_global_counters_exist(self):
        snapshot = GLOBAL_COUNTERS.snapshot()
        assert set(snapshot) == set(CostCounters.EVENTS)


class TestFitting:
    def test_constant_series(self):
        assert fit_series([10, 100, 1000, 10000], [7, 7.2, 6.9, 7.1]).model == "constant"

    def test_linear_series(self):
        assert fit_series([10, 100, 1000, 10000], [21, 201, 2001, 20001]).model == "linear"

    def test_log_series(self):
        xs = [2 ** k for k in range(3, 12)]
        ys = [3 * math.log2(x) + 1 for x in xs]
        assert fit_series(xs, ys).model == "log"

    def test_quadratic_series(self):
        xs = [10, 20, 40, 80, 160]
        ys = [x * x for x in xs]
        assert fit_series(xs, ys).model == "quadratic"

    def test_nlogn_series(self):
        xs = [2 ** k for k in range(4, 14)]
        ys = [x * math.log2(x) for x in xs]
        assert fit_series(xs, ys).model == "nlogn"

    def test_prefers_simpler_model_within_tolerance(self):
        # Slightly noisy constant data must not be called "log".
        xs = [10, 100, 1000, 10000, 100000]
        ys = [5.0, 5.3, 4.8, 5.1, 5.05]
        assert fit_series(xs, ys).model == "constant"

    def test_model_subset(self):
        xs = [1, 2, 3, 4]
        ys = [1, 4, 9, 16]
        result = fit_series(xs, ys, models=("constant", "linear"))
        assert result.model == "linear"

    def test_predict(self):
        fit = fit_series([1, 2, 3, 4], [2, 4, 6, 8]).best
        assert fit.predict(10) == pytest.approx(20, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_series([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_series([1, 2, 3], [1, 2])

    def test_r_squared_reported(self):
        result = fit_series([1, 2, 3, 4], [2, 4, 6, 8])
        assert result.best.r_squared == pytest.approx(1.0)

    def test_growth_ratio(self):
        assert growth_ratio([1, 10], [5, 50]) == pytest.approx(10.0)

    def test_is_flat(self):
        assert is_flat([1, 10, 100], [5, 5.5, 4.8])
        assert not is_flat([1, 10, 100], [5, 50, 500])
        assert is_flat([1, 2], [0, 0])


class TestHarness:
    def test_measure_counts_and_times(self):
        result = measure(lambda: GLOBAL_COUNTERS.count("tuple_op", 3), repeats=4)
        assert result.counters["tuple_op"] == 3
        assert result.seconds >= 0

    def test_sweep_runs_setup_uncounted(self):
        sweep = Sweep("n")

        def setup(n):
            GLOBAL_COUNTERS.count("tuple_op", 1000)  # suspended
            return lambda: GLOBAL_COUNTERS.count("tuple_op", int(n))

        sweep.run([1, 2, 4], setup)
        assert sweep.series("tuple_op") == [1.0, 2.0, 4.0]
        assert sweep.xs == [1.0, 2.0, 4.0]

    def test_sweep_fit(self):
        sweep = Sweep("n")
        sweep.run(
            [10, 100, 1000],
            lambda n: (lambda: GLOBAL_COUNTERS.count("tuple_op", 7)),
        )
        assert sweep.fit("tuple_op").model == "constant"

    def test_sweep_work_metric(self):
        sweep = Sweep("n")
        sweep.run([1], lambda n: (lambda: GLOBAL_COUNTERS.count("index_probe", 2)))
        assert sweep.series("work") == [2.0]

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], [10, 0.000001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_report_includes_title_and_rows(self):
        sweep = Sweep("n")
        sweep.run([5], lambda n: (lambda: None))
        text = report("E0 smoke", "n", sweep)
        assert "E0 smoke" in text
        assert "µs/append" in text

    def test_report_extra_columns(self):
        sweep = Sweep("n")
        sweep.run([5], lambda n: (lambda: None))
        text = report("t", "n", sweep, extra_columns={"fit": ["constant"]})
        assert "constant" in text
