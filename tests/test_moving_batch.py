"""Tests for the cyclic-buffer moving windows and batch→incremental
conversion (Sections 5.1 and 5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.standard import AVG, COUNT, FIRST, MAX, MIN, SUM
from repro.errors import AggregateError, ChronicleError
from repro.views.batch import (
    IncrementalTieredComputation,
    TierSchedule,
    batch_tiered_computation,
)
from repro.views.moving import KeyedMovingWindow, MovingWindowAggregate


def naive_window_sum(values_by_bucket, width, bucket):
    """Reference: sum over the last *width* buckets ending at *bucket*."""
    total = 0
    for b in range(bucket - width + 1, bucket + 1):
        total += sum(values_by_bucket.get(b, []))
    return total


class TestMovingWindowAggregate:
    def test_sum_over_window(self):
        window = MovingWindowAggregate(SUM, width=3)
        window.add(1)
        window.roll()
        window.add(2)
        window.roll()
        window.add(3)
        assert window.current() == 6
        window.roll()  # bucket with 1 leaves
        assert window.current() == 5

    def test_count(self):
        window = MovingWindowAggregate(COUNT, width=2)
        window.add(0)
        window.add(0)
        window.roll()
        window.add(0)
        assert window.current() == 3
        window.roll()
        assert window.current() == 1

    def test_min_recombines(self):
        window = MovingWindowAggregate(MIN, width=2)
        window.add(5)
        window.roll()
        window.add(9)
        assert window.current() == 5
        window.roll()  # the 5 leaves
        assert window.current() == 9

    def test_max_recombines(self):
        window = MovingWindowAggregate(MAX, width=3)
        for value in (7, 3, 5):
            window.add(value)
            window.roll()
        # Three add+roll cycles with width 3: the bucket holding 7 has
        # been evicted; the live buckets hold 3, 5, and the empty current.
        assert window.current() == 5

    def test_empty_window_value(self):
        assert MovingWindowAggregate(SUM, width=3).current() == 0
        assert MovingWindowAggregate(MIN, width=3).current() is None

    def test_roll_to_gap_smaller_than_width(self):
        window = MovingWindowAggregate(SUM, width=5)
        window.add(10)
        window.roll_to(2)
        window.add(1)
        assert window.current() == 11
        window.roll_to(3)  # the 10 leaves (5 buckets past)
        assert window.current() == 1

    def test_roll_to_gap_beyond_width_resets(self):
        window = MovingWindowAggregate(SUM, width=3)
        window.add(10)
        window.roll_to(10)
        assert window.current() == 0

    def test_non_mergeable_rejected(self):
        with pytest.raises(AggregateError):
            MovingWindowAggregate(FIRST, width=3)

    def test_bad_width(self):
        with pytest.raises(AggregateError):
            MovingWindowAggregate(SUM, width=0)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 30), st.integers(-100, 100)), min_size=1, max_size=80),
    st.integers(1, 8),
)
def test_moving_sum_matches_naive(events, width):
    """Property: the cyclic-buffer sum equals per-window recomputation.

    Events are (bucket, value) with buckets sorted (chronicle order).
    """
    events = sorted(events, key=lambda e: e[0])
    window = MovingWindowAggregate(SUM, width=width)
    values_by_bucket = {}
    current_bucket = events[0][0]
    # Pre-position the window at the first bucket.
    for bucket, value in events:
        if bucket > current_bucket:
            window.roll_to(bucket - current_bucket)
            current_bucket = bucket
        window.add(value)
        values_by_bucket.setdefault(bucket, []).append(value)
        expected = naive_window_sum(values_by_bucket, width, current_bucket)
        assert window.current() == expected


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 20), st.integers(-50, 50)), min_size=1, max_size=60),
    st.integers(1, 6),
)
def test_moving_min_matches_naive(events, width):
    """Property: the O(width) re-merge path (MIN) is also exact."""
    events = sorted(events, key=lambda e: e[0])
    window = MovingWindowAggregate(MIN, width=width)
    values_by_bucket = {}
    current_bucket = events[0][0]
    for bucket, value in events:
        if bucket > current_bucket:
            window.roll_to(bucket - current_bucket)
            current_bucket = bucket
        window.add(value)
        values_by_bucket.setdefault(bucket, []).append(value)
        live = [
            v
            for b in range(current_bucket - width + 1, current_bucket + 1)
            for v in values_by_bucket.get(b, [])
        ]
        assert window.current() == (min(live) if live else None)


class TestKeyedMovingWindow:
    def test_per_key_windows(self):
        windows = KeyedMovingWindow(SUM, width=30)
        windows.observe("IBM", 100, chronon=0)
        windows.observe("ATT", 50, chronon=0)
        windows.observe("IBM", 200, chronon=1)
        assert windows.current("IBM") == 300
        assert windows.current("ATT") == 50
        assert windows.current("XYZ") == 0

    def test_paper_30_day_example(self):
        """Section 5.1: daily total of shares sold in the preceding 30
        days, via a cyclic buffer of 30 per-day numbers."""
        windows = KeyedMovingWindow(SUM, width=30)
        for day in range(60):
            windows.observe("IBM", 10, chronon=float(day))
        # Days 30..59 are in-window: 30 days × 10 shares.
        assert windows.current("IBM") == 300

    def test_advance_without_values(self):
        windows = KeyedMovingWindow(SUM, width=3)
        windows.observe("A", 5, chronon=0)
        windows.advance_to(10.0)
        assert windows.current("A") == 0

    def test_regressing_chronon_rejected(self):
        windows = KeyedMovingWindow(SUM, width=3)
        windows.observe("A", 5, chronon=10)
        with pytest.raises(AggregateError):
            windows.observe("A", 5, chronon=3)

    def test_bucket_width(self):
        windows = KeyedMovingWindow(SUM, width=2, bucket_width=10.0)
        windows.observe("A", 1, chronon=0)
        windows.observe("A", 2, chronon=9)    # same bucket
        windows.observe("A", 4, chronon=10)   # next bucket
        assert windows.current("A") == 7
        windows.observe("A", 8, chronon=20)   # first bucket leaves
        assert windows.current("A") == 12

    def test_items_and_len(self):
        windows = KeyedMovingWindow(SUM, width=2)
        windows.observe("A", 1, chronon=0)
        windows.observe("B", 2, chronon=0)
        assert dict(windows.items()) == {"A": 1, "B": 2}
        assert len(windows) == 2
        assert sorted(windows.keys()) == ["A", "B"]

    def test_bad_bucket_width(self):
        with pytest.raises(AggregateError):
            KeyedMovingWindow(SUM, width=3, bucket_width=0)


class TestTierSchedule:
    def schedule(self):
        # The paper's plan: 10% over $10, 20% over $25.
        return TierSchedule([(10.0, 0.10), (25.0, 0.20)])

    def test_rates(self):
        schedule = self.schedule()
        assert schedule.rate_for(5.0) == 0.0
        assert schedule.rate_for(10.0) == 0.0   # strictly exceed
        assert schedule.rate_for(15.0) == 0.10
        assert schedule.rate_for(30.0) == 0.20

    def test_discount_and_net(self):
        schedule = self.schedule()
        assert schedule.discount_for(30.0) == pytest.approx(6.0)
        assert schedule.net_for(30.0) == pytest.approx(24.0)

    def test_validation(self):
        with pytest.raises(ChronicleError):
            TierSchedule([])
        with pytest.raises(ChronicleError):
            TierSchedule([(10, 0.1), (10, 0.2)])

    def test_unsorted_input_sorted(self):
        schedule = TierSchedule([(25.0, 0.20), (10.0, 0.10)])
        assert schedule.rate_for(15.0) == 0.10


class TestBatchIncrementalEquivalence:
    def test_statement_equality(self):
        schedule = TierSchedule([(10.0, 0.10), (25.0, 0.20)])
        records = [("a", 4.0), ("b", 12.0), ("a", 9.0), ("b", 20.0), ("c", 1.0)]
        incremental = IncrementalTieredComputation(schedule)
        for key, amount in records:
            incremental.observe(key, amount)
        assert incremental.statement() == batch_tiered_computation(schedule, records)

    def test_mid_period_currency(self):
        """The incremental form answers correctly *before* period end —
        the batch form's staleness problem (Section 5.3)."""
        schedule = TierSchedule([(10.0, 0.10)])
        incremental = IncrementalTieredComputation(schedule)
        incremental.observe("a", 8.0)
        assert incremental.rate("a") == 0.0
        incremental.observe("a", 5.0)
        assert incremental.rate("a") == 0.10
        assert incremental.net("a") == pytest.approx(13.0 * 0.9)

    def test_reset_starts_new_period(self):
        schedule = TierSchedule([(10.0, 0.10)])
        incremental = IncrementalTieredComputation(schedule)
        incremental.observe("a", 50.0)
        incremental.reset()
        assert incremental.total("a") == 0.0
        assert len(incremental) == 0

    def test_records_processed(self):
        incremental = IncrementalTieredComputation(TierSchedule([(1.0, 0.1)]))
        for _ in range(5):
            incremental.observe("a", 1.0)
        assert incremental.records_processed == 5


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("abcd"), st.integers(0, 5000)),
        max_size=60,
    )
)
def test_tiered_incremental_equals_batch_property(records):
    """Property: incremental per-record processing gives exactly the
    period-end batch statement, for integer-cent amounts."""
    schedule = TierSchedule([(1000, 0.10), (2500, 0.20), (10000, 0.30)])
    cents_records = [(key, float(amount)) for key, amount in records]
    incremental = IncrementalTieredComputation(schedule)
    for key, amount in cents_records:
        incremental.observe(key, amount)
    assert incremental.statement() == batch_tiered_computation(schedule, cents_records)
