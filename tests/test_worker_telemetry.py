"""Cross-process telemetry: the relay, trace stitching, IPC accounting.

Covers the PR-7 contract from both ends of the process boundary:

* in-process primitives (no spawn): span record compaction and its cap,
  ``Span.to_record`` / ``Tracer.graft`` identity rules, metric
  ``to_deltas`` / ``merge_deltas`` round trips, and the worker entry
  points driven directly against a module-global replica;
* the zero-overhead contract: with observability off (or
  ``relay_telemetry=False``) the process executor submits exactly PR 6's
  ``worker_apply`` payload, byte-identical under pickle — the
  throughput half of that contract is enforced by the E14/E15 gates'
  median/MAD policy in CI, which run with observability off;
* end-to-end spawn tests: stitched traces (worker ``maintain`` spans
  parented under ``shard_apply``, sharing the ingest ``trace_id``),
  JSONL export round trips, the ``ipc_*`` and worker-labeled series,
  crash bundles carrying the failed window's summary, and the
  ``SHOW WORKERS`` CLI view.
"""

import json
import os
import pickle
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ChronicleDatabase, DatabaseConfig
from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import scan
from repro.cli import Session
from repro.errors import ConfigError, EngineError
from repro.obs import runtime as obs_runtime
from repro.obs.core import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.parallel.engine import ProcessShardBackend
from repro.parallel.worker import (
    RELAY_MAX_SPANS,
    WindowTelemetry,
    _compact_spans,
    worker_apply,
    worker_apply_relay,
    worker_install,
)
from repro.sca.summarize import GroupBySummary


@pytest.fixture(autouse=True)
def _clean_runtime():
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


def _process_config(shards=2, **overrides):
    return DatabaseConfig(
        engine="sharded", shards=shards, executor="process", **overrides
    )


def _process_db(shards=2, **overrides):
    db = ChronicleDatabase(config=_process_config(shards, **overrides))
    db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
    chron = db.chronicle("calls")
    db.define_view(
        GroupBySummary(scan(chron), ["caller"], [spec(SUM, "minutes"), spec(COUNT)]),
        name="usage",
    )
    return db


def _windows(db, count=3, batches=6):
    for window in range(count):
        db.ingest(
            "calls",
            [
                [{"caller": (window * batches + i) % 8, "minutes": i + 1}]
                for i in range(batches)
            ],
        )


# ---------------------------------------------------------------------------
# In-process primitives (no worker spawn)
# ---------------------------------------------------------------------------


class TestSpanRecords:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("window_apply", shard="kc0:0") as root:
            with tracer.span("append", group="g"):
                with tracer.span("maintain", view="v1"):
                    pass
                with tracer.span("maintain", view="v2"):
                    pass
        return root

    def test_to_record_omits_ids_and_keeps_structure(self):
        root = self._tree()
        record = root.to_record()
        assert record["name"] == "window_apply"
        assert "span_id" not in record and "trace_id" not in record
        children = record["children"][0]["children"]
        assert [c["name"] for c in children] == ["maintain", "maintain"]
        assert record["duration"] == root.duration

    def test_graft_adopts_parent_identity(self):
        records = [self._tree().to_record()]
        tracer = Tracer()
        with tracer.span("shard_apply", shard="kc0:0") as parent:
            grafted = tracer.graft(parent, records, worker="3")
        root = tracer.last()
        assert root.name == "shard_apply"
        descendants = list(root.walk())[1:]
        assert descendants, "grafted spans must land under the parent"
        assert all(s.trace_id == root.trace_id for s in descendants)
        assert grafted[0].parent_id == root.span_id
        # The worker stamp goes on top-level grafted spans only.
        assert grafted[0].attrs["worker"] == "3"
        assert "worker" not in grafted[0].children[0].attrs
        # Fresh local ids, no collisions with the parent's.
        ids = [s.span_id for s in root.walk()]
        assert len(ids) == len(set(ids))

    def test_compact_spans_caps_and_counts_drops(self):
        tracer = Tracer()
        with tracer.span("window_apply") as root:
            for i in range(10):
                with tracer.span("maintain", view=f"v{i}"):
                    pass
        records, dropped = _compact_spans([root], cap=4)
        kept = [records[0]["name"]] + [
            c["name"] for c in records[0].get("children", ())
        ]
        assert len(kept) == 4
        assert dropped == 7  # 11 spans total, 4 kept
        full, none_dropped = _compact_spans([root], cap=RELAY_MAX_SPANS)
        assert none_dropped == 0
        assert len(full[0]["children"]) == 10


class TestMetricDeltas:
    def test_round_trip_with_extra_labels(self):
        source = MetricsRegistry()
        source.inc("view_maintained_total", 3, view="v", engine="compiled")
        source.set("some_gauge", 7.5, kind="x")
        source.observe("view_maintain_seconds", 0.25, view="v", engine="compiled")
        deltas = source.to_deltas()
        target = MetricsRegistry()
        merged = target.merge_deltas(deltas, shard="kc0:1", worker="0")
        assert merged == 3
        assert (
            target.counter(
                "view_maintained_total",
                view="v",
                engine="compiled",
                shard="kc0:1",
                worker="0",
            ).value
            == 3
        )
        assert target.value("some_gauge", kind="x", shard="kc0:1", worker="0")
        histogram = target.histogram(
            "view_maintain_seconds", view="v", engine="compiled",
            shard="kc0:1", worker="0",
        )
        assert histogram.count == 1 and histogram.sum == pytest.approx(0.25)

    def test_merge_is_additive_for_counters_and_histograms(self):
        source = MetricsRegistry()
        source.inc("c_total", 2, shard="s")
        source.observe("h_seconds", 0.1, shard="s")
        target = MetricsRegistry()
        target.merge_deltas(source.to_deltas())
        target.merge_deltas(source.to_deltas())
        assert target.counter("c_total", shard="s").value == 4
        assert target.histogram("h_seconds", shard="s").count == 2

    def test_none_extra_labels_are_skipped(self):
        source = MetricsRegistry()
        source.inc("c_total", 1)
        target = MetricsRegistry()
        target.merge_deltas(source.to_deltas(), shard="s", worker=None)
        assert target.counter("c_total", shard="s").value == 1


class TestWorkerEntryPoints:
    """Drive the worker module in-process against a real replica."""

    def _install(self, db):
        shard_group = db.shard_groups[0]
        unit = shard_group.units[0]
        label = worker_install(unit.spec())
        return label

    def _window(self, values=((1, 1, 5), (2, 3, 7))):
        # Value tuples carry the chronicle's full schema, including the
        # leading ``sn`` sequence column the shard group stamps on.
        return {"calls": [tuple(v) for v in values]}

    def test_worker_apply_payload_has_no_telemetry(self):
        db = ChronicleDatabase(config=_process_config())
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            db.define_view(
                GroupBySummary(scan(chron), ["caller"], [spec(SUM, "minutes")]),
                name="usage",
            )
            label = self._install(db)
            result = worker_apply(label, self._window(), 1)
            assert len(result) == 4  # PR 6's tuple: items, records, elapsed, stats
            items, records, elapsed, stats = result
            assert records == 2 and elapsed >= 0
            assert not any(
                isinstance(part, WindowTelemetry) for part in result
            )
        finally:
            db.close()

    def test_worker_apply_relay_piggybacks_bounded_telemetry(self):
        db = ChronicleDatabase(config=_process_config())
        try:
            db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
            chron = db.chronicle("calls")
            db.define_view(
                GroupBySummary(scan(chron), ["caller"], [spec(SUM, "minutes")]),
                name="usage",
            )
            label = self._install(db)
            blob = pickle.dumps(
                (self._window(), 1), protocol=pickle.HIGHEST_PROTOCOL
            )
            result_blob, decode_s, encode_s = worker_apply_relay(label, blob)
            assert decode_s >= 0 and encode_s >= 0
            items, records, elapsed, stats, telemetry = pickle.loads(result_blob)
            assert records == 2
            assert isinstance(telemetry, WindowTelemetry)
            assert telemetry.spans, "the window must produce a span tree"
            root = telemetry.spans[0]
            assert root["name"] == "window_apply"
            names = set()

            def collect(record):
                names.add(record["name"])
                for child in record.get("children", ()):
                    collect(child)

            collect(root)
            assert {"window_apply", "append", "maintain"} <= names
            assert len(telemetry.spans) <= RELAY_MAX_SPANS
            assert telemetry.metrics and telemetry.spans_dropped == 0
            # Relaying must not leak the capture handle into the runtime.
            assert obs_runtime.ACTIVE is None
        finally:
            db.close()


# ---------------------------------------------------------------------------
# The zero-overhead contract (payload byte-identity)
# ---------------------------------------------------------------------------


class TestZeroOverheadContract:
    def _capture_submissions(self, db):
        backend = db._maintainer._backend
        captured = []
        original = backend._encode_task

        def recording(task):
            out = original(task)
            captured.append((task, out))
            return out

        backend._encode_task = recording
        return captured

    def test_payload_is_byte_identical_without_observability(self):
        db = _process_db()
        try:
            captured = self._capture_submissions(db)
            _windows(db, count=2)
            assert captured
            for task, (fn, args, ipc_meta) in captured:
                assert fn is worker_apply
                assert ipc_meta is None
                expected = (
                    task.unit.label,
                    {
                        name: [row.values for row in rows]
                        for name, rows in task.event.items()
                    },
                    task.watermark,
                )
                assert pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL) == (
                    pickle.dumps(expected, protocol=pickle.HIGHEST_PROTOCOL)
                )
        finally:
            db.close()

    def test_relay_knob_off_keeps_legacy_payload_even_when_observed(self):
        db = _process_db(relay_telemetry=False)
        obs = db.enable_observability(audit="off")
        try:
            captured = self._capture_submissions(db)
            _windows(db, count=2)
            assert captured
            assert all(fn is worker_apply for _, (fn, _, _) in captured)
            assert all(meta is None for _, (_, _, meta) in captured)
            assert not obs.metrics.series("ipc_bytes_down_total")
        finally:
            obs.uninstall()
            db.close()

    def test_relay_engages_only_with_observability_installed(self):
        backend = ProcessShardBackend(2, relay_telemetry=True)
        try:
            assert not backend._relay_active()
            with obs_runtime.installed(Observability(audit="off")):
                assert backend._relay_active()
            assert not backend._relay_active()
            off = ProcessShardBackend(2, relay_telemetry=False)
            with obs_runtime.installed(Observability(audit="off")):
                assert not off._relay_active()
        finally:
            backend.close()

    def test_config_knob_validates_and_flows(self):
        assert DatabaseConfig().relay_telemetry is True
        config = _process_config(relay_telemetry=False)
        assert config.replace(relay_telemetry=True).relay_telemetry is True
        with pytest.raises(ConfigError, match="relay_telemetry"):
            DatabaseConfig(relay_telemetry="yes")
        db = ChronicleDatabase(config=config)
        try:
            assert db._maintainer._backend.relay_telemetry is False
        finally:
            db.close()


# ---------------------------------------------------------------------------
# End-to-end: stitched traces, IPC series, crash bundles, CLI
# ---------------------------------------------------------------------------


class TestRelayEndToEnd:
    def test_stitched_traces_metrics_and_jsonl(self):
        db = _process_db()
        obs = db.enable_observability(audit="off")
        try:
            _windows(db, count=3)

            # Stitching: the last ingest trace holds worker-side spans,
            # every one sharing the root's trace_id.
            root = obs.tracer.last()
            assert root.name == "ingest"
            window_spans = root.find("window_apply")
            assert window_spans, "worker spans must graft under shard_apply"
            assert root.find("maintain"), "worker maintain spans must arrive"
            assert all(s.trace_id == root.trace_id for s in root.walk())
            for span in window_spans:
                parent = next(
                    s for s in root.walk() if span.parent_id == s.span_id
                )
                assert parent.name == "shard_apply"
                assert "worker" in span.attrs

            # IPC accounting: bytes both directions, four histogram
            # series per shard (encode/decode x down/up), worker gauges.
            metrics = obs.metrics
            for name in ("ipc_bytes_down_total", "ipc_bytes_up_total"):
                series = metrics.series(name)
                assert series and all(i.value > 0 for _, i in series)
                assert all("shard" in labels for labels, _ in series)
            for name in ("ipc_encode_seconds", "ipc_decode_seconds"):
                directions = {
                    labels["direction"] for labels, _ in metrics.series(name)
                }
                assert directions == {"down", "up"}
            workers = {
                labels["worker"]
                for labels, _ in metrics.series("worker_cpu_seconds")
            }
            assert workers, "worker resource gauges must be labeled by slot"
            rss = metrics.series("worker_rss_bytes")
            assert all(i.value > 0 for _, i in rss)

            # Relayed worker metrics arrive with shard+worker labels.
            relayed = [
                labels
                for labels, _ in metrics.series("view_maintained_total")
                if "worker" in labels
            ]
            assert relayed and all("shard" in labels for labels in relayed)

            # JSONL round trip: the exported trace reparses with the
            # worker spans still inside the ingest tree.
            lines = obs.tracer.to_jsonl().strip().splitlines()
            parsed = [json.loads(line) for line in lines]
            ingest_docs = [d for d in parsed if d["name"] == "ingest"]
            assert ingest_docs

            def walk(doc):
                yield doc
                for child in doc.get("children", ()):
                    yield from walk(child)

            stitched = ingest_docs[-1]
            names = [d["name"] for d in walk(stitched)]
            assert "window_apply" in names and "maintain" in names
            assert all(
                d["trace_id"] == stitched["trace_id"] for d in walk(stitched)
            )
        finally:
            obs.uninstall()
            db.close()

    @settings(max_examples=2, deadline=None)
    @given(
        batch_sizes=st.lists(
            st.integers(min_value=1, max_value=5), min_size=1, max_size=5
        ),
        callers=st.integers(min_value=2, max_value=8),
    )
    def test_every_worker_span_shares_its_ingest_trace_id(
        self, batch_sizes, callers
    ):
        # Small example budget: every example spawns worker processes.
        db = _process_db()
        obs = db.enable_observability(audit="off")
        try:
            for index, size in enumerate(batch_sizes):
                db.ingest(
                    "calls",
                    [
                        [{"caller": (index + i) % callers, "minutes": 1 + i}]
                        for i in range(size)
                    ],
                )
            roots = [t for t in obs.tracer.traces() if t.name == "ingest"]
            assert roots
            seen_worker_spans = 0
            for root in roots:
                for span in root.walk():
                    assert span.trace_id == root.trace_id
                    if span.name == "window_apply":
                        seen_worker_spans += 1
            assert seen_worker_spans >= len(roots)
        finally:
            obs.uninstall()
            db.close()

    def test_crash_bundle_carries_window_summary_and_worker_spans(
        self, tmp_path
    ):
        db = _process_db()
        obs = db.enable_observability(audit="off", incident_dir=str(tmp_path))
        try:
            _windows(db, count=1, batches=8)
            backend = db._maintainer._backend
            for pool in backend._pools:
                if pool is not None:
                    for pid in list(pool._processes):
                        os.kill(pid, signal.SIGKILL)
            time.sleep(0.3)
            with pytest.raises(EngineError, match="worker process died"):
                db.ingest(
                    "calls",
                    [[{"caller": c, "minutes": 9}] for c in range(4)],
                )
            bundles = list(tmp_path.glob("incident-*-shard-worker-error.json"))
            assert len(bundles) == 1
            context = json.loads(bundles[0].read_text())["context"]
            window = context["window"]
            assert window is not None, "bundle must carry the failed window"
            assert window["chronicles"].get("calls")
            assert window["records"] >= 1
            assert window["watermark"] >= 0
            assert window["shard"].startswith("kc0:")
            spans = context["worker_spans"]
            assert spans, "bundle must carry the worker's last spans"
            assert spans[0]["name"] == "window_apply"
        finally:
            obs.uninstall()
            db.close()


class TestShowWorkersCli:
    def test_serial_engine_has_no_workers(self):
        session = Session()
        try:
            out = session.execute("SHOW WORKERS")
            assert "engine=serial" in out
        finally:
            session.db.close()

    def test_process_executor_renders_fleet_and_ipc(self):
        session = Session(config=_process_config())
        try:
            session.execute(
                "CREATE CHRONICLE calls (caller INT, minutes INT) RETENTION 0"
            )
            session.execute(
                "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
                "FROM calls GROUP BY caller"
            )
            before = session.execute("SHOW WORKERS")
            assert "executor=process" in before
            assert "relay_telemetry=on" in before
            assert "no worker telemetry" in before
            for i in range(6):
                session.execute(
                    'APPEND calls {"caller": %d, "minutes": %d}' % (i % 3, i)
                )
            out = session.execute("SHOW WORKERS")
            assert "== ipc ==" in out
            assert "shard kc0:" in out and "down " in out and "up " in out
            assert "== workers ==" in out
            assert "rss" in out and "cpu" in out
            assert "slot 0 [ok]" in out
        finally:
            session.db.close()
