"""Tests for repro.relational.tuples.Row."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, Schema
from repro.relational.tuples import Row
from repro.relational.types import INT, SEQ, STR


def schema():
    return Schema.build(("a", "INT"), ("b", "STR"))


def chronicle_schema():
    return Schema(
        [Attribute("sn", SEQ), Attribute("v", INT)], sequence_attribute="sn"
    )


class TestConstruction:
    def test_positional(self):
        row = Row(schema(), [1, "x"])
        assert row["a"] == 1
        assert row["b"] == "x"

    def test_from_mapping(self):
        row = Row.from_mapping(schema(), {"b": "y", "a": 2})
        assert row.values == (2, "y")

    def test_from_mapping_missing(self):
        with pytest.raises(SchemaError):
            Row.from_mapping(schema(), {"a": 1})

    def test_from_mapping_extra(self):
        with pytest.raises(UnknownAttributeError):
            Row.from_mapping(schema(), {"a": 1, "b": "x", "c": 3})

    def test_validation(self):
        with pytest.raises(SchemaError):
            Row(schema(), ["not-int", "x"])

    def test_skip_validation(self):
        row = Row(schema(), ("anything", "goes"), validate=False)
        assert row.values == ("anything", "goes")


class TestAccess:
    def test_getitem_unknown(self):
        with pytest.raises(UnknownAttributeError):
            Row(schema(), [1, "x"])["c"]

    def test_get_with_default(self):
        row = Row(schema(), [1, "x"])
        assert row.get("a") == 1
        assert row.get("zzz", 9) == 9

    def test_at(self):
        assert Row(schema(), [1, "x"]).at(1) == "x"

    def test_as_dict(self):
        assert Row(schema(), [1, "x"]).as_dict() == {"a": 1, "b": "x"}

    def test_sequence_number(self):
        row = Row(chronicle_schema(), [7, 42])
        assert row.sequence_number == 7

    def test_sequence_number_without_seq(self):
        with pytest.raises(SchemaError):
            Row(schema(), [1, "x"]).sequence_number

    def test_iteration_and_len(self):
        row = Row(schema(), [1, "x"])
        assert list(row) == [1, "x"]
        assert len(row) == 2


class TestReshaping:
    def test_project(self):
        row = Row(schema(), [1, "x"]).project(["b"])
        assert row.values == ("x",)
        assert row.schema.names == ("b",)

    def test_concat(self):
        left = Row(schema(), [1, "x"])
        right = Row(Schema.build(("c", "INT")), [3])
        combined_schema = schema().concat(Schema.build(("c", "INT")))
        combined = left.concat(right, combined_schema)
        assert combined.values == (1, "x", 3)

    def test_replace(self):
        row = Row(schema(), [1, "x"]).replace(a=9)
        assert row.values == (9, "x")

    def test_replace_validates(self):
        with pytest.raises(SchemaError):
            Row(schema(), [1, "x"]).replace(a="bad")

    def test_rebind(self):
        other = Schema.build(("p", "INT"), ("q", "STR"))
        row = Row(schema(), [1, "x"]).rebind(other)
        assert row["p"] == 1

    def test_rebind_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Row(schema(), [1, "x"]).rebind(Schema.build(("p", "INT")))


class TestEqualityHash:
    def test_value_equality_across_schemas(self):
        other = Schema.build(("p", "INT"), ("q", "STR"))
        assert Row(schema(), [1, "x"]) == Row(other, [1, "x"])

    def test_inequality(self):
        assert Row(schema(), [1, "x"]) != Row(schema(), [2, "x"])

    def test_set_semantics(self):
        rows = {Row(schema(), [1, "x"]), Row(schema(), [1, "x"])}
        assert len(rows) == 1
