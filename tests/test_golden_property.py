"""The golden invariant, property-tested.

For randomly generated chronicle-algebra expressions, random summaries,
and random append streams: the incrementally maintained persistent view
must equal from-scratch recomputation over the fully stored chronicles
(and every delta must carry only fresh sequence numbers — Theorem 4.1).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import AVG, COUNT, MAX, MIN, SUM, spec
from repro.algebra.ast import Node, scan
from repro.core.group import ChronicleGroup
from repro.relational.predicate import Or, attr_cmp, attr_eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary, ProjectSummary
from repro.sca.view import PersistentView, evaluate_summary

# ---------------------------------------------------------------------------
# Expression generator
#
# All generated expressions keep the base chronicle schema
# (sn, acct, mins) so unions/differences/joins stay type-compatible.
# ---------------------------------------------------------------------------

ACCT_RANGE = 4
MINS_RANGE = 10


@st.composite
def ca_expressions(draw, depth=2):
    """A function (calls, fees, customers) -> CA node of schema
    (sn, acct, mins[, state])."""
    if depth == 0:
        which = draw(st.sampled_from(["calls", "fees"]))
        return lambda calls, fees, customers: scan(calls if which == "calls" else fees)
    op = draw(
        st.sampled_from(
            ["select", "select_or", "union", "difference", "base", "base"]
        )
    )
    if op == "base":
        return draw(ca_expressions(depth=0))
    if op in ("select", "select_or"):
        child = draw(ca_expressions(depth=depth - 1))
        attr = draw(st.sampled_from(["acct", "mins"]))
        operator = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        bound = draw(st.integers(0, MINS_RANGE))
        if op == "select":
            predicate = attr_cmp(attr, operator, bound)
        else:
            bound2 = draw(st.integers(0, ACCT_RANGE))
            predicate = Or(attr_cmp(attr, operator, bound), attr_eq("acct", bound2))
        return lambda calls, fees, customers, c=child, p=predicate: c(
            calls, fees, customers
        ).select(p)
    left = draw(ca_expressions(depth=depth - 1))
    right = draw(ca_expressions(depth=depth - 1))
    if op == "union":
        return lambda calls, fees, customers, l=left, r=right: l(
            calls, fees, customers
        ).union(r(calls, fees, customers))
    return lambda calls, fees, customers, l=left, r=right: l(
        calls, fees, customers
    ).minus(r(calls, fees, customers))


@st.composite
def summaries(draw, with_relation):
    """A function (node, customers) -> Summary over the node."""
    kind = draw(st.sampled_from(["project", "group", "group_global"]))
    join_relation = with_relation and draw(st.booleans())

    def build(node: Node, customers: Relation):
        if join_relation:
            node = node.keyjoin(customers, [("acct", "acct")])
            group_attr = draw(st.sampled_from(["acct", "state"]))
        else:
            group_attr = "acct"
        if kind == "project":
            names = ["acct", "mins"] if not join_relation else ["acct", "state"]
            return ProjectSummary(node, names)
        aggs = [spec(SUM, "mins"), spec(COUNT), spec(MIN, "mins"), spec(MAX, "mins"),
                spec(AVG, "mins")]
        chosen = draw(
            st.lists(st.sampled_from(range(len(aggs))), min_size=1, max_size=3, unique=True)
        )
        selected = [aggs[i] for i in chosen]
        if kind == "group_global":
            return GroupBySummary(node, [], selected)
        return GroupBySummary(node, [group_attr], selected)

    return build


events_strategy = st.lists(
    st.tuples(
        st.sampled_from(["calls", "fees", "both"]),
        st.lists(
            st.tuples(st.integers(0, ACCT_RANGE - 1), st.integers(0, MINS_RANGE)),
            min_size=1,
            max_size=3,
        ),
    ),
    min_size=1,
    max_size=12,
)


def run_scenario(expression_factory, summary_factory, events):
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    customers = Relation(
        "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
    )
    for acct in range(ACCT_RANGE):
        customers.insert({"acct": acct, "state": "NJ" if acct % 2 else "NY"})
    node = expression_factory(calls, fees, customers)
    summary = summary_factory(node, customers)
    view = PersistentView("v", summary)
    attach_view(view, group)
    for target, records in events:
        payload = [{"acct": acct, "mins": mins} for acct, mins in records]
        if target == "both":
            group.append_simultaneous({"calls": payload, "fees": payload})
        else:
            group.append(target, payload)
    incremental = sorted(tuple(r.values) for r in view)
    batch = sorted(tuple(r.values) for r in evaluate_summary(summary))
    assert incremental == batch


@settings(max_examples=120, deadline=None)
@given(ca_expressions(), summaries(with_relation=True), events_strategy)
def test_incremental_equals_batch(expression_factory, summary_factory, events):
    run_scenario(expression_factory, summary_factory, events)


@settings(max_examples=60, deadline=None)
@given(ca_expressions(depth=3), summaries(with_relation=False), events_strategy)
def test_incremental_equals_batch_deep_expressions(
    expression_factory, summary_factory, events
):
    run_scenario(expression_factory, summary_factory, events)


@settings(max_examples=60, deadline=None)
@given(events_strategy)
def test_seq_join_incremental_equals_batch(events):
    """The sequence-number equijoin, exercised with simultaneous appends."""
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    customers = Relation(
        "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
    )
    node = scan(calls).join(scan(fees))
    summary = GroupBySummary(node, ["acct"], [spec(COUNT), spec(SUM, "r_mins")])
    view = PersistentView("v", summary)
    attach_view(view, group)
    for target, records in events:
        payload = [{"acct": acct, "mins": mins} for acct, mins in records]
        if target == "both":
            group.append_simultaneous({"calls": payload, "fees": payload})
        else:
            group.append(target, payload)
    incremental = sorted(tuple(r.values) for r in view)
    batch = sorted(tuple(r.values) for r in evaluate_summary(summary))
    assert incremental == batch
