"""Tests for the baselines: full recomputation (Prop 3.1's IM-C^k
representative) and the procedural trigger-style updater."""

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import ChronicleProduct, scan
from repro.baselines.recompute import RecomputeMaintainer
from repro.baselines.trigger import BuggyTriggerUpdater, TriggerStyleUpdater
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.core.group import ChronicleGroup
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary, ProjectSummary
from repro.sca.view import PersistentView


def build(retention=None):
    group = ChronicleGroup("g")
    calls = group.create_chronicle(
        "calls", [("acct", "INT"), ("mins", "INT")], retention=retention
    )
    return group, calls


class TestRecomputeMaintainer:
    def test_matches_incremental_view(self):
        group, calls = build()
        summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins"), spec(COUNT)])
        view = PersistentView("v", summary)
        attach_view(view, group)
        maintainer = RecomputeMaintainer(summary)
        maintainer.attach(group)
        for i in range(40):
            group.append(calls, {"acct": i % 5, "mins": i})
        assert sorted(r.values for r in maintainer) == sorted(r.values for r in view)
        assert maintainer.recomputation_count == 40

    def test_projection_summary(self):
        group, calls = build()
        summary = ProjectSummary(scan(calls), ["acct"])
        maintainer = RecomputeMaintainer(summary)
        maintainer.attach(group)
        for acct in (1, 2, 1):
            group.append(calls, {"acct": acct, "mins": 0})
        assert sorted(r["acct"] for r in maintainer) == [1, 2]

    def test_handles_outside_ca_expressions(self):
        group, calls = build()
        fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
        summary = GroupBySummary(
            ChronicleProduct(scan(calls), scan(fees)), ["acct"], [spec(COUNT)]
        )
        maintainer = RecomputeMaintainer(summary)
        maintainer.attach(group)
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(fees, {"acct": 1, "mins": 5})
        assert list(maintainer)[0]["count"] == 1

    def test_cost_grows_with_chronicle_size(self):
        """The Prop 3.1 point, counter-based: per-append recomputation
        work grows with |C| while the delta engine's stays flat."""
        group, calls = build()
        summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        maintainer = RecomputeMaintainer(summary)

        def cost_of_append_at_size(size):
            while calls.appended_count < size:
                group.append(calls, {"acct": 1, "mins": 1})
            with GLOBAL_COUNTERS.measure() as cost:
                group.append(calls, {"acct": 1, "mins": 1})
                maintainer.recompute()
            return cost["tuple_op"] + cost["chronicle_read"]

        small = cost_of_append_at_size(50)
        large = cost_of_append_at_size(500)
        assert large > small * 5

    def test_result_property_recomputes_lazily(self):
        group, calls = build()
        summary = GroupBySummary(scan(calls), ["acct"], [spec(COUNT)])
        maintainer = RecomputeMaintainer(summary)
        group.append(calls, {"acct": 1, "mins": 5})
        assert len(maintainer.result) == 1
        assert maintainer.recomputation_count == 1


class TestTriggerStyleUpdater:
    def procedure(self, fields, row):
        fields["balance"] += row["mins"]
        fields["transactions"] += 1

    def make(self, group, updater_cls=TriggerStyleUpdater, **kwargs):
        updater = updater_cls(
            "acct",
            lambda: {"balance": 0, "transactions": 0},
            self.procedure,
            **kwargs,
        )
        updater.attach(group)
        return updater

    def test_summary_fields_track_stream(self):
        group, calls = build(retention=0)
        updater = self.make(group)
        group.append(calls, {"acct": 1, "mins": 10})
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(calls, {"acct": 2, "mins": 7})
        assert updater.fields(1) == {"balance": 15, "transactions": 2}
        assert updater.value(2, "balance") == 7
        assert updater.fields(99) is None
        assert len(updater) == 2
        assert updater.processed_count == 3

    def test_agrees_with_declarative_view(self):
        group, calls = build()
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins"), spec(COUNT)])
        )
        attach_view(view, group)
        updater = self.make(group)
        for i in range(60):
            group.append(calls, {"acct": i % 4, "mins": i})
        for acct in range(4):
            assert updater.value(acct, "balance") == view.value((acct,), "sum_mins")

    def test_buggy_updater_diverges(self):
        """The Chemical Bank scenario: the hand-written updater silently
        double-applies updates; the declarative view stays correct."""
        group, calls = build()
        view = PersistentView(
            "v", GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")])
        )
        attach_view(view, group)
        buggy = self.make(group, BuggyTriggerUpdater, double_apply_every=10)
        for i in range(100):
            group.append(calls, {"acct": 1, "mins": 10})
        correct = view.value((1,), "sum_mins")
        assert correct == 1000
        assert buggy.value(1, "balance") > correct  # bounced checks ahead

    def test_buggy_updater_validation(self):
        with pytest.raises(ValueError):
            BuggyTriggerUpdater("acct", dict, lambda f, r: None, double_apply_every=0)
