"""Tests for derived queries over persistent views (repro.views.derived)."""

import pytest

from repro.core.database import ChronicleDatabase
from repro.errors import ViewError
from repro.relational.predicate import attr_cmp, attr_eq
from repro.relational.schema import Schema
from repro.relational.tuples import Row
from repro.views.derived import ViewQuery, top_k


@pytest.fixture
def db():
    database = ChronicleDatabase()
    database.create_chronicle(
        "calls", [("caller", "INT"), ("minutes", "INT")], retention=0
    )
    database.create_relation(
        "subscribers", [("number", "INT"), ("state", "STR")], key=["number"]
    )
    for number, state in ((1, "NJ"), (2, "NY"), (3, "NJ")):
        database.relation("subscribers").insert({"number": number, "state": state})
    database.define_view(
        "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total "
        "FROM calls GROUP BY caller"
    )
    for caller, minutes in ((1, 10), (2, 35), (3, 20), (1, 5)):
        database.append("calls", {"caller": caller, "minutes": minutes})
    return database


class TestCombinators:
    def test_where(self, db):
        rows = list(ViewQuery(db.view("usage")).where(attr_cmp("total", ">", 15)))
        assert sorted(r["caller"] for r in rows) == [2, 3]

    def test_project(self, db):
        rows = list(ViewQuery(db.view("usage")).project(["caller"]))
        assert sorted(r["caller"] for r in rows) == [1, 2, 3]
        assert rows[0].schema.names == ("caller",)

    def test_join_with_relation(self, db):
        query = ViewQuery(db.view("usage")).join(
            db.relation("subscribers"), [("caller", "number")]
        )
        by_caller = {r["caller"]: r["state"] for r in query}
        assert by_caller == {1: "NJ", 2: "NY", 3: "NJ"}

    def test_order_by_and_limit(self, db):
        query = (
            ViewQuery(db.view("usage")).order_by("total", descending=True).limit(2)
        )
        assert query.values("caller") == [2, 3]

    def test_limit_validation(self, db):
        with pytest.raises(ViewError):
            ViewQuery(db.view("usage")).limit(-1)

    def test_chaining_is_lazy_and_live(self, db):
        query = ViewQuery(db.view("usage")).where(attr_cmp("total", ">", 30))
        assert query.values("caller") == [2]
        db.append("calls", {"caller": 3, "minutes": 100})  # 3 crosses 30
        assert sorted(query.values("caller")) == [2, 3]  # re-evaluated live

    def test_map_rows(self, db):
        schema = Schema.build(("caller", "INT"), ("hours", "FLOAT"))
        query = ViewQuery(db.view("usage")).map_rows(
            lambda row: Row(schema, (row["caller"], row["total"] / 60)), schema
        )
        by_caller = {r["caller"]: r["hours"] for r in query}
        assert by_caller[2] == pytest.approx(35 / 60)

    def test_first_and_len(self, db):
        query = ViewQuery(db.view("usage")).order_by("total", descending=True)
        assert query.first()["caller"] == 2
        assert len(query) == 3

    def test_first_on_empty(self, db):
        query = ViewQuery(db.view("usage")).where(attr_eq("caller", 99))
        assert query.first() is None

    def test_query_over_query(self, db):
        inner = ViewQuery(db.view("usage")).where(attr_cmp("total", ">", 10))
        outer = ViewQuery(inner).order_by("total")
        assert outer.values("caller") == [1, 3, 2]


class TestTopK:
    def test_top_k(self, db):
        rows = top_k(db.view("usage"), "total", 2)
        assert [r["caller"] for r in rows] == [2, 3]

    def test_top_k_ascending(self, db):
        rows = top_k(db.view("usage"), "total", 1, descending=False)
        assert rows[0]["caller"] == 1

    def test_top_k_respects_having(self, db):
        heavy = db.define_view(
            "DEFINE VIEW heavy AS SELECT caller, SUM(minutes) AS total "
            "FROM calls GROUP BY caller HAVING total > 15"
        )
        # heavy starts empty (defined after appends on an unstored
        # chronicle); feed it some more traffic.
        db.append("calls", {"caller": 2, "minutes": 30})
        db.append("calls", {"caller": 1, "minutes": 1})
        rows = top_k(heavy, "total", 5)
        assert [r["caller"] for r in rows] == [2]  # caller 1 hidden by HAVING
