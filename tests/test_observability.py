"""Tests for the observability subsystem (repro.obs).

Covers the tracer (span nesting, counter attribution), the metrics
registry (bucket math, Prometheus exposition golden text), the
no-chronicle-access auditor (including a provoked violation), the
runtime install/uninstall discipline, and — the property the whole layer
exists to keep honest — that disabled observability mutates nothing.
"""

import io
import json
import threading
import warnings

import pytest

from repro import ChronicleDatabase, DatabaseConfig
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.errors import MaintenanceAuditError, ObservabilityError
from repro.obs import (
    AuditWarning,
    Auditor,
    Histogram,
    MetricsRegistry,
    Observability,
    Tracer,
)
from repro.obs import runtime as obs_runtime


@pytest.fixture(autouse=True)
def _clean_runtime():
    """No test may leak an installed Observability into the next."""
    assert obs_runtime.ACTIVE is None
    yield
    obs_runtime.ACTIVE = None


def make_db(**kwargs):
    db = ChronicleDatabase(config=DatabaseConfig(**kwargs))
    db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")], retention=0)
    db.define_view(
        "DEFINE VIEW usage AS "
        "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
    )
    return db


# ---------------------------------------------------------------------------
# CostCounters.scope (satellite: thread-safe scoped counting)
# ---------------------------------------------------------------------------


class TestCounterScopes:
    def test_scope_captures_only_inside(self):
        GLOBAL_COUNTERS.count("tuple_op")
        with GLOBAL_COUNTERS.scope() as scoped:
            GLOBAL_COUNTERS.count("tuple_op", 3)
        GLOBAL_COUNTERS.count("tuple_op")
        assert scoped.counts["tuple_op"] == 3

    def test_scopes_nest_additively(self):
        with GLOBAL_COUNTERS.scope() as outer:
            GLOBAL_COUNTERS.count("index_probe")
            with GLOBAL_COUNTERS.scope() as inner:
                GLOBAL_COUNTERS.count("index_probe", 2)
            GLOBAL_COUNTERS.count("index_probe")
        assert inner.counts["index_probe"] == 2
        assert outer.counts["index_probe"] == 4

    def test_scope_still_feeds_global_totals(self):
        before = GLOBAL_COUNTERS.counts["aggregate_step"]
        with GLOBAL_COUNTERS.scope():
            GLOBAL_COUNTERS.count("aggregate_step", 5)
        assert GLOBAL_COUNTERS.counts["aggregate_step"] == before + 5

    def test_scopes_are_thread_isolated(self):
        seen = {}

        def other_thread():
            with GLOBAL_COUNTERS.scope() as mine:
                GLOBAL_COUNTERS.count("view_read", 7)
                seen["other"] = mine.counts["view_read"]

        with GLOBAL_COUNTERS.scope() as ours:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
            GLOBAL_COUNTERS.count("view_read")
        assert seen["other"] == 7
        assert ours.counts["view_read"] == 1  # the other thread's 7 stayed out

    def test_disabled_counting_skips_scopes(self):
        with GLOBAL_COUNTERS.scope() as scoped:
            with GLOBAL_COUNTERS.disabled():
                GLOBAL_COUNTERS.count("tuple_op", 9)
        assert scoped.counts["tuple_op"] == 0


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        registry.inc("events_total", 2, view="v")
        registry.inc("events_total", view="v")
        assert registry.value("events_total", view="v") == 3
        with pytest.raises(ValueError):
            registry.counter("events_total", view="v").inc(-1)

    def test_gauge_set_and_move(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rows")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert registry.value("rows") == 13

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.inc("m_total", view="v", engine="e")
        registry.inc("m_total", engine="e", view="v")
        assert registry.value("m_total", engine="e", view="v") == 2

    def test_histogram_bucket_math(self):
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            h.observe(value)
        # bisect_left: <=1.0 -> bucket 0, (1,5] -> 1, (5,10] -> 2, +Inf -> 3
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.cumulative() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(111.5)
        assert h.quantile(0.0) <= 1.0
        # rank 2.5 against cumulative [2, 3, 4] lands in the (1, 5] bucket
        assert h.quantile(0.5) == 5.0
        assert h.quantile(1.0) == float("inf")

    def test_histogram_median_bound(self):
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.6, 0.7, 7.0):
            h.observe(value)
        assert h.quantile(0.5) == 1.0

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_as_dict_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("a_total", 4, k="x")
        registry.observe("lat_seconds", 0.2)
        data = json.loads(registry.to_json())
        assert data["a_total"]["series"]["k=x"] == 4
        assert data["lat_seconds"]["series"][""]["count"] == 1

    def test_prometheus_export_golden(self):
        registry = MetricsRegistry()
        registry.counter(
            "view_maintained_total", help="Views maintained.", view="v0", engine="compiled"
        ).inc(3)
        registry.gauge("registered_views").set(2)
        h = registry.histogram("append_seconds", buckets=(0.001, 0.01), group="g")
        h.observe(0.0005)
        h.observe(0.5)
        expected = (
            "# TYPE append_seconds histogram\n"
            'append_seconds_bucket{group="g",le="0.001"} 1\n'
            'append_seconds_bucket{group="g",le="0.01"} 1\n'
            'append_seconds_bucket{group="g",le="+Inf"} 2\n'
            'append_seconds_sum{group="g"} 0.5005\n'
            'append_seconds_count{group="g"} 2\n'
            "# TYPE registered_views gauge\n"
            "registered_views 2\n"
            "# HELP view_maintained_total Views maintained.\n"
            "# TYPE view_maintained_total counter\n"
            'view_maintained_total{engine="compiled",view="v0"} 3\n'
        )
        assert registry.to_prometheus() == expected

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("a_total")
        registry.reset()
        assert registry.value("a_total") is None
        assert registry.as_dict() == {}


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_and_attribution(self):
        tracer = Tracer()
        with tracer.span("append", group="g") as root:
            with tracer.span("maintain", view="v") as maintain:
                with tracer.span("delta", operator="Select"):
                    GLOBAL_COUNTERS.count("tuple_op", 2)
                GLOBAL_COUNTERS.count("index_lookup")
        assert [s.name for s in root.walk()] == ["append", "maintain", "delta"]
        assert root.find("delta")[0].counters == {"tuple_op": 2}
        # Parents include their children's counts (scopes nest additively).
        assert maintain.counters == {"tuple_op": 2, "index_lookup": 1}
        assert root.counters == {"tuple_op": 2, "index_lookup": 1}
        assert root.duration >= maintain.duration

    def test_only_roots_enter_the_ring(self):
        tracer = Tracer()
        with tracer.span("append"):
            with tracer.span("maintain"):
                pass
        assert tracer.completed_count == 1
        assert [s.name for s in tracer.traces()] == ["append"]

    def test_ring_capacity_bounds_memory(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            with tracer.span("append", n=i):
                pass
        traces = tracer.traces()
        assert len(traces) == 3
        assert [s.attrs["n"] for s in traces] == [7, 8, 9]
        assert tracer.completed_count == 10
        assert tracer.last().attrs["n"] == 9
        assert [s.attrs["n"] for s in tracer.traces(2)] == [8, 9]

    def test_on_span_end_fires_for_every_span(self):
        names = []
        tracer = Tracer(on_span_end=lambda s: names.append(s.name))
        with tracer.span("append"):
            with tracer.span("maintain"):
                pass
        assert names == ["maintain", "append"]  # inner finishes first

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("append", group="g"):
            with tracer.span("maintain", view="v"):
                GLOBAL_COUNTERS.count("tuple_op")
        line = tracer.to_jsonl().strip()
        record = json.loads(line)
        assert record["name"] == "append"
        assert record["children"][0]["attrs"] == {"view": "v"}
        assert record["children"][0]["counters"] == {"tuple_op": 1}

        path = str(tmp_path / "traces.jsonl")
        assert tracer.export_jsonl(path) == 1
        with open(path) as handle:
            assert json.loads(handle.readline())["name"] == "append"

        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        assert buffer.getvalue() == tracer.to_jsonl()

    def test_format_renders_tree(self):
        tracer = Tracer()
        with tracer.span("append", group="g"):
            with tracer.span("maintain", view="v"):
                pass
        text = tracer.last().format()
        lines = text.splitlines()
        assert lines[0].startswith("append [group=g]")
        assert lines[1].startswith("  maintain [view=v]")

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


# ---------------------------------------------------------------------------
# Auditor
# ---------------------------------------------------------------------------


class TestAuditor:
    def _violating_span(self, tracer):
        with tracer.span("maintain", view="v", engine="compiled") as span:
            GLOBAL_COUNTERS.count("chronicle_read", 2)
        return span

    def test_warn_mode_warns_and_records(self):
        registry = MetricsRegistry()
        auditor = Auditor(mode="warn", metrics=registry)
        tracer = Tracer()
        span = self._violating_span(tracer)
        with pytest.warns(AuditWarning, match="no-chronicle-access"):
            found = auditor.check_span(span)
        assert [v.rule for v in found] == ["no-chronicle-access"]
        assert found[0].observed == 2
        assert registry.value("audit_violations_total", rule="no-chronicle-access") == 1
        assert auditor.summary() == {
            "mode": "warn",
            "checked_spans": 1,
            "violations": 1,
        }

    def test_raise_mode_raises(self):
        auditor = Auditor(mode="raise")
        span = self._violating_span(Tracer())
        with pytest.raises(MaintenanceAuditError, match="no-chronicle-access"):
            auditor.check_span(span)

    def test_off_mode_ignores(self):
        auditor = Auditor(mode="off")
        span = self._violating_span(Tracer())
        assert auditor.check_span(span) == []
        assert auditor.summary()["checked_spans"] == 0

    def test_clean_span_passes(self):
        auditor = Auditor(mode="raise")
        tracer = Tracer()
        with tracer.span("maintain", view="v") as span:
            GLOBAL_COUNTERS.count("index_probe", 3)
        assert auditor.check_span(span) == []

    def test_view_read_limit(self):
        auditor = Auditor(mode="raise", view_read_limit=1)
        tracer = Tracer()
        with tracer.span("maintain", view="v") as span:
            GLOBAL_COUNTERS.count("view_read", 1)
        assert auditor.check_span(span) == []
        with tracer.span("maintain", view="v") as span:
            GLOBAL_COUNTERS.count("view_read", 2)
        with pytest.raises(MaintenanceAuditError, match="bounded-view-read"):
            auditor.check_span(span)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ObservabilityError):
            Auditor(mode="loud")


# ---------------------------------------------------------------------------
# Runtime install discipline
# ---------------------------------------------------------------------------


class TestRuntime:
    def test_install_uninstall(self):
        obs = Observability()
        assert not obs.installed
        obs.install()
        assert obs_runtime.ACTIVE is obs and obs.installed
        obs.uninstall()
        assert obs_runtime.ACTIVE is None

    def test_uninstall_is_owner_checked(self):
        first, second = Observability(), Observability()
        first.install()
        second.uninstall()  # not installed: must not evict `first`
        assert obs_runtime.ACTIVE is first
        first.uninstall()

    def test_installed_contextmanager_restores(self):
        outer, inner = Observability(), Observability()
        with obs_runtime.installed(outer):
            with obs_runtime.installed(inner):
                assert obs_runtime.ACTIVE is inner
            assert obs_runtime.ACTIVE is outer
        assert obs_runtime.ACTIVE is None

    def test_audit_mode_forces_tracing(self):
        obs = Observability(trace=False, audit="warn")
        assert obs.trace
        obs = Observability(trace=False, audit="off")
        assert not obs.trace and not obs.trace_operators


# ---------------------------------------------------------------------------
# End-to-end: the database under observation
# ---------------------------------------------------------------------------


class TestDatabaseIntegration:
    def test_every_append_trace_shows_no_chronicle_access(self):
        """The paper's no-access rule, observed live on a real workload."""
        db = make_db()
        db.define_view(
            "DEFINE VIEW minutes_by_caller AS "
            "SELECT caller, COUNT(*) AS calls FROM calls GROUP BY caller"
        )
        with db.enable_observability(audit="raise"):
            for i in range(20):
                db.append("calls", {"caller": i % 4, "minutes": i})
            obs = db.observability
            traces = obs.tracer.traces()
            assert len(traces) == 20
            maintains = [m for t in traces for m in t.find("maintain")]
            assert len(maintains) == 40  # two views per append
            for span in maintains:
                assert span.counters.get("chronicle_read", 0) == 0
            assert obs.auditor.checked_spans == 40
            assert obs.auditor.summary()["violations"] == 0
        assert obs_runtime.ACTIVE is None

    def test_span_tree_shape_compiled(self):
        db = make_db(compile_views=True)
        with db.enable_observability():
            db.append("calls", {"caller": 1, "minutes": 5})
            trace = db.observability.tracer.last()
        assert trace.name == "append"
        assert [s.name for s in trace.children] == ["prefilter", "maintain"]
        maintain = trace.find("maintain")[0]
        assert maintain.attrs["engine"] == "compiled"
        assert maintain.attrs["view"] == "usage"
        assert maintain.attrs["rows"] == 1
        assert [s.attrs["engine"] for s in trace.find("delta")] == ["compiled"]

    def test_span_tree_identical_across_engines(self):
        """Compiled and interpreted maintenance emit the same span model."""
        shapes = {}
        for compiled in (True, False):
            db = make_db(compile_views=compiled)
            with db.enable_observability():
                db.append("calls", {"caller": 1, "minutes": 5})
                trace = db.observability.tracer.last()
            engine = "compiled" if compiled else "interpreted"
            assert trace.find("maintain")[0].attrs["engine"] == engine
            shapes[engine] = [
                (s.name, s.attrs.get("view"), s.attrs.get("rows"))
                for s in trace.walk()
            ]
        assert shapes["compiled"] == shapes["interpreted"]

    def test_metrics_accumulate_per_append(self):
        db = make_db()
        with db.enable_observability():
            for i in range(3):
                db.append("calls", {"caller": 1, "minutes": i})
            metrics = db.observability.metrics
        assert metrics.value("append_events_total", group="default") == 3
        assert metrics.value("chronicle_appends_total", chronicle="calls") == 3
        assert (
            metrics.value("view_maintained_total", view="usage", engine="compiled")
            == 3
        )
        hist = metrics.value("view_maintain_seconds", view="usage", engine="compiled")
        assert hist["count"] == 3
        assert metrics.value("view_prefilter_total", outcome="miss") == 3
        assert metrics.value("cost_tuple_op_total", group="default") >= 3

    def test_registry_stats_surface_engine_and_prefilter(self):
        db = make_db()
        db.create_chronicle("other", [("x", "INT")], retention=0)
        db.define_view(
            "DEFINE VIEW xs AS SELECT x, COUNT(*) AS n FROM other GROUP BY x"
        )
        db.append("calls", {"caller": 1, "minutes": 5})
        stats = db.registry.stats
        assert stats["events"] == 1
        # `xs` reads `other` only: the dependency index keeps it out of
        # the candidate set entirely, so one candidate and no prefilter hit.
        assert stats["candidate_views"] == 1
        assert stats["maintained_views"] == 1
        assert stats["compiled_maintained"] == 1
        assert stats["interpreted_maintained"] == 0
        assert stats["prefilter_hits"] + stats["prefilter_misses"] == 1

    def test_auditor_catches_injected_chronicle_read(self):
        """A maintenance path that sneaks a chronicle read must be caught."""
        db = make_db()
        view = db.view("usage")
        original = view.apply_delta

        def leaky(delta):
            GLOBAL_COUNTERS.count("chronicle_read")  # the smuggled read
            return original(delta)

        view.apply_delta = leaky
        with db.enable_observability(audit="raise"):
            with pytest.raises(MaintenanceAuditError, match="no-chronicle-access"):
                db.append("calls", {"caller": 1, "minutes": 5})
            assert db.observability.auditor.summary()["violations"] == 1

    def test_warn_mode_keeps_appends_flowing(self):
        db = make_db()
        view = db.view("usage")
        original = view.apply_delta

        def leaky(delta):
            GLOBAL_COUNTERS.count("chronicle_read")
            return original(delta)

        view.apply_delta = leaky
        with db.enable_observability(audit="warn"):
            with pytest.warns(AuditWarning):
                db.append("calls", {"caller": 1, "minutes": 5})
        assert db.view_value("usage", (1,), "total") == 5

    def test_snapshot_shape(self):
        db = make_db()
        with db.enable_observability():
            db.append("calls", {"caller": 1, "minutes": 5})
            snap = db.observability.snapshot()
        assert snap["audit"]["checked_spans"] == 1
        assert snap["traces"]["completed"] == 1
        assert "append_events_total" in snap["metrics"]

    def test_disable_observability(self):
        db = make_db()
        db.enable_observability()
        assert obs_runtime.ACTIVE is db.observability
        db.disable_observability()
        assert obs_runtime.ACTIVE is None


# ---------------------------------------------------------------------------
# Disabled mode: the zero-cost contract
# ---------------------------------------------------------------------------


class TestDisabledMode:
    def test_uninstalled_observability_sees_nothing(self):
        """With no installed handle, appends mutate no obs state at all."""
        obs = Observability()  # constructed but never installed
        db = make_db()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any AuditWarning would fail
            for i in range(5):
                db.append("calls", {"caller": 1, "minutes": i})
        assert obs.tracer.completed_count == 0
        assert obs.tracer.traces() == []
        assert obs.metrics.as_dict() == {}
        assert obs.auditor.checked_spans == 0
        assert db.view_value("usage", (1,), "total") == 10

    def test_append_results_identical_with_and_without(self):
        observed, plain = make_db(), make_db()
        with observed.enable_observability():
            for i in range(10):
                observed.append("calls", {"caller": i % 3, "minutes": i})
        for i in range(10):
            plain.append("calls", {"caller": i % 3, "minutes": i})
        for caller in range(3):
            assert observed.view_value("usage", (caller,), "total") == plain.view_value(
                "usage", (caller,), "total"
            )

    def test_no_scope_overhead_when_disabled(self):
        """The tracer's counter scopes are fully unwound after each event."""
        db = make_db()
        with db.enable_observability():
            db.append("calls", {"caller": 1, "minutes": 5})
        assert GLOBAL_COUNTERS._scopes == 0
        assert getattr(GLOBAL_COUNTERS._local, "stack", []) == []


# ---------------------------------------------------------------------------
# Satellites: per-view audit counter, per-view registry stats
# ---------------------------------------------------------------------------


class TestAuditorViolationsMetric:
    def test_warn_mode_violation_shows_in_metrics_by_view(self):
        """Warn-mode failures must be scrapeable, labeled by view and mode."""
        db = make_db()
        view = db.view("usage")
        original = view.apply_delta

        def leaky(delta):
            GLOBAL_COUNTERS.count("chronicle_read")
            return original(delta)

        view.apply_delta = leaky
        with db.enable_observability(audit="warn"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", AuditWarning)
                db.append("calls", {"caller": 1, "minutes": 5})
                db.append("calls", {"caller": 2, "minutes": 3})
            metrics = db.observability.metrics
            assert metrics.value("auditor_violations_total", view="usage", mode="warn") == 2
            # The per-rule counter keeps its original shape alongside.
            assert metrics.value("audit_violations_total", rule="no-chronicle-access") == 2
            prometheus = metrics.to_prometheus()
        assert 'auditor_violations_total{mode="warn",view="usage"} 2' in prometheus

    def test_clean_run_emits_no_violation_series(self):
        db = make_db()
        with db.enable_observability(audit="warn"):
            db.append("calls", {"caller": 1, "minutes": 5})
            assert db.observability.metrics.value(
                "auditor_violations_total", view="usage", mode="warn"
            ) is None


class TestPerViewRegistryStats:
    def test_stats_gain_per_view_under_observability(self):
        db = make_db()
        db.define_view(
            "DEFINE VIEW talkers AS SELECT caller, COUNT(*) AS n "
            "FROM calls GROUP BY caller"
        )
        assert "per_view" not in db.registry.stats  # nothing observed yet
        with db.enable_observability(audit="off"):
            db.append("calls", {"caller": 1, "minutes": 5})
            db.append("calls", {"caller": 1, "minutes": 2})
        per_view = db.registry.stats["per_view"]
        assert per_view["usage"]["spans"] == 2
        assert per_view["talkers"]["spans"] == 2
        assert per_view["usage"]["last_append_seconds"] > 0.0

    def test_uninstrumented_appends_do_not_count(self):
        db = make_db()
        db.append("calls", {"caller": 1, "minutes": 5})
        assert "per_view" not in db.registry.stats
        with db.enable_observability(audit="off"):
            db.append("calls", {"caller": 1, "minutes": 2})
        assert db.registry.stats["per_view"]["usage"]["spans"] == 1

    def test_per_view_stats_in_interpreted_engine(self):
        db = make_db(compile_views=False)
        with db.enable_observability(audit="off"):
            db.append("calls", {"caller": 1, "minutes": 5})
        stats = db.registry.stats
        assert stats["interpreted_maintained"] == 1
        assert stats["per_view"]["usage"]["spans"] == 1

    def test_stats_copy_is_isolated(self):
        db = make_db()
        with db.enable_observability(audit="off"):
            db.append("calls", {"caller": 1, "minutes": 5})
        stats = db.registry.stats
        stats["per_view"]["usage"]["spans"] = 999
        assert db.registry.stats["per_view"]["usage"]["spans"] == 1
