"""Tests for delta propagation (the Theorem 4.1 proof rules).

The master check: accumulating every append's delta must reproduce the
batch evaluation of the expression over the fully stored chronicles, and
every delta must carry only fresh sequence numbers (monotonicity).
"""

import pytest

from repro.aggregates import COUNT, MAX, SUM, spec
from repro.algebra.ast import ChronicleProduct, Node, NonEquiSeqJoin, scan
from repro.algebra.delta_engine import propagate
from repro.algebra.evaluate import evaluate
from repro.core.delta import Delta
from repro.core.group import ChronicleGroup
from repro.errors import ChronicleAccessError
from repro.relational.predicate import Or, attr_cmp, attr_eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.versioned import VersionedRelation


def build():
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")])
    customers = Relation(
        "customers", Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"])
    )
    for acct, state in ((1, "NJ"), (2, "NY"), (3, "NJ")):
        customers.insert({"acct": acct, "state": state})
    return group, calls, fees, customers


def replay(group, expression, appends):
    """Apply appends while accumulating per-event deltas of *expression*.

    *appends* is a list of {chronicle_name: [records]} events.  Returns
    the accumulated delta rows (with freshness asserted per event).
    """
    accumulated = []

    def listener(g, event):
        deltas = {
            name: Delta(g[name].schema, rows) for name, rows in event.items()
        }
        watermark_before = g.watermark - 1  # one sn issued per event
        delta = propagate(expression, deltas)
        delta.assert_fresh(watermark_before)
        accumulated.extend(delta.rows)

    group.subscribe(listener)
    try:
        for event in appends:
            group.append_simultaneous(event)
    finally:
        group.unsubscribe(listener)
    return accumulated


def assert_incremental_matches_batch(group, expression, appends):
    accumulated = replay(group, expression, appends)
    batch = evaluate(expression)
    assert sorted(r.values for r in accumulated) == sorted(
        r.values for r in batch.rows
    )


class TestOperatorRules:
    def test_scan(self):
        group, calls, _, _ = build()
        assert_incremental_matches_batch(
            group,
            scan(calls),
            [{"calls": {"acct": 1, "mins": 5}}, {"calls": {"acct": 2, "mins": 7}}],
        )

    def test_select(self):
        group, calls, _, _ = build()
        expression = scan(calls).select(attr_cmp("mins", ">", 5))
        assert_incremental_matches_batch(
            group,
            expression,
            [{"calls": {"acct": 1, "mins": 5}}, {"calls": {"acct": 2, "mins": 7}}],
        )

    def test_select_disjunction(self):
        group, calls, _, _ = build()
        expression = scan(calls).select(Or(attr_eq("acct", 1), attr_cmp("mins", ">", 90)))
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": {"acct": 1, "mins": 5}},
                {"calls": {"acct": 2, "mins": 95}},
                {"calls": {"acct": 3, "mins": 10}},
            ],
        )

    def test_project(self):
        group, calls, _, _ = build()
        expression = scan(calls).project(["sn", "acct"])
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": [{"acct": 1, "mins": 5}, {"acct": 1, "mins": 9}]},
                {"calls": {"acct": 2, "mins": 7}},
            ],
        )

    def test_union(self):
        group, calls, fees, _ = build()
        expression = scan(calls).union(scan(fees))
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": {"acct": 1, "mins": 5}},
                {"fees": {"acct": 1, "mins": 2}},
                {"calls": {"acct": 2, "mins": 7}, "fees": {"acct": 2, "mins": 1}},
            ],
        )

    def test_union_dedups_same_tuple(self):
        group, calls, fees, _ = build()
        expression = scan(calls).union(scan(fees))
        # The same record simultaneously in both operands: one output tuple.
        accumulated = replay(
            group,
            expression,
            [{"calls": {"acct": 1, "mins": 5}, "fees": {"acct": 1, "mins": 5}}],
        )
        assert len(accumulated) == 1

    def test_difference(self):
        group, calls, fees, _ = build()
        expression = scan(calls).minus(scan(fees))
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": {"acct": 1, "mins": 5}, "fees": {"acct": 1, "mins": 5}},
                {"calls": {"acct": 2, "mins": 7}},
                {"fees": {"acct": 3, "mins": 1}},
            ],
        )

    def test_seq_join(self):
        group, calls, fees, _ = build()
        expression = scan(calls).join(scan(fees))
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": {"acct": 1, "mins": 5}, "fees": {"acct": 1, "mins": 2}},
                {"calls": {"acct": 2, "mins": 7}},  # no fee: no join output
                {"fees": {"acct": 3, "mins": 1}},   # no call: no join output
                {
                    "calls": [{"acct": 4, "mins": 1}, {"acct": 5, "mins": 2}],
                    "fees": {"acct": 4, "mins": 9},
                },
            ],
        )

    def test_groupby_sn(self):
        group, calls, _, _ = build()
        expression = scan(calls).groupby_sn(
            ["sn", "acct"], [spec(SUM, "mins"), spec(COUNT)]
        )
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": [{"acct": 1, "mins": 5}, {"acct": 1, "mins": 7}]},
                {"calls": [{"acct": 1, "mins": 2}, {"acct": 2, "mins": 3}]},
            ],
        )

    def test_rel_product(self):
        group, calls, _, customers = build()
        expression = scan(calls).product(customers)
        assert_incremental_matches_batch(
            group,
            expression,
            [{"calls": {"acct": 1, "mins": 5}}, {"calls": {"acct": 2, "mins": 7}}],
        )

    def test_rel_keyjoin(self):
        group, calls, _, customers = build()
        expression = scan(calls).keyjoin(customers, [("acct", "acct")])
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": {"acct": 1, "mins": 5}},
                {"calls": {"acct": 99, "mins": 1}},  # dangling: drops out
            ],
        )

    def test_composite_expression(self):
        group, calls, fees, customers = build()
        expression = (
            scan(calls)
            .union(scan(fees))
            .select(attr_cmp("mins", ">", 0))
            .keyjoin(customers, [("acct", "acct")])
            .project(["sn", "acct", "state"])
        )
        assert_incremental_matches_batch(
            group,
            expression,
            [
                {"calls": {"acct": 1, "mins": 5}},
                {"fees": {"acct": 2, "mins": 0}},
                {"calls": {"acct": 3, "mins": 2}, "fees": {"acct": 3, "mins": 4}},
            ],
        )

    def test_no_delta_for_untouched_chronicle(self):
        group, calls, fees, _ = build()
        expression = scan(fees)
        accumulated = replay(group, expression, [{"calls": {"acct": 1, "mins": 5}}])
        assert accumulated == []


class TestTemporalJoin:
    def test_keyjoin_uses_current_version(self):
        """Proactive updates change only future joins (Example 2.2)."""
        group, calls, _, _ = build()
        customers = VersionedRelation(
            "customers",
            Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"]),
            watermark=lambda: group.watermark,
        )
        customers.insert({"acct": 1, "state": "NJ"})
        expression = scan(calls).keyjoin(customers, [("acct", "acct")])
        accumulated = replay(group, expression, [{"calls": {"acct": 1, "mins": 5}}])
        assert accumulated[0]["state"] == "NJ"
        customers.update_key((1,), state="NY")  # proactive
        accumulated = replay(group, expression, [{"calls": {"acct": 1, "mins": 7}}])
        assert accumulated[0]["state"] == "NY"
        # Batch evaluation honours the temporal join: the first call still
        # joins the NJ version.
        batch = evaluate(expression)
        states = sorted(r["state"] for r in batch.rows)
        assert states == ["NJ", "NY"]


class TestExtensionOperators:
    def test_chronicle_product_refused_without_access(self):
        group, calls, fees, _ = build()
        expression = ChronicleProduct(scan(calls), scan(fees))
        deltas = {"calls": Delta(calls.schema, [])}
        with pytest.raises(ChronicleAccessError):
            propagate(expression, deltas)

    def test_chronicle_product_with_access_matches_batch(self):
        group, calls, fees, _ = build()
        expression = ChronicleProduct(scan(calls), scan(fees))
        accumulated = []

        def listener(g, event):
            deltas = {name: Delta(g[name].schema, rows) for name, rows in event.items()}
            delta = propagate(expression, deltas, allow_chronicle_access=True)
            accumulated.extend(delta.rows)

        group.subscribe(listener)
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(fees, {"acct": 1, "mins": 2})
        group.append(calls, {"acct": 2, "mins": 7})
        batch = evaluate(expression)
        assert sorted(r.values for r in accumulated) == sorted(r.values for r in batch.rows)

    def test_non_equi_join_refused_without_access(self):
        group, calls, fees, _ = build()
        expression = NonEquiSeqJoin(scan(calls), scan(fees), "<")
        with pytest.raises(ChronicleAccessError):
            propagate(expression, {"calls": Delta(calls.schema, [])})

    def test_non_equi_join_with_access_matches_batch(self):
        group, calls, fees, _ = build()
        expression = NonEquiSeqJoin(scan(calls), scan(fees), "<")
        accumulated = []

        def listener(g, event):
            deltas = {name: Delta(g[name].schema, rows) for name, rows in event.items()}
            delta = propagate(expression, deltas, allow_chronicle_access=True)
            accumulated.extend(delta.rows)

        group.subscribe(listener)
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(fees, {"acct": 1, "mins": 2})
        group.append(calls, {"acct": 2, "mins": 7})
        group.append(fees, {"acct": 2, "mins": 3})
        batch = evaluate(expression)
        assert sorted(r.values for r in accumulated) == sorted(r.values for r in batch.rows)


class TestMonotonicity:
    def test_deltas_carry_only_fresh_sequence_numbers(self):
        """Theorem 4.1 on a composite expression: every per-event delta's
        sequence numbers exceed the pre-event watermark."""
        group, calls, fees, customers = build()
        expression = (
            scan(calls).union(scan(fees)).keyjoin(customers, [("acct", "acct")])
        )
        observed = []

        def listener(g, event):
            deltas = {name: Delta(g[name].schema, rows) for name, rows in event.items()}
            delta = propagate(expression, deltas)
            observed.append((g.watermark, delta.sequence_numbers()))

        group.subscribe(listener)
        group.append(calls, {"acct": 1, "mins": 5})
        group.append(fees, {"acct": 2, "mins": 2})
        group.append(calls, {"acct": 3, "mins": 7})
        for watermark, sequence_numbers in observed:
            assert all(sn == watermark for sn in sequence_numbers)
