"""Tests for durable checkpoints: the restart story of a database whose
primary data (the chronicle) is never stored."""

import io
import json

import pytest

from repro.core.database import ChronicleDatabase
from repro.storage.checkpoint import (
    CheckpointError,
    write_checkpoint,
    load_checkpoint,
)


def build(define_views=True, materialize=False):
    db = ChronicleDatabase()
    db.create_chronicle(
        "calls", [("caller", "INT"), ("minutes", "INT")], retention=0
    )
    db.create_relation("subscribers", [("number", "INT"), ("state", "STR")],
                       key=["number"])
    db.relation("subscribers").insert({"number": 1, "state": "NJ"})
    if define_views:
        db.define_view(
            "DEFINE VIEW usage AS SELECT caller, SUM(minutes) AS total, "
            "AVG(minutes) AS mean, MIN(minutes) AS low, LAST(minutes) AS latest "
            "FROM calls GROUP BY caller",
            materialize=materialize,
        )
        db.define_view(
            "DEFINE VIEW grand AS SELECT COUNT(*) AS n FROM calls",
            materialize=materialize,
        )
    return db


class TestRoundTrip:
    def test_views_survive_restart(self, tmp_path):
        db = build()
        for minutes in (10, 20, 33):
            db.append("calls", {"caller": 1, "minutes": minutes})
        db.append("calls", {"caller": 2, "minutes": 5})
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)

        fresh = build()
        fresh.restore(path)
        assert fresh.view_value("usage", (1,), "total") == 63
        assert fresh.view_value("usage", (1,), "mean") == 21.0
        assert fresh.view_value("usage", (1,), "latest") == 33
        assert fresh.view_value("grand", (), "n") == 4

    def test_maintenance_continues_after_restore(self, tmp_path):
        db = build()
        db.append("calls", {"caller": 1, "minutes": 10})
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)

        fresh = build()
        fresh.restore(path)
        fresh.append("calls", {"caller": 1, "minutes": 5})
        assert fresh.view_value("usage", (1,), "total") == 15
        assert fresh.view_value("usage", (1,), "mean") == 7.5  # AVG state resumed
        assert fresh.view_value("grand", (), "n") == 2

    def test_watermark_restored(self, tmp_path):
        db = build(define_views=False)
        for _ in range(7):
            db.append("calls", {"caller": 1, "minutes": 1})
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)

        fresh = build(define_views=False)
        fresh.restore(path)
        rows = fresh.append("calls", {"caller": 1, "minutes": 1})
        assert rows[0].sequence_number == 7  # continues, does not restart at 0

    def test_relations_restored(self, tmp_path):
        db = build(define_views=False)
        db.relation("subscribers").insert({"number": 2, "state": "NY"})
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)

        fresh = build(define_views=False)
        fresh.restore(path)
        assert len(fresh.relation("subscribers")) == 2
        assert fresh.relation("subscribers").lookup_key((2,))["state"] == "NY"

    def test_stream_target(self):
        db = build()
        db.append("calls", {"caller": 1, "minutes": 10})
        buffer = io.StringIO()
        write_checkpoint(db, buffer)
        buffer.seek(0)
        fresh = build()
        load_checkpoint(fresh, buffer)
        assert fresh.view_value("usage", (1,), "total") == 10

    def test_document_is_plain_json(self, tmp_path):
        db = build()
        db.append("calls", {"caller": 1, "minutes": 10})
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["format"] == 1
        assert "usage" in document["views"]

    def test_restore_from_document_dict(self):
        db = build()
        db.append("calls", {"caller": 1, "minutes": 10})
        document = write_checkpoint(db, io.StringIO())
        fresh = build()
        load_checkpoint(fresh, document)
        assert fresh.view_value("usage", (1,), "total") == 10


class TestPeriodicCheckpoint:
    def build_periodic(self):
        db = ChronicleDatabase()
        db.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")],
            retention=0,
        )
        db.define_view(
            "DEFINE PERIODIC VIEW monthly OVER EVERY 30 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        return db

    def test_periodic_views_round_trip(self):
        db = self.build_periodic()
        db.append("calls", {"caller": 1, "minutes": 10, "day": 5})
        db.append("calls", {"caller": 1, "minutes": 20, "day": 45})
        buffer = io.StringIO()
        write_checkpoint(db, buffer)
        buffer.seek(0)

        fresh = self.build_periodic()
        load_checkpoint(fresh, buffer)
        months = fresh.periodic_view("monthly")
        assert months[0].value((1,), "total") == 10
        assert months[1].value((1,), "total") == 20
        assert months.instantiated_count == 2
        # Maintenance continues into the restored interval views.
        fresh.append("calls", {"caller": 1, "minutes": 5, "day": 46})
        assert months[1].value((1,), "total") == 25

    def test_expired_intervals_stay_expired(self):
        db = ChronicleDatabase()
        db.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")],
            retention=0,
        )
        db.define_view(
            "DEFINE PERIODIC VIEW monthly OVER EVERY 30 EXPIRE AFTER 0 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        db.append("calls", {"caller": 1, "minutes": 10, "day": 5})
        db.append("calls", {"caller": 1, "minutes": 20, "day": 65})  # expires month 0
        buffer = io.StringIO()
        write_checkpoint(db, buffer)
        buffer.seek(0)

        fresh = ChronicleDatabase()
        fresh.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT"), ("day", "INT")],
            retention=0,
        )
        fresh.define_view(
            "DEFINE PERIODIC VIEW monthly OVER EVERY 30 EXPIRE AFTER 0 BY day AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        load_checkpoint(fresh, buffer)
        from repro.errors import ViewExpiredError

        with pytest.raises(ViewExpiredError):
            fresh.periodic_view("monthly")[0]


class TestValidation:
    def test_unknown_view_rejected(self, tmp_path):
        db = build()
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)
        fresh = build(define_views=False)
        with pytest.raises(CheckpointError):
            fresh.restore(path)

    def test_unknown_relation_rejected(self, tmp_path):
        db = build(define_views=False)
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)
        fresh = ChronicleDatabase()
        fresh.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        with pytest.raises(CheckpointError):
            fresh.restore(path)

    def test_unknown_group_rejected(self, tmp_path):
        db = build(define_views=False)
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)
        fresh = ChronicleDatabase()  # no groups at all
        with pytest.raises(CheckpointError):
            fresh.restore(path)

    def test_bad_format_version(self, tmp_path):
        path = str(tmp_path / "bad.ckpt")
        with open(path, "w") as handle:
            json.dump({"format": 99}, handle)
        with pytest.raises(CheckpointError):
            build().restore(path)

    def test_atomic_write_leaves_no_temp_on_success(self, tmp_path):
        db = build()
        path = str(tmp_path / "db.ckpt")
        db.checkpoint(path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".ckpt" and p.name != "db.ckpt"]
        assert leftovers == []
