"""E10 — Section 5.3: batch → incremental conversion of tiered discounts.

The paper's telephone plan (10% over $10, 20% over $25, 30% over $100
here), computed two ways while sweeping the billing-period length:

* **batch** — fold the whole period's records once at period end: cheap
  in total, but the discount is stale/inaccurate all period long;
* **incremental** — per-record O(1) updates; the discount is exact at
  every instant and equals the batch statement at period end.

Expected shape: incremental per-record work flat in the period length;
results exactly equal; and the staleness metric (fraction of the period
during which the batch answer differs from the true running answer) grows
with period length while incremental staleness is identically zero.
"""

import sys

import pytest

from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table
from repro.views.batch import (
    IncrementalTieredComputation,
    TierSchedule,
    batch_tiered_computation,
)
from repro.workloads import TelecomWorkload

PERIODS = [500, 2_000, 8_000, 32_000]
PLAN = TierSchedule([(10_00, 0.10), (25_00, 0.20), (100_00, 0.30)])


def _records(count):
    workload = TelecomWorkload(seed=29, subscribers=100)
    return [(r["caller"], r["cents"]) for r in workload.records(count)]


def _incremental_run(records):
    import time

    incremental = IncrementalTieredComputation(PLAN)
    stale_hits = 0
    start = time.perf_counter()
    for key, amount in records:
        incremental.observe(key, amount)
    elapsed = time.perf_counter() - start
    return incremental, elapsed / len(records)


def _staleness(records):
    """Fraction of record-instants at which a batch-at-period-end system
    reports a different discount rate than the true running rate."""
    running = IncrementalTieredComputation(PLAN)
    stale = 0
    for key, amount in records:
        running.observe(key, amount)
        # batch system still reports rate 0 (no statement until period end)
        if running.rate(key) != 0.0:
            stale += 1
    return stale / len(records)


def run_report() -> str:
    rows, per_record = [], []
    for period in PERIODS:
        records = _records(period)
        incremental, seconds_per_record = _incremental_run(records)
        batch = batch_tiered_computation(PLAN, records)
        exact = incremental.statement() == batch
        staleness = _staleness(records)
        per_record.append(seconds_per_record * 1e6)
        rows.append(
            [period, f"{seconds_per_record * 1e6:.2f}",
             "yes" if exact else "NO", f"{staleness:.0%}"]
        )
    return (
        "== E10  tiered discounts: incremental vs batch ==\n"
        + format_table(
            ["period (records)", "incremental µs/record",
             "equals batch statement", "batch staleness"],
            rows,
        )
        + f"\nfit of per-record cost in period length: "
        f"{fit_series(PERIODS, per_record).model} (expected constant)\n"
    )


def test_e10_exact_equality_every_period():
    for period in PERIODS[:3]:
        records = _records(period)
        incremental, _ = _incremental_run(records)
        assert incremental.statement() == batch_tiered_computation(PLAN, records)


def test_e10_per_record_cost_flat():
    costs = []
    for period in PERIODS:
        records = _records(period)
        _, seconds = _incremental_run(records)
        costs.append(seconds)
    assert is_flat(PERIODS, costs, slack=0.9)  # wall time: generous slack


def test_e10_batch_staleness_grows():
    small = _staleness(_records(PERIODS[0]))
    large = _staleness(_records(PERIODS[-1]))
    assert large > small


@pytest.mark.parametrize("period", [500, 32_000])
def test_e10_incremental_stream(benchmark, period):
    records = _records(period)
    benchmark.pedantic(
        lambda: _incremental_run(records), rounds=3, iterations=1
    )


@pytest.mark.parametrize("period", [500, 32_000])
def test_e10_batch_fold(benchmark, period):
    records = _records(period)
    benchmark.pedantic(
        lambda: batch_tiered_computation(PLAN, records), rounds=3, iterations=1
    )


if __name__ == "__main__":
    sys.stdout.write(run_report())
