"""E9 — Section 5.2: identifying affected persistent views.

Many *selective* views (one per account bucket: ``WHERE acct = k``) are
registered over one chronicle.  An append touches exactly one bucket, so
with the registry's prefilter only ~1 view should be maintained per
append; without it, all N views run their (vacuous) delta propagation.

Expected shape: per-append work grows ~linearly with N without the
prefilter and stays ~flat with it; results are identical either way.
"""

import sys

import pytest

from repro.aggregates import SUM, spec
from repro.algebra.ast import scan
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series
from repro.complexity.harness import format_table
from repro.core.group import ChronicleGroup
from repro.relational.predicate import attr_eq
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView
from repro.views.registry import ViewRegistry

VIEW_COUNTS = [10, 50, 250, 1000]


def _build(view_count, prefilter):
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")],
                                   retention=0)
    registry = ViewRegistry(prefilter=prefilter)
    registry.attach(group)
    for bucket in range(view_count):
        node = scan(calls).select(attr_eq("acct", bucket))
        registry.register(
            PersistentView(
                f"bucket_{bucket}",
                GroupBySummary(node, ["acct"], [spec(SUM, "mins")]),
            )
        )
    return group, calls, registry


def _append_cost(view_count, prefilter):
    group, calls, registry = _build(view_count, prefilter)
    group.append(calls, {"acct": 0, "mins": 1})  # warm up
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": view_count // 2, "mins": 1})
    return sum(cost.values()), registry


def run_report() -> str:
    rows, with_filter, without_filter = [], [], []
    for count in VIEW_COUNTS:
        filtered, registry = _append_cost(count, prefilter=True)
        maintained = registry.stats["maintained_views"]
        unfiltered, _ = _append_cost(count, prefilter=False)
        with_filter.append(filtered)
        without_filter.append(unfiltered)
        rows.append([count, unfiltered, filtered, maintained])
    return (
        "== E9  affected-view identification: work per append vs #views ==\n"
        + format_table(
            ["#views", "work (maintain all)", "work (prefiltered)",
             "views maintained (of 2 appends)"],
            rows,
        )
        + f"\nfits: maintain-all={fit_series(VIEW_COUNTS, without_filter).model} "
        f"(expected linear), prefiltered="
        f"{fit_series(VIEW_COUNTS, with_filter).model} (expected ~constant)\n"
    )


def test_e9_prefilter_flat_maintain_all_linear():
    with_filter = [_append_cost(n, True)[0] for n in VIEW_COUNTS]
    without_filter = [_append_cost(n, False)[0] for n in VIEW_COUNTS]
    assert fit_series(VIEW_COUNTS, without_filter).model in ("linear", "nlogn")
    # The prefilter itself tests each candidate's predicate, so its cost
    # grows far slower; at 1000 views it must win by a wide margin.
    assert without_filter[-1] > with_filter[-1] * 3


def test_e9_results_identical():
    group_a, calls_a, registry_a = _build(50, prefilter=True)
    group_b, calls_b, registry_b = _build(50, prefilter=False)
    import random

    rng = random.Random(7)
    for _ in range(200):
        record = {"acct": rng.randrange(50), "mins": rng.randrange(10)}
        group_a.append(calls_a, dict(record))
        group_b.append(calls_b, dict(record))
    for bucket in range(50):
        a = registry_a.view(f"bucket_{bucket}").value((bucket,), "sum_mins")
        b = registry_b.view(f"bucket_{bucket}").value((bucket,), "sum_mins")
        assert a == b


@pytest.mark.parametrize("prefilter", [True, False])
def test_e9_append_with_1000_views(benchmark, prefilter):
    group, calls, _ = _build(1000, prefilter)
    counter = [0]

    def action():
        counter[0] += 1
        group.append(calls, {"acct": counter[0] % 1000, "mins": 1})

    benchmark(action)


if __name__ == "__main__":
    sys.stdout.write(run_report())
