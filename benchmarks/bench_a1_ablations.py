"""A1 — ablations of this implementation's design choices.

Three knobs DESIGN.md calls out, each measured on/off:

1. **view-state index structure** — B+-tree (the paper's O(log |V|)
   locate, ordered scans) vs unique hash index (expected O(1), no
   ordered access).  Expected: the hash index wins on probes by the
   log factor, B+-tree probes grow with log |V|.
2. **per-event delta sharing** — N views built over one *shared*
   filtered-scan subtree, maintained with and without the registry's
   delta cache.  Expected: without sharing the selection runs N times
   per append; with sharing once.
3. **compiler selection pushdown** — the same selective joined view
   compiled with the chronicle-conjunct pushdown enabled (normal) vs
   simulated off (selection above the join), measured by the §5.2
   prefilter's skip rate.  Expected: pushdown lets the prefilter skip
   non-matching appends; without it every append propagates.
"""

import sys

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import scan
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.harness import format_table
from repro.core.group import ChronicleGroup
from repro.relational.predicate import attr_cmp, attr_eq
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView
from repro.storage.hash_index import HashIndex
from repro.views.registry import ViewRegistry

from _common import make_customers, make_group


# -- 1: state index structure ------------------------------------------------------


def _state_index_probes(groups, use_hash):
    group, calls = make_group(retention=0)
    state_index = HashIndex(unique=True) if use_hash else None
    view = PersistentView(
        "v",
        GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")]),
        state_index=state_index,
    )
    attach_view(view, group)
    with GLOBAL_COUNTERS.disabled():
        for acct in range(groups):
            group.append(calls, {"acct": acct, "mins": 1})
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": groups // 2, "mins": 1})
    return cost["index_probe"]


# -- 2: delta sharing ---------------------------------------------------------------


def _sharing_work(view_count, share):
    group, calls = make_group(retention=0)
    shared = scan(calls).select(attr_cmp("mins", ">=", 0))
    registry = ViewRegistry(prefilter=False)
    registry.attach(group)
    for index in range(view_count):
        node = shared if share else scan(calls).select(attr_cmp("mins", ">=", 0))
        registry.register(
            PersistentView(f"v{index}", GroupBySummary(node, ["acct"], [spec(COUNT)]))
        )
    group.append(calls, {"acct": 0, "mins": 1})  # warm up
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": 1, "mins": 1})
    return cost["tuple_op"]


# -- 3: compiler pushdown -----------------------------------------------------------


def _pushdown_skip_rate(pushdown, appends=1000):
    group = ChronicleGroup("g")
    calls = group.create_chronicle(
        "calls", [("acct", "INT"), ("mins", "INT")], retention=0
    )
    customers = make_customers(64)
    registry = ViewRegistry(prefilter=True)
    registry.attach(group)
    base = scan(calls)
    if pushdown:
        node = base.select(attr_eq("acct", 1)).keyjoin(customers, [("acct", "acct")])
    else:
        node = base.keyjoin(customers, [("acct", "acct")]).select(attr_eq("acct", 1))
    view = registry.register(
        PersistentView("selective", GroupBySummary(node, ["state"], [spec(COUNT)]))
    )
    for i in range(appends):
        group.append(calls, {"acct": i % 64, "mins": 1})
    return 1 - view.maintenance_count / appends


def run_report() -> str:
    v_sizes = [100, 10_000, 1_000_000 // 10]
    index_rows = [
        [size, _state_index_probes(size, use_hash=False),
         _state_index_probes(size, use_hash=True)]
        for size in v_sizes
    ]
    share_counts = [1, 8, 32]
    share_rows = [
        [count, _sharing_work(count, share=False), _sharing_work(count, share=True)]
        for count in share_counts
    ]
    push_rows = [
        ["on", f"{_pushdown_skip_rate(True):.1%}"],
        ["off", f"{_pushdown_skip_rate(False):.1%}"],
    ]
    return (
        "== A1  implementation ablations ==\n"
        "1) view-state index: locate probes per append vs |V|\n"
        + format_table(["|V| groups", "B+-tree probes", "hash probes"], index_rows)
        + "\n\n2) delta sharing: tuple work per append vs #views over one subtree\n"
        + format_table(["#views", "work (no sharing)", "work (shared)"], share_rows)
        + "\n\n3) compiler pushdown: prefilter skip rate for a selective joined view\n"
        + format_table(["pushdown", "appends skipped"], push_rows)
        + "\n"
    )


def test_a1_hash_state_index_beats_btree_probes():
    btree = _state_index_probes(10_000, use_hash=False)
    hashed = _state_index_probes(10_000, use_hash=True)
    assert hashed < btree


def test_a1_hash_state_index_correct():
    group, calls = make_group(retention=0)
    view = PersistentView(
        "v",
        GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")]),
        state_index=HashIndex(unique=True),
    )
    attach_view(view, group)
    for i in range(200):
        group.append(calls, {"acct": i % 7, "mins": i})
    assert view.value((3,), "sum_mins") == sum(i for i in range(200) if i % 7 == 3)


def test_a1_sharing_flattens_selection_cost():
    no_share = _sharing_work(32, share=False)
    shared = _sharing_work(32, share=True)
    # Unshared: 32 selections + 32 folds; shared: 1 selection + 32 folds.
    assert no_share >= shared + 25


def test_a1_pushdown_enables_prefilter():
    assert _pushdown_skip_rate(True, appends=256) > 0.9
    assert _pushdown_skip_rate(False, appends=256) == 0.0


@pytest.mark.parametrize("use_hash", [False, True])
def test_a1_state_index_append(benchmark, use_hash):
    group, calls = make_group(retention=0)
    view = PersistentView(
        "v",
        GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins")]),
        state_index=HashIndex(unique=True) if use_hash else None,
    )
    attach_view(view, group)
    with GLOBAL_COUNTERS.disabled():
        for acct in range(50_000):
            group.append(calls, {"acct": acct, "mins": 1})
    counter = [0]

    def action():
        counter[0] += 1
        group.append(calls, {"acct": counter[0] % 50_000, "mins": 1})

    benchmark(action)


if __name__ == "__main__":
    sys.stdout.write(run_report())
