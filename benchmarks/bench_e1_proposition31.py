"""E1 — Proposition 3.1: RA+aggregation is IM-C^k, not IM-R^k.

The same summary view (SUM, COUNT per account) is maintained two ways
while the chronicle grows:

* **recompute** — relational algebra over the stored chronicle, from
  scratch per append (the IM-C^k representative);
* **incremental** — the chronicle-model delta engine.

Expected shape: recompute's per-append cost grows ~linearly with |C|
(each recomputation reads the whole stored chronicle); the incremental
view's cost is flat, and it never reads the chronicle at all.
"""

import sys

import pytest

from repro.algebra.ast import scan
from repro.aggregates import COUNT, SUM, spec
from repro.baselines.recompute import RecomputeMaintainer
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table
from repro.sca.summarize import GroupBySummary

from _common import attach, make_group, one_append, preload, sum_view

SIZES = [200, 1000, 5000, 25000]


def _recompute_cost_at(size):
    group, calls = make_group(retention=None)
    summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins"), spec(COUNT)])
    maintainer = RecomputeMaintainer(summary)
    preload(group, calls, size)
    maintainer.attach(group)
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": 0, "mins": 1})
    return cost


def _incremental_cost_at(size):
    group, calls = make_group(retention=0)
    view = attach(sum_view(scan(calls), ["acct"]), group)
    preload(group, calls, size)
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": 0, "mins": 1})
    return cost


def run_report() -> str:
    rows = []
    recompute_work, incremental_work = [], []
    for size in SIZES:
        recompute = _recompute_cost_at(size)
        incremental = _incremental_cost_at(size)
        r_work = sum(recompute.values())
        i_work = sum(incremental.values())
        recompute_work.append(r_work)
        incremental_work.append(i_work)
        rows.append(
            [size, r_work, recompute["chronicle_read"], i_work,
             incremental["chronicle_read"]]
        )
    recompute_fit = fit_series(SIZES, recompute_work).model
    incremental_fit = fit_series(SIZES, incremental_work).model
    table = format_table(
        ["|C|", "recompute_work", "recompute_chr_reads",
         "incremental_work", "incremental_chr_reads"],
        rows,
    )
    return (
        "== E1  Proposition 3.1: per-append maintenance work vs |C| ==\n"
        f"{table}\n"
        f"fit: recompute={recompute_fit} (expected linear+), "
        f"incremental={incremental_fit} (expected constant)\n"
    )


def test_e1_shape():
    recompute_work = [sum(_recompute_cost_at(s).values()) for s in SIZES]
    incremental_work = [sum(_incremental_cost_at(s).values()) for s in SIZES]
    # Recompute grows at least ~linearly across a 125x size range.
    assert recompute_work[-1] > recompute_work[0] * 50
    # Incremental is flat and reads no chronicle.
    assert is_flat(SIZES, incremental_work, slack=0.05)
    assert _incremental_cost_at(SIZES[-1])["chronicle_read"] == 0


@pytest.mark.parametrize("size", [200, 5000])
def test_e1_recompute_append(benchmark, size):
    group, calls = make_group(retention=None)
    summary = GroupBySummary(scan(calls), ["acct"], [spec(SUM, "mins"), spec(COUNT)])
    maintainer = RecomputeMaintainer(summary)
    preload(group, calls, size)
    maintainer.attach(group)
    benchmark(one_append(group, calls))


@pytest.mark.parametrize("size", [200, 5000])
def test_e1_incremental_append(benchmark, size):
    group, calls = make_group(retention=0)
    attach(sum_view(scan(calls), ["acct"]), group)
    preload(group, calls, size)
    benchmark(one_append(group, calls))


if __name__ == "__main__":
    sys.stdout.write(run_report())
