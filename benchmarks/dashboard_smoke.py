"""Dashboard smoke drill — live scrape of /dashboard and /timeline.

CI's end-to-end check of the operations dashboard: run a short sharded
ingest with the metrics-history sampler on a fast cadence, then fetch
the two endpoints over real HTTP and assert

1. **/timeline** answers bounded JSON with non-empty series — the
   throughput track saw the ingest, the health track is populated, and
   the sample count respects the configured ring capacity;
2. **/dashboard** answers a self-contained HTML page — no third-party
   assets, SVG sparklines present, the health band and throughput tile
   rendered.

The timeline JSON is written to the artifact directory (``timeline.json``,
plus ``dashboard.html``) so a failing run leaves the evidence the
workflow uploads.  Exits non-zero on any missing piece.

Set ``DASHBOARD_DIR`` to choose the artifact directory (default
``dashboard-artifacts``).
"""

import json
import os
import sys
import urllib.request

from repro import ChronicleDatabase, DatabaseConfig
from repro.core.config import HistoryConfig

BATCHES = 400
SAMPLE_EVERY = 40  # forced samples between appends (plus the thread's own)


def fail(message):
    print(f"FAIL: {message}")
    sys.exit(1)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read(),
        )


def run(artifact_dir):
    os.makedirs(artifact_dir, exist_ok=True)
    config = DatabaseConfig(
        engine="sharded",
        shards=2,
        observe=True,
        history=HistoryConfig(sample_interval_seconds=0.05, capacity=256),
    )
    db = ChronicleDatabase(config=config)
    try:
        db.create_chronicle(
            "calls", [("caller", "INT"), ("minutes", "INT")], retention=0
        )
        db.define_view(
            "DEFINE VIEW usage AS "
            "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
        )
        history = db.observability.history
        if history is None or not history.running:
            fail("history sampler did not start with the database")
        server = db.observability.serve(port=0)
        print(f"ingesting {BATCHES} batches with scrapes at {server.url}")
        for i in range(BATCHES):
            db.append("calls", {"caller": i % 11, "minutes": 1 + i % 5})
            if i % SAMPLE_EVERY == 0:
                history.sample_now()
        history.sample_now()

        status, content_type, body = fetch(server.url + "/timeline")
        if status != 200:
            fail(f"/timeline answered {status}")
        if "application/json" not in content_type:
            fail(f"/timeline content type {content_type!r}")
        timeline = json.loads(body)
        with open(os.path.join(artifact_dir, "timeline.json"), "w") as handle:
            json.dump(timeline, handle, indent=2, sort_keys=True)
        if timeline["count"] < 2:
            fail(f"timeline holds {timeline['count']} sample(s); expected >= 2")
        if timeline["count"] > timeline["capacity"]:
            fail("timeline count exceeds the configured ring capacity")
        records = [
            v for v in timeline["series"]["records_per_sec"] if v
        ]
        if not records:
            fail("records_per_sec series never saw the ingest")
        if not any(timeline["health"]):
            fail("health track is empty")
        print(
            f"/timeline ok: {timeline['count']} samples, peak "
            f"{max(records):,.0f} records/s, health "
            f"{timeline['health'][-1]}"
        )

        status, content_type, body = fetch(server.url + "/dashboard")
        if status != 200:
            fail(f"/dashboard answered {status}")
        if "text/html" not in content_type:
            fail(f"/dashboard content type {content_type!r}")
        html = body.decode("utf-8")
        with open(os.path.join(artifact_dir, "dashboard.html"), "w") as handle:
            handle.write(html)
        if not html.lower().startswith("<!doctype html>"):
            fail("/dashboard is not an HTML document")
        for needle in ("<svg", "throughput", "health"):
            if needle not in html:
                fail(f"/dashboard is missing {needle!r}")
        for forbidden in ("http://", "https://", "cdn."):
            if forbidden in html.split("</head>")[0]:
                fail(f"/dashboard head references an external asset "
                     f"({forbidden!r}) — it must be dependency-free")
        print(f"/dashboard ok: {len(html):,} bytes, self-contained HTML+SVG")

        status, _, body = fetch(
            server.url + "/timeline?series=records_per_sec&limit=5"
        )
        narrow = json.loads(body)
        if set(narrow["series"]) != {"records_per_sec"} or narrow["count"] > 5:
            fail("/timeline series/limit filtering broken")
        print("/timeline filtering ok")
    finally:
        db.observability.stop_serving()
        db.disable_observability()
        db.close()
    print(f"artifacts in {artifact_dir}/")
    print("dashboard smoke: all checks passed")


if __name__ == "__main__":
    run(os.environ.get("DASHBOARD_DIR", "dashboard-artifacts"))
