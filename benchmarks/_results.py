"""Shared BENCH_*.json result files: schema v2 with machine fingerprint.

Benchmark history files at the repository root (``BENCH_e12.json``,
``BENCH_e13.json``) share one envelope so every experiment's trajectory
reads the same way::

    {
      "schema": 2,
      "experiment": "E12 compiled maintenance plans",
      "runs": [
        {
          "timestamp": "2026-08-06T12:00:00",
          "machine": {"platform": ..., "python": ..., "cpus": ...},
          "trials": 3,
          ...experiment-specific payload...
        }
      ]
    }

Absolute numbers are machine-dependent, so every run carries a machine
fingerprint — a regression hunt can then split the history by machine
instead of chasing a "regression" that is really a hardware change.

Schema v1 files (no ``"schema"`` key — the PR-1 era ``BENCH_e12.json``)
are migrated in place on load: the envelope gains ``"schema": 2`` and
old runs are kept verbatim (they simply lack ``machine``/``trials``,
which readers must treat as unknown).
"""

import json
import os
import platform
import time

SCHEMA_VERSION = 2


def machine_fingerprint():
    """Coarse identity of the machine the numbers came from."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


#: Fingerprint axes that make two runs' absolute numbers comparable.
#: ``cpus`` matters most: a 1-core runner and a 4-core runner produce
#: legitimately different parallel speedups, and a regression gate must
#: never compare across that boundary.
COMPARABLE_AXES = ("machine", "cpus")


def comparable_runs(history, fingerprint=None, **payload_keys):
    """The subset of *history*'s runs a regression gate may compare against.

    A run qualifies when its machine fingerprint matches *fingerprint*
    (default: this machine) on every :data:`COMPARABLE_AXES` axis and its
    payload carries every ``payload_keys`` item verbatim (e.g.
    ``shards=4`` or ``executor="process"``).  Schema-v1 runs with no
    fingerprint are excluded — their provenance is unknown.
    """
    if fingerprint is None:
        fingerprint = machine_fingerprint()
    matched = []
    for run in history.get("runs", []):
        machine = run.get("machine")
        if machine is None:
            continue
        if any(machine.get(axis) != fingerprint.get(axis) for axis in COMPARABLE_AXES):
            continue
        if any(run.get(key) != value for key, value in payload_keys.items()):
            continue
        matched.append(run)
    return matched


def load_history(path, experiment):
    """Load (and, for v1 files, migrate) a benchmark history file."""
    if not os.path.exists(path):
        return {"schema": SCHEMA_VERSION, "experiment": experiment, "runs": []}
    with open(path) as handle:
        history = json.load(handle)
    if "schema" not in history:  # v1: {"experiment", "runs"} only
        history = {
            "schema": SCHEMA_VERSION,
            "experiment": history.get("experiment", experiment),
            "runs": history.get("runs", []),
        }
    return history


def append_run(history, payload):
    """Stamp *payload* with timestamp + machine and append it; returns it."""
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_fingerprint(),
    }
    run.update(payload)
    history["runs"].append(run)
    return run


def save_history(path, history):
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
