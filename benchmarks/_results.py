"""Shared BENCH_*.json result files: schema v2 with machine fingerprint.

Benchmark history files at the repository root (``BENCH_e12.json``,
``BENCH_e13.json``) share one envelope so every experiment's trajectory
reads the same way::

    {
      "schema": 2,
      "experiment": "E12 compiled maintenance plans",
      "runs": [
        {
          "timestamp": "2026-08-06T12:00:00",
          "machine": {"platform": ..., "python": ..., "cpus": ...},
          "trials": 3,
          ...experiment-specific payload...
        }
      ]
    }

Absolute numbers are machine-dependent, so every run carries a machine
fingerprint — a regression hunt can then split the history by machine
instead of chasing a "regression" that is really a hardware change.

Schema v1 files (no ``"schema"`` key — the PR-1 era ``BENCH_e12.json``)
are migrated in place on load: the envelope gains ``"schema": 2`` and
old runs are kept verbatim (they simply lack ``machine``/``trials``,
which readers must treat as unknown).
"""

import json
import os
import platform
import time

SCHEMA_VERSION = 2


def machine_fingerprint():
    """Coarse identity of the machine the numbers came from."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def load_history(path, experiment):
    """Load (and, for v1 files, migrate) a benchmark history file."""
    if not os.path.exists(path):
        return {"schema": SCHEMA_VERSION, "experiment": experiment, "runs": []}
    with open(path) as handle:
        history = json.load(handle)
    if "schema" not in history:  # v1: {"experiment", "runs"} only
        history = {
            "schema": SCHEMA_VERSION,
            "experiment": history.get("experiment", experiment),
            "runs": history.get("runs", []),
        }
    return history


def append_run(history, payload):
    """Stamp *payload* with timestamp + machine and append it; returns it."""
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_fingerprint(),
    }
    run.update(payload)
    history["runs"].append(run)
    return run


def save_history(path, history):
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
