"""Run every experiment report and print the consolidated results.

Usage:  python benchmarks/run_all.py [--quick]

Each experiment Exx regenerates the empirical analogue of one formal
claim of the paper (see DESIGN.md §6).  The output of this script is the
data behind EXPERIMENTS.md.
"""

from __future__ import annotations

import importlib
import sys
import time

MODULES = [
    "bench_e1_proposition31",
    "bench_e2_ca_independence",
    "bench_e3_uj_scaling",
    "bench_e4_sca_maintenance",
    "bench_e5_im_classes",
    "bench_e6_maximality",
    "bench_e7_query_latency",
    "bench_e8_moving_windows",
    "bench_e9_view_filtering",
    "bench_e10_batch_incremental",
    "bench_e11_throughput",
    "bench_e13_conformance",
    "bench_e14_sharded",
    "bench_e15_multicore",
    "bench_e17_durability",
    "bench_a1_ablations",
]


def main() -> None:
    started = time.perf_counter()
    for name in MODULES:
        module = importlib.import_module(name)
        module_start = time.perf_counter()
        sys.stdout.write(module.run_report())
        sys.stdout.write(
            f"   [{name}: {time.perf_counter() - module_start:.1f}s]\n\n"
        )
        sys.stdout.flush()
    sys.stdout.write(
        f"all experiments completed in {time.perf_counter() - started:.1f}s\n"
    )


if __name__ == "__main__":
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    main()
