"""E13 — empirical IM-class conformance certificates.

The observability tentpole experiment: run the
:class:`~repro.obs.conformance.ConformanceProfiler` scaling sweeps
against live views and check that the *measured* cost curves match the
classes :mod:`repro.algebra.classify` claims from the operator trees:

* ``balance``   — CA1 SUM-GROUP-BY (claimed IM-Constant): per-append
  work must fit **constant** in |C| (Theorem 4.2) with slope ≈ 0;
* ``by_state``  — CA-join through a keyed relation (claimed IM-log(R)):
  work constant in |C| and |R|, probes at worst logarithmic in |R|;
* ``planted``   — a deliberately planted chronicle-product C×C
  (outside CA, so it can never register as a PersistentView; measured
  through :func:`~repro.obs.conformance.certify_expression`): its
  per-append cost **must** be flagged as growing with |C| — the
  profiler catching exactly the violation Theorem 4.3(2) predicts.

Work excludes ``index_probe``/``index_lookup`` (the permitted O(log |V|)
locate step); counters, not wall clock, drive the fits, so the verdicts
are deterministic.

Results are appended to ``BENCH_e13.json`` (schema v2, see
``_results.py``).  Set ``E13_ARTIFACTS=dir`` to also dump the live
exporter surfaces — ``metrics.prom`` (Prometheus text),
``traces.jsonl`` (measurement span trees), ``certificates.json``, and
``attribution.txt`` (the flame-style cost tree) — the files CI uploads.
"""

import json
import os
import sys

from repro.algebra.ast import ChronicleProduct, scan
from repro.complexity.harness import format_table
from repro.core.database import ChronicleDatabase
from repro.core.group import ChronicleGroup
from repro.obs import Observability, certify_expression, format_attribution
from repro.obs.conformance import ConformanceProfiler

C_SIZES = (256, 1_024, 4_096)
R_SIZES = (256, 1_024, 4_096)
SAMPLES = 3

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e13.json"
)
EXPERIMENT = "E13 empirical IM-class conformance"


def _database():
    db = ChronicleDatabase()
    db.create_chronicle("flights", [("acct", "INT"), ("miles", "INT")])
    db.create_relation(
        "customers", [("acct", "INT"), ("state", "STR")], key=["acct"]
    )
    db.define_view(
        "DEFINE VIEW balance AS "
        "SELECT acct, SUM(miles) AS balance FROM flights GROUP BY acct"
    )
    db.define_view(
        "DEFINE VIEW by_state AS "
        "SELECT state, SUM(miles) AS total "
        "FROM flights JOIN customers ON flights.acct = customers.acct "
        "GROUP BY state"
    )
    return db


def certify_views(observability=None):
    """Certificates for the registered (conformant-by-construction) views."""
    db = _database()
    profiler = ConformanceProfiler(db, samples=SAMPLES, observability=observability)
    return {
        "balance": profiler.certify("balance", c_sizes=C_SIZES),
        "by_state": profiler.certify("by_state", c_sizes=C_SIZES, r_sizes=R_SIZES),
    }


def certify_planted():
    """Certificate for the planted C×C view — must come back non-conformant."""
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")])
    fees = group.create_chronicle("fees", [("acct", "INT"), ("fee", "INT")])
    expression = ChronicleProduct(scan(calls), scan(fees))
    return certify_expression(
        expression,
        group,
        driver=calls,
        grow=fees,
        sizes=C_SIZES,
        samples=SAMPLES,
        name="planted_cxc",
    )


def run_certificates():
    obs = Observability(trace=True, trace_operators=False, audit="off")
    certificates = certify_views(observability=obs)
    certificates["planted_cxc"] = certify_planted()
    return certificates, obs


def _persist(certificates):
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from _results import append_run, load_history, save_history

    history = load_history(RESULTS_PATH, EXPERIMENT)
    append_run(
        history,
        {
            "samples": SAMPLES,
            "views": {
                name: {
                    "claimed": cert.claimed.value,
                    "conformant": cert.conformant,
                    "sweeps": {
                        f"{s.parameter} {s.metric}": {
                            "model": s.model,
                            "slope": round(s.slope, 4),
                            "r_squared": round(s.r_squared, 4),
                        }
                        for s in cert.sweeps
                    },
                }
                for name, cert in certificates.items()
            },
        },
    )
    save_history(RESULTS_PATH, history)


def _write_artifacts(directory, certificates, obs):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "metrics.prom"), "w") as handle:
        handle.write(obs.metrics.to_prometheus())
    obs.tracer.export_jsonl(os.path.join(directory, "traces.jsonl"))
    with open(os.path.join(directory, "certificates.json"), "w") as handle:
        json.dump(
            {name: cert.to_dict() for name, cert in certificates.items()},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    with open(os.path.join(directory, "attribution.txt"), "w") as handle:
        handle.write(format_attribution(obs.tracer.traces()) + "\n")


def _expected_verdicts(certificates) -> bool:
    """The CI gate: CA views conformant, the planted product flagged."""
    return (
        certificates["balance"].conformant
        and certificates["by_state"].conformant
        and not certificates["planted_cxc"].conformant
    )


def _format_report(certificates) -> str:
    rows = []
    for name, cert in certificates.items():
        for sweep in cert.sweeps:
            rows.append(
                [
                    name,
                    cert.claimed.value,
                    f"{sweep.parameter} {sweep.metric}",
                    sweep.model,
                    f"{sweep.slope:.3g}",
                    f"{sweep.r_squared:.3f}",
                    "PASS" if sweep.passed else "FAIL",
                ]
            )
    verdicts = ", ".join(
        f"{name}={'CONFORMANT' if cert.conformant else 'NON-CONFORMANT'}"
        for name, cert in certificates.items()
    )
    return (
        f"== E13  IM-class conformance (counter fits, "
        f"median of {SAMPLES} samples/point) ==\n"
        + format_table(
            ["view", "claimed", "sweep", "fitted", "slope", "r²", "verdict"], rows
        )
        + f"\nverdicts: {verdicts}\n"
        "expected: CA views CONFORMANT (|C| slope ≈ 0); the planted C×C "
        "NON-CONFORMANT (Theorem 4.3(2) made empirical)\n"
    )


def run_report() -> str:
    certificates, obs = run_certificates()
    _persist(certificates)
    artifacts = os.environ.get("E13_ARTIFACTS")
    if artifacts:
        _write_artifacts(artifacts, certificates, obs)
    return _format_report(certificates)


def main() -> int:
    certificates, obs = run_certificates()
    _persist(certificates)
    artifacts = os.environ.get("E13_ARTIFACTS")
    if artifacts:
        _write_artifacts(artifacts, certificates, obs)
    sys.stdout.write(_format_report(certificates))
    if not _expected_verdicts(certificates):
        sys.stderr.write("E13: verdicts do not match the paper's claims\n")
        return 1
    return 0


def test_e13_ca1_independent():
    certificates = certify_views()
    cert = certificates["balance"]
    assert cert.conformant
    c_sweep = next(s for s in cert.sweeps if s.parameter == "|C|")
    assert c_sweep.model == "constant"
    assert abs(c_sweep.slope) < 1e-9


def test_e13_join_conformant():
    certificates = certify_views()
    assert certificates["by_state"].conformant


def test_e13_planted_product_flagged():
    cert = certify_planted()
    assert not cert.conformant
    c_sweep = cert.sweeps[0]
    assert c_sweep.model in ("linear", "nlogn", "quadratic", "cubic")


if __name__ == "__main__":
    sys.exit(main())
