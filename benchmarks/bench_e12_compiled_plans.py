"""E12 — compiled maintenance plans vs the tree interpreter.

Implementation experiment (no paper claim): the many-similar-views
regime of §5.2 — 50 persistent views over one frequent-flyer mileage
chronicle, drawn from only 5 distinct filtered scans (each extended by a
per-view projection/selection chain), maintained by three engines:

* ``interpreted``  — tree interpreter, each view built independently
  (no subtree object sharing, so the per-event delta cache never hits);
* ``shared``       — tree interpreter with the common filtered prefix
  built once and reused as objects (CSE only: cache hits, interpreted
  pipelines);
* ``compiled``     — ``ViewRegistry(compile=True)``: structural interning
  recovers the sharing from independently built trees AND each view runs
  as a fused closure pipeline (see docs/performance.md).

Appends arrive in transaction batches (40 records per event), the
regime the paper's "75 GB/day" motivation implies and where per-event
delta propagation — the part the engines differ on — carries the cost.

Expected shape: compiled ≥ 1.5× interpreted, with ``shared`` in between
(it isolates how much of the win is CSE vs fusion).
``benchmarks/check_regression.py`` persists the numbers to
``BENCH_e12.json`` so future changes have a trajectory to compare with.
"""

import gc
import sys
import time

import pytest

from repro.aggregates import AVG, COUNT, MAX, MIN, SUM, spec
from repro.algebra.ast import scan
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.harness import format_table
from repro.core.group import ChronicleGroup
from repro.relational.predicate import attr_cmp
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView
from repro.views.registry import ViewRegistry
from repro.workloads import FrequentFlyerWorkload

VIEWS = 50
#: 5 distinct high-mileage filters -> 10 views each share one scan+select
#: +project prefix; pass rates run ~28% down to ~3% of postings.
THRESHOLDS = (3_000, 3_500, 4_000, 4_500, 4_800)
CUSTOMERS = 400
BATCH = 40  # records per append event (one transaction batch)
PRELOAD_EVENTS = 30
MEASURED_EVENTS = 60

#: Per-view tail: an account cutoff (a second selection, fused by the
#: compiler) and an aggregate list.  Distinct per variant so only the
#: filtered-scan prefix is shareable — exactly what independent
#: DEFINE VIEW statements with a common WHERE clause produce.
VARIANTS = (
    (200, lambda: [spec(SUM, "miles")]),
    (180, lambda: [spec(COUNT)]),
    (160, lambda: [spec(MIN, "miles"), spec(MAX, "miles")]),
    (140, lambda: [spec(AVG, "miles")]),
    (120, lambda: [spec(SUM, "miles"), spec(COUNT)]),
    (100, lambda: [spec(MAX, "miles")]),
    (80, lambda: [spec(MIN, "miles")]),
    (60, lambda: [spec(AVG, "miles"), spec(COUNT)]),
    (40, lambda: [spec(SUM, "miles"), spec(MIN, "miles")]),
    (20, lambda: [spec(COUNT), spec(MAX, "miles")]),
)


def _batches(events, start=0):
    workload = FrequentFlyerWorkload(seed=41, customers=CUSTOMERS)
    records = [
        {
            "acct": r["acct"] - 9_000_000,
            "miles": r["miles"],
            "source": r["source"],
            "day": r["day"],
        }
        for r in workload.records(events * BATCH, start=start * BATCH)
    ]
    return [records[i * BATCH : (i + 1) * BATCH] for i in range(events)]


def _prefix(mileage, threshold):
    """The shareable chain: filter high-mileage postings, keep 3 columns."""
    return (
        scan(mileage)
        .select(attr_cmp("miles", ">", threshold))
        .project(["sn", "acct", "miles"])
    )


def _build(mode):
    group = ChronicleGroup("g")
    mileage = group.create_chronicle(
        "mileage", FrequentFlyerWorkload.CHRONICLE_SCHEMA, retention=0
    )
    registry = ViewRegistry(compile=(mode == "compiled"))
    registry.attach(group)
    if mode == "shared":
        # CSE by hand: one prefix object per distinct filter, reused
        # across its 10 views, so the interpreter's id-keyed cache hits.
        prefixes = {t: _prefix(mileage, t) for t in THRESHOLDS}
    for i in range(VIEWS):
        threshold = THRESHOLDS[i % len(THRESHOLDS)]
        if mode == "shared":
            prefix = prefixes[threshold]
        else:
            # Fresh objects every time — what independent view
            # definitions produce; only the compiler's interner can
            # recover the sharing.
            prefix = _prefix(mileage, threshold)
        cutoff, aggregates = VARIANTS[(i // len(THRESHOLDS)) % len(VARIANTS)]
        node = prefix.select(attr_cmp("acct", "<", cutoff))
        registry.register(
            PersistentView(f"v{i}", GroupBySummary(node, ["acct"], aggregates()))
        )
    registry.ensure_compiled()  # pay compilation up front, like a warm server
    return group, mileage


def _throughput(mode):
    """Append events per second (each event is a BATCH-record batch)."""
    group, mileage = _build(mode)
    with GLOBAL_COUNTERS.disabled():
        for batch in _batches(PRELOAD_EVENTS):
            group.append(mileage, batch)
        measured = _batches(MEASURED_EVENTS, start=PRELOAD_EVENTS)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            for batch in measured:
                group.append(mileage, batch)
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
    return MEASURED_EVENTS / elapsed


MODES = ("interpreted", "shared", "compiled")
REPS = 5


def run_measurements():
    """Appends/sec per engine: best of REPS runs, modes interleaved
    round-robin so transient machine noise lands on all engines alike."""
    best = {mode: 0.0 for mode in MODES}
    for _ in range(REPS):
        for mode in MODES:
            best[mode] = max(best[mode], _throughput(mode))
    return best


def run_report() -> str:
    results = run_measurements()
    rows = [
        [mode, f"{results[mode]:,.0f}", f"{results[mode] / results['interpreted']:.2f}x"]
        for mode in MODES
    ]
    return (
        f"== E12  append events/second ({BATCH}-record batches), "
        f"{VIEWS} views / {len(THRESHOLDS)} distinct filtered scans ==\n"
        + format_table(["engine", "appends/s", "vs interpreted"], rows)
        + "\nexpected: compiled >= 1.5x interpreted; shared (CSE-only) in "
        "between\n"
    )


def test_e12_compiled_speedup():
    results = run_measurements()
    assert results["compiled"] >= 1.5 * results["interpreted"]


def test_e12_engines_agree():
    # Same stream through all three engines: identical view states.
    states = {}
    for mode in MODES:
        group, mileage = _build(mode)
        for batch in _batches(20):
            group.append(mileage, batch)
        registry = next(
            listener.__self__
            for listener in group._listeners
            if hasattr(listener, "__self__")
        )
        states[mode] = {
            view.name: sorted(tuple(r.values) for r in view)
            for view in registry.views()
        }
    assert states["interpreted"] == states["shared"] == states["compiled"]


@pytest.mark.parametrize("mode", MODES)
def test_e12_append(benchmark, mode):
    group, mileage = _build(mode)
    with GLOBAL_COUNTERS.disabled():
        for batch in _batches(PRELOAD_EVENTS):
            group.append(mileage, batch)
        batches = _batches(400, start=PRELOAD_EVENTS)
    counter = [0]

    def action():
        counter[0] += 1
        group.append(mileage, batches[counter[0] % len(batches)])

    benchmark(action)


if __name__ == "__main__":
    sys.stdout.write(run_report())
