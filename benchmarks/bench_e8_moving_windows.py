"""E8 — Section 5.1: the cyclic-buffer optimization for moving windows.

The paper's 30-day moving stock-volume example, maintained two ways while
sweeping the window width W (overlap degree, stride fixed at 1 day):

* **periodic views** — one interval view per day-window; each record
  folds into ~W overlapping views;
* **cyclic buffer** — one bucket fold per record plus an O(1) roll per
  day (SUM is invertible).

Expected shape: per-record fold work grows ~linearly with W for the
periodic-view family and stays flat for the cyclic buffer; the advantage
therefore widens ~linearly in W.
"""

import sys

import pytest

from repro.aggregates import SUM
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table
from repro.core.group import ChronicleGroup
from repro.sca.summarize import GroupBySummary
from repro.aggregates import spec
from repro.algebra.ast import scan
from repro.views.calendar import sliding
from repro.views.moving import KeyedMovingWindow
from repro.views.periodic import PeriodicViewSet
from repro.workloads import StockWorkload

WIDTHS = [5, 10, 20, 40]
DAYS = 60
TRADES_PER_DAY = 40


def _trade_stream():
    workload = StockWorkload(seed=23, symbols=20, trades_per_day=TRADES_PER_DAY)
    return [r for r in workload.records(DAYS * TRADES_PER_DAY) if r["side"] == "sell"]


def _periodic_cost(width, trades):
    group = ChronicleGroup("g")
    chronicle = group.create_chronicle(
        "trades", [("symbol", "INT"), ("shares", "INT"), ("day", "INT")], retention=0
    )
    summary = GroupBySummary(scan(chronicle), ["symbol"], [spec(SUM, "shares")])
    views = PeriodicViewSet(
        "w",
        summary,
        sliding(window=width, step=1),
        chronon_of=lambda row: float(row["day"]),
        expire_after=1.0,
    )
    views.attach(group)
    with GLOBAL_COUNTERS.measure() as cost:
        for record in trades:
            group.append(
                chronicle,
                {"symbol": record["symbol"], "shares": record["shares"],
                 "day": record["day"]},
            )
    per_record = sum(cost.values()) / len(trades)
    return per_record, views


def _buffer_cost(width, trades):
    buffer = KeyedMovingWindow(SUM, width=width)
    with GLOBAL_COUNTERS.measure() as cost:
        for record in trades:
            buffer.observe(record["symbol"], record["shares"], float(record["day"]))
    per_record = sum(cost.values()) / len(trades)
    return per_record, buffer


def run_report() -> str:
    trades = _trade_stream()
    rows, naive_series, buffer_series = [], [], []
    for width in WIDTHS:
        naive, views = _periodic_cost(width, trades)
        optimized, buffer = _buffer_cost(width, trades)
        naive_series.append(naive)
        buffer_series.append(optimized)
        rows.append(
            [width, f"{naive:.1f}", f"{optimized:.2f}", f"{naive / optimized:.1f}x"]
        )
    return (
        "== E8  moving windows: periodic views vs cyclic buffer ==\n"
        + format_table(
            ["window W (days)", "periodic work/record", "buffer work/record",
             "buffer advantage"],
            rows,
        )
        + f"\nfits in W: periodic={fit_series(WIDTHS, naive_series).model} "
        f"(expected linear), buffer={fit_series(WIDTHS, buffer_series).model} "
        f"(expected constant)\n"
    )


def test_e8_results_agree():
    trades = _trade_stream()
    _, views = _periodic_cost(30, trades)
    _, buffer = _buffer_cost(30, trades)
    last_day = trades[-1]["day"]
    current = views[last_day - 30 + 1]
    assert len(current) > 0
    for row in current:
        assert buffer.current(row["symbol"]) == row["sum_shares"]


def test_e8_buffer_flat_periodic_linear_in_width():
    trades = _trade_stream()
    naive = [_periodic_cost(w, trades)[0] for w in WIDTHS]
    optimized = [_buffer_cost(w, trades)[0] for w in WIDTHS]
    assert fit_series(WIDTHS, naive).model in ("linear", "nlogn")
    assert is_flat(WIDTHS, optimized, slack=0.25)
    assert naive[-1] / optimized[-1] > naive[0] / optimized[0]


@pytest.mark.parametrize("width", [10, 40])
def test_e8_periodic_stream(benchmark, width):
    trades = _trade_stream()[:400]
    benchmark.pedantic(
        lambda: _periodic_cost(width, trades), rounds=3, iterations=1
    )


@pytest.mark.parametrize("width", [10, 40])
def test_e8_buffer_stream(benchmark, width):
    trades = _trade_stream()[:400]
    benchmark.pedantic(
        lambda: _buffer_cost(width, trades), rounds=3, iterations=1
    )


if __name__ == "__main__":
    sys.stdout.write(run_report())
