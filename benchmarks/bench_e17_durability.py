"""E17 — durability: WAL overhead and bounded crash recovery.

Implementation experiment (no paper claim): the durability subsystem
must not tax the chronicle model's per-append maintenance guarantee.
Two legs, both on the E14 consumer-banking catalog (41 views over one
chronicle, the ATM regime of small transaction batches):

* **overhead** — the identical record stream through ``ingest`` with
  durability ``off`` vs ``wal`` (``fsync="batch"``: one durable SQLite
  commit per admitted batch).  The metric is the throughput ratio
  wal/off; the acceptance bar is >= 0.85 (<= 15% overhead), gated the
  noise-aware way of E14: median of TRIALS with an MAD band against the
  best recorded ratio.
* **recovery** — ``wal+snapshot`` with a small snapshot interval; the
  stream is cut mid-flight with the crash hook (no clean close, no
  final snapshot).  Recovery via ``ChronicleDatabase.open`` must (a)
  replay only the log tail — the replayed-batch count is checked
  against the snapshot interval — and (b) reproduce **exactly** the
  view state of an uninterrupted run of the same stream.

A third **report-only** leg measures per-batch append latency under
``fsync="always"`` (synchronous=FULL — one real fsync per batch): p50
and p99 over individual ``append`` calls.  It is recorded in
``BENCH_e17.json`` for trend-watching but never gated — fsync latency
is a property of the disk, not of this code.

``gate()`` persists everything to ``BENCH_e17.json`` (schema v2, see
``_results.py``) and exits non-zero on a missed bar, a recovery
mismatch, or an unbounded replay.
"""

import gc
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _results import (  # noqa: E402
    append_run,
    comparable_runs,
    load_history,
    save_history,
)

from bench_e14_sharded import _BANDS, _KINDS, _windows  # noqa: E402

from repro import BankingWorkload, ChronicleDatabase, DatabaseConfig  # noqa: E402
from repro.core.config import DurabilityConfig  # noqa: E402
from repro.aggregates import COUNT, SUM, spec  # noqa: E402
from repro.algebra.ast import scan  # noqa: E402
from repro.complexity.counters import GLOBAL_COUNTERS  # noqa: E402
from repro.complexity.fitting import mad, median  # noqa: E402
from repro.complexity.harness import format_table  # noqa: E402
from repro.relational.predicate import attr_cmp, attr_eq  # noqa: E402
from repro.sca.summarize import GroupBySummary  # noqa: E402

BATCH = 6
WINDOW = 96
PRELOAD_WINDOWS = 1
MEASURED_WINDOWS = 4
REPS = 2  # best-of repetitions inside one measurement
TRIALS = 3  # measurement repetitions; the median gates

FSYNC = "batch"
OVERHEAD_BAR = 0.85  # wal/off throughput ratio (<= 15% overhead)
TOLERANCE = 0.7
MAD_BAND = 3.0

SNAPSHOT_INTERVAL = 64  # recovery leg: replay is bounded by this
RECOVERY_BATCHES = 2 * SNAPSHOT_INTERVAL + 17  # leaves a 17-batch tail

FSYNC_LATENCY_BATCHES = 192  # fsync="always" leg: timed appends (report-only)

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e17.json"
)
EXPERIMENT = "E17 durability overhead and recovery"


def _build(durability=None):
    """The E14 banking catalog on the serial engine, optionally durable."""
    if durability is None:
        db = ChronicleDatabase()
    else:
        db = ChronicleDatabase.open(
            durability.dir, config=DatabaseConfig(durability=durability)
        )
    db.create_chronicle(
        "transactions", BankingWorkload.CHRONICLE_SCHEMA, retention=0
    )
    txn = db.chronicle("transactions")
    db.define_view(
        GroupBySummary(scan(txn), ["acct"], [spec(SUM, "cents"), spec(COUNT)]),
        name="balance",
    )
    for kind in _KINDS:
        for i, band in enumerate(_BANDS):
            node = (
                scan(txn)
                .select(attr_eq("kind", kind))
                .select(attr_cmp("cents", "<" if band <= 0 else ">", band))
            )
            db.define_view(
                GroupBySummary(node, ["acct"], [spec(SUM, "cents"), spec(COUNT)]),
                name=f"v_{kind}_{i}",
            )
    return db


def _view_names():
    return ["balance"] + [
        f"v_{kind}_{i}" for kind in _KINDS for i in range(len(_BANDS))
    ]


def _state(db):
    return {
        name: sorted(tuple(r.values) for r in db.view(name).rows())
        for name in _view_names()
    }


def _throughput(mode):
    """Records/second through ``ingest`` for one durability mode."""
    directory = None
    if mode == "off":
        db = _build()
    else:
        directory = tempfile.mkdtemp(prefix="repro-e17-")
        db = _build(
            DurabilityConfig(mode=mode, dir=directory, fsync=FSYNC)
        )
    try:
        with GLOBAL_COUNTERS.disabled():
            for window in _windows(PRELOAD_WINDOWS):
                db.ingest("transactions", window)
            measured = _windows(MEASURED_WINDOWS, start=PRELOAD_WINDOWS)
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                for window in measured:
                    db.ingest("transactions", window)
                elapsed = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
    finally:
        db.close()
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)
    return MEASURED_WINDOWS * WINDOW * BATCH / elapsed


def run_measurements(modes=("off", "wal")):
    """Records/sec per durability mode: best of REPS, interleaved so
    transient machine noise lands on every configuration alike."""
    best = {mode: 0.0 for mode in modes}
    for _ in range(REPS):
        for mode in modes:
            best[mode] = max(best[mode], _throughput(mode))
    return best


def run_recovery():
    """The recovery leg: crash mid-stream, reopen, compare states.

    Returns ``(replayed_batches, recovery_seconds, exact, bounded)``.
    """
    workload = BankingWorkload(seed=13)
    batches = [
        list(workload.records(BATCH)) for _ in range(RECOVERY_BATCHES)
    ]

    reference = _build()
    try:
        for batch in batches:
            reference.append("transactions", batch)
        expected = _state(reference)
    finally:
        reference.close()

    directory = tempfile.mkdtemp(prefix="repro-e17-rec-")
    try:
        config = DurabilityConfig(
            mode="wal+snapshot",
            dir=directory,
            fsync=FSYNC,
            snapshot_interval_batches=SNAPSHOT_INTERVAL,
        )
        db = _build(config)
        for batch in batches:
            db.append("transactions", batch)
        db.durability.abort()  # crash: no final snapshot, no clean close

        recovered = ChronicleDatabase.open(
            directory, config=DatabaseConfig(durability=config)
        )
        try:
            report = recovered.durability.last_recovery
            exact = _state(recovered) == expected
        finally:
            recovered.close()
        bounded = report.replayed_batches <= SNAPSHOT_INTERVAL
        return report.replayed_batches, report.seconds, exact, bounded
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_fsync_latency(batches=FSYNC_LATENCY_BATCHES):
    """Per-batch append latency under ``fsync="always"`` (report-only).

    Times each individual ``append`` (admission + WAL commit at
    synchronous=FULL + maintenance of all views) and returns
    ``(p50_seconds, p99_seconds, batches)``.
    """
    workload = BankingWorkload(seed=29)
    prepared = [list(workload.records(BATCH)) for _ in range(batches)]
    directory = tempfile.mkdtemp(prefix="repro-e17-fsync-")
    latencies = []
    try:
        db = _build(DurabilityConfig(mode="wal", dir=directory, fsync="always"))
        try:
            with GLOBAL_COUNTERS.disabled():
                gc.collect()
                for batch in prepared:
                    start = time.perf_counter()
                    db.append("transactions", batch)
                    latencies.append(time.perf_counter() - start)
        finally:
            db.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, int(0.99 * (len(latencies) - 1)))]
    return p50, p99, len(latencies)


def run_report() -> str:
    results = run_measurements(modes=("off", "wal", "wal+snapshot"))
    rows = []
    for mode in ("off", "wal", "wal+snapshot"):
        rows.append(
            [mode, f"{results[mode]:,.0f}", f"{results[mode] / results['off']:.2f}x"]
        )
    replayed, seconds, exact, bounded = run_recovery()
    p50, p99, timed = run_fsync_latency()
    return (
        f"== E17  durability overhead (fsync={FSYNC}, {BATCH}-record "
        f"batches, {len(_view_names())} views) ==\n"
        + format_table(["durability", "records/s", "vs off"], rows)
        + f"\nrecovery: crash after {RECOVERY_BATCHES} batches "
        f"(snapshot every {SNAPSHOT_INTERVAL}) -> replayed {replayed} "
        f"batch(es) in {seconds * 1000:.1f}ms; "
        f"state {'EXACT' if exact else 'MISMATCH'}, "
        f"replay {'bounded' if bounded else 'UNBOUNDED'}\n"
        f"fsync=always append latency ({timed} batches, report-only): "
        f"p50 {p50 * 1000:.2f}ms  p99 {p99 * 1000:.2f}ms\n"
        f"expected: wal >= {OVERHEAD_BAR:.2f}x off; replay <= the "
        f"snapshot interval; recovered state identical to an "
        f"uninterrupted run\n"
    )


def gate() -> int:
    """Measure TRIALS times, record BENCH_e17.json, gate on the median."""
    trials = []
    rates = []
    for _ in range(TRIALS):
        results = run_measurements()
        trials.append(results["wal"] / results["off"])
        rates.append(results)
    observed = median(trials)
    spread = mad(trials)
    replayed, seconds, exact, bounded = run_recovery()
    fsync_p50, fsync_p99, fsync_batches = run_fsync_latency()

    history = load_history(RESULTS_PATH, EXPERIMENT)
    previous_best = max(
        (
            run["ratio"]
            for run in comparable_runs(history, fsync=FSYNC)
            if "ratio" in run
        ),
        default=None,
    )
    append_run(
        history,
        {
            "trials": TRIALS,
            "fsync": FSYNC,
            "batch": BATCH,
            "window": WINDOW,
            "records_per_sec": {
                "off": round(median([r["off"] for r in rates]), 1),
                "wal": round(median([r["wal"] for r in rates]), 1),
            },
            "ratio": round(observed, 3),
            "ratio_trials": [round(r, 3) for r in trials],
            "ratio_mad": round(spread, 4),
            "recovery": {
                "snapshot_interval": SNAPSHOT_INTERVAL,
                "stream_batches": RECOVERY_BATCHES,
                "replayed_batches": replayed,
                "seconds": round(seconds, 4),
                "exact": exact,
            },
            "fsync_always": {  # report-only: disk latency, never gated
                "batches": fsync_batches,
                "p50_ms": round(fsync_p50 * 1000, 3),
                "p99_ms": round(fsync_p99 * 1000, 3),
            },
        },
    )
    save_history(RESULTS_PATH, history)

    print(
        f"wal/off throughput ratio: median {observed:.3f} of {TRIALS} "
        f"trials {[round(r, 3) for r in trials]}  MAD {spread:.3f}"
    )
    print(
        f"recovery: replayed {replayed}/{RECOVERY_BATCHES} batch(es) "
        f"(interval {SNAPSHOT_INTERVAL}) in {seconds * 1000:.1f}ms, "
        f"state {'exact' if exact else 'MISMATCH'}"
    )
    print(
        f"fsync=always append latency (report-only): p50 "
        f"{fsync_p50 * 1000:.2f}ms  p99 {fsync_p99 * 1000:.2f}ms "
        f"over {fsync_batches} batches"
    )
    print(f"results appended to {RESULTS_PATH}")
    failed = False
    if observed < OVERHEAD_BAR:
        print(
            f"REGRESSION: median wal/off ratio {observed:.3f} is below "
            f"the {OVERHEAD_BAR} acceptance bar (> 15% overhead)"
        )
        failed = True
    if (
        previous_best is not None
        and observed < TOLERANCE * previous_best
        and observed < previous_best - MAD_BAND * spread
    ):
        print(
            f"REGRESSION: median ratio {observed:.3f} is below "
            f"{TOLERANCE:.0%} of the best recorded {previous_best:.3f} "
            f"and outside the {MAD_BAND:.0f}-MAD noise band ({spread:.3f})"
        )
        failed = True
    if not exact:
        print("FAIL: recovered state differs from the uninterrupted run")
        failed = True
    if not bounded:
        print(
            f"FAIL: recovery replayed {replayed} batches — more than the "
            f"{SNAPSHOT_INTERVAL}-batch snapshot interval"
        )
        failed = True
    if not failed:
        print("ok: no regression")
    return 1 if failed else 0


def test_e17_durability_overhead():
    best = 0.0
    for _ in range(TRIALS):
        results = run_measurements()
        best = max(best, results["wal"] / results["off"])
    assert best >= OVERHEAD_BAR


def test_e17_recovery_bounded_and_exact():
    replayed, _, exact, bounded = run_recovery()
    assert exact
    assert bounded
    assert replayed == RECOVERY_BATCHES % SNAPSHOT_INTERVAL


if __name__ == "__main__":
    if "--gate" in sys.argv:
        sys.exit(gate())
    sys.stdout.write(run_report())
