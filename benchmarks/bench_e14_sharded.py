"""E14 — sharded parallel maintenance vs the serial engine.

Implementation experiment (no paper claim): the ATM regime of Section 1
— many small transaction batches, each requiring views to be current
before the next transaction — on the consumer-banking workload, with a
wide view catalog (one summary per (kind, amount-band), all partitioned
by account).  The engines compared:

* ``serial``  — ``ChronicleDatabase()``: every transaction batch is its
  own maintenance event, so the per-event fixed costs (candidate
  routing, prefilter checks, plan invocation, delta assembly) are paid
  per batch;
* ``sharded`` — ``DatabaseConfig(engine="sharded", shards=N)``:
  admission and sequence stamping stay serial (the chronicle model's
  ordering requirement), but maintenance group-commits — each worker
  shard absorbs **one** coalesced event per ingest window — so those
  fixed costs are paid once per window per shard instead of once per
  batch.

Both engines consume the identical record stream through the same
``ingest(chronicle, batches)`` facade; the metric is records/second.
On a single-core host the win is the coalescing (fewer maintenance
events for the same row work); on multi-core hosts the worker threads
additionally overlap shard maintenance.

Expected shape: sharded(4) >= 2.5x serial; sharded(2) >= 1.5x; and
sharded(1) — coalescing alone, no fan-out — already well above 1x,
showing where the win comes from.  ``gate()`` persists the numbers to
``BENCH_e14.json`` (schema v2, see ``_results.py``) and applies the
noise-aware regression gate of ``check_regression.py``: median of
TRIALS with an MAD band against the best recorded speedup.

Environment knobs: ``E14_SHARDS`` selects the gated shard count
(default 4 — CI's parallel-smoke job gates at 2 with the matching bar).
"""

import gc
import os
import sys
import time

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _results import (  # noqa: E402
    append_run,
    comparable_runs,
    load_history,
    save_history,
)

from repro import ChronicleDatabase, DatabaseConfig, BankingWorkload  # noqa: E402
from repro.aggregates import COUNT, SUM, spec  # noqa: E402
from repro.algebra.ast import scan  # noqa: E402
from repro.complexity.counters import GLOBAL_COUNTERS  # noqa: E402
from repro.complexity.fitting import mad, median  # noqa: E402
from repro.complexity.harness import format_table  # noqa: E402
from repro.relational.predicate import attr_cmp, attr_eq  # noqa: E402
from repro.sca.summarize import GroupBySummary  # noqa: E402

ACCOUNTS = 256
BATCH = 6  # records per transaction batch (ATM regime: small batches)
WINDOW = 96  # batches per ingest window (the group-commit unit)
PRELOAD_WINDOWS = 3
MEASURED_WINDOWS = 12
REPS = 3  # best-of repetitions inside one measurement
TRIALS = 3  # measurement repetitions; the median gates

#: Amount bands (cents) crossed with transaction kinds -> the view
#: catalog.  Every view groups by acct, so all are partitionable.
_BANDS = (-100_000, -40_000, -20_000, -5_000, -1_000, 0, 20_000, 80_000, 150_000, 250_000)
_KINDS = ("withdrawal", "deposit", "fee", "check")

#: Shard counts measured by run_report; 0 = the serial engine.
SHARD_COUNTS = (0, 1, 2, 4)

#: Acceptance bar on the records/sec speedup vs serial, by shard count.
SPEEDUP_BARS = {1: 1.0, 2: 1.5, 4: 2.5}
TOLERANCE = 0.7  # regression: median speedup < 70% of best recorded
MAD_BAND = 3.0  # ...and more than 3 MADs below it

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e14.json"
)
EXPERIMENT = "E14 sharded parallel maintenance"


def gated_shards() -> int:
    return int(os.environ.get("E14_SHARDS", "4"))


def _build(shards, executor=None):
    """A database (serial when *shards* == 0) with the banking catalog.

    *executor* selects the shard backend (``"thread"`` default); E15
    reuses this exact catalog at ``executor="process"`` so the engines'
    numbers stay comparable.
    """
    if shards == 0:
        db = ChronicleDatabase()
    else:
        kwargs = {"engine": "sharded", "shards": shards}
        if executor is not None:
            kwargs["executor"] = executor
        db = ChronicleDatabase(config=DatabaseConfig(**kwargs))
    db.create_chronicle(
        "transactions", BankingWorkload.CHRONICLE_SCHEMA, retention=0
    )
    txn = db.chronicle("transactions")
    db.define_view(
        GroupBySummary(
            scan(txn), ["acct"], [spec(SUM, "cents"), spec(COUNT)]
        ),
        name="balance",
    )
    for kind in _KINDS:
        for i, band in enumerate(_BANDS):
            node = (
                scan(txn)
                .select(attr_eq("kind", kind))
                .select(attr_cmp("cents", "<" if band <= 0 else ">", band))
            )
            db.define_view(
                GroupBySummary(node, ["acct"], [spec(SUM, "cents"), spec(COUNT)]),
                name=f"v_{kind}_{i}",
            )
    return db


def _windows(count, start=0):
    """*count* ingest windows (each WINDOW batches of BATCH records)."""
    workload = BankingWorkload(seed=13, accounts=ACCOUNTS)
    records = list(workload.records(count * WINDOW * BATCH, start=start * WINDOW * BATCH))
    windows = []
    for w in range(count):
        base = w * WINDOW * BATCH
        windows.append(
            [records[base + b * BATCH : base + (b + 1) * BATCH] for b in range(WINDOW)]
        )
    return windows


def _throughput(shards, executor=None):
    """Records/second through ``ingest`` for one engine configuration."""
    db = _build(shards, executor=executor)
    try:
        with GLOBAL_COUNTERS.disabled():
            for window in _windows(PRELOAD_WINDOWS):
                db.ingest("transactions", window)
            measured = _windows(MEASURED_WINDOWS, start=PRELOAD_WINDOWS)
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                for window in measured:
                    db.ingest("transactions", window)
                elapsed = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
    finally:
        db.close()
    return MEASURED_WINDOWS * WINDOW * BATCH / elapsed


def run_measurements(shard_counts=SHARD_COUNTS):
    """Records/sec per engine config: best of REPS, interleaved so
    transient machine noise lands on every configuration alike."""
    best = {shards: 0.0 for shards in shard_counts}
    for _ in range(REPS):
        for shards in shard_counts:
            best[shards] = max(best[shards], _throughput(shards))
    return best


def run_report() -> str:
    results = run_measurements()
    serial = results[0]
    rows = []
    for shards in SHARD_COUNTS:
        label = "serial" if shards == 0 else f"sharded({shards})"
        rows.append(
            [label, f"{results[shards]:,.0f}", f"{results[shards] / serial:.2f}x"]
        )
    return (
        f"== E14  records/second ({BATCH}-record batches, "
        f"{WINDOW}-batch ingest windows, {1 + len(_KINDS) * len(_BANDS)} views) ==\n"
        + format_table(["engine", "records/s", "vs serial"], rows)
        + "\nexpected: sharded(4) >= 2.5x serial (group-commit coalescing; "
        "worker threads add overlap on multi-core hosts)\n"
    )


def gate(shards=None) -> int:
    """Measure TRIALS times, record BENCH_e14.json, gate on the median.

    Returns a process exit status (0 ok, 1 regression) — the E14
    counterpart of ``check_regression.py``, noise-aware the same way:
    the acceptance bar uses the median speedup, and a drop against the
    best recorded run only fails when it also clears an MAD band of
    this run's own trial spread.
    """
    if shards is None:
        shards = gated_shards()
    bar = SPEEDUP_BARS[shards]
    trials = []
    rates = []
    for _ in range(TRIALS):
        results = run_measurements(shard_counts=(0, shards))
        trials.append(results[shards] / results[0])
        rates.append(results)
    observed = median(trials)
    spread = mad(trials)

    history = load_history(RESULTS_PATH, EXPERIMENT)
    previous_best = max(
        (
            run["speedup"]
            for run in comparable_runs(history, shards=shards)
            if "speedup" in run
        ),
        default=None,
    )
    append_run(
        history,
        {
            "trials": TRIALS,
            "shards": shards,
            "batch": BATCH,
            "window": WINDOW,
            "records_per_sec": {
                "serial": round(median([r[0] for r in rates]), 1),
                "sharded": round(median([r[shards] for r in rates]), 1),
            },
            "speedup": round(observed, 3),
            "speedup_trials": [round(s, 3) for s in trials],
            "speedup_mad": round(spread, 4),
        },
    )
    save_history(RESULTS_PATH, history)

    print(
        f"sharded({shards}) speedup: median {observed:.2f}x of {TRIALS} "
        f"trials {[round(s, 2) for s in trials]}  MAD {spread:.3f}"
    )
    print(f"results appended to {RESULTS_PATH}")
    failed = False
    if observed < bar:
        print(
            f"REGRESSION: median sharded({shards}) speedup {observed:.2f}x "
            f"is below the {bar}x acceptance bar"
        )
        failed = True
    if (
        previous_best is not None
        and observed < TOLERANCE * previous_best
        and observed < previous_best - MAD_BAND * spread
    ):
        print(
            f"REGRESSION: median speedup {observed:.2f}x is below "
            f"{TOLERANCE:.0%} of the best recorded {previous_best:.2f}x "
            f"and outside the {MAD_BAND:.0f}-MAD noise band ({spread:.3f})"
        )
        failed = True
    if not failed:
        print("ok: no regression")
    return 1 if failed else 0


def test_e14_sharded_speedup():
    shards = gated_shards()
    best = 0.0
    for _ in range(TRIALS):
        results = run_measurements(shard_counts=(0, shards))
        best = max(best, results[shards] / results[0])
    assert best >= SPEEDUP_BARS[shards]


def test_e14_engines_agree():
    # Same stream through both engines: identical view states.
    states = {}
    for shards in (0, 3):
        db = _build(shards)
        for window in _windows(2):
            db.ingest("transactions", window)
        names = ["balance"] + [
            f"v_{kind}_{i}" for kind in _KINDS for i in range(len(_BANDS))
        ]
        states[shards] = {
            name: sorted(tuple(r.values) for r in db.view(name).rows())
            for name in names
        }
        db.close()
    assert states[0] == states[3]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_e14_ingest(benchmark, shards):
    db = _build(shards)
    with GLOBAL_COUNTERS.disabled():
        for window in _windows(PRELOAD_WINDOWS):
            db.ingest("transactions", window)
        windows = _windows(8, start=PRELOAD_WINDOWS)
    counter = [0]

    def action():
        counter[0] += 1
        db.ingest("transactions", windows[counter[0] % len(windows)])

    benchmark(action)


if __name__ == "__main__":
    if "--gate" in sys.argv:
        sys.exit(gate())
    sys.stdout.write(run_report())
