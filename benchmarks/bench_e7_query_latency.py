"""E7 — Section 1's motivating promise: summary queries in "subseconds",
independent of stream length.

The cellular scenario: "total number of minutes of calls made … from a
phone number", displayed at phone power-on.  Two implementations answer
the query while the stream grows:

* **persistent view** — one index lookup on the maintained view;
* **window scan** — scanning the stored chronicle window (what a
  relational system without persistent views would do; it also pays
  unbounded storage).

Expected shape: view lookups flat (a handful of probes, microseconds);
window scans linear in the stream length.
"""

import sys
import time

import pytest

from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table
from repro.core.database import ChronicleDatabase
from repro.workloads import TelecomWorkload

SIZES = [1_000, 10_000, 100_000]


def _build(size, retention):
    db = ChronicleDatabase()
    db.create_chronicle(
        "calls", [("caller", "INT"), ("seconds", "INT")], retention=retention
    )
    db.define_view(
        "DEFINE VIEW usage AS SELECT caller, SUM(seconds) AS total "
        "FROM calls GROUP BY caller"
    )
    workload = TelecomWorkload(seed=17, subscribers=200)
    with GLOBAL_COUNTERS.disabled():
        for record in workload.records(size):
            db.append("calls", {"caller": record["caller"], "seconds": record["seconds"]})
    return db


def _view_query_cost(db, caller=5_550_000):
    with GLOBAL_COUNTERS.measure() as cost:
        db.view_value("usage", (caller,), "total")
    return cost


def _scan_query_cost(db, caller=5_550_000):
    with GLOBAL_COUNTERS.measure() as cost:
        total = 0
        for row in db.chronicle("calls").rows():
            if row["caller"] == caller:
                total += row["seconds"]
    return cost


def run_report() -> str:
    rows, view_work, scan_work = [], [], []
    for size in SIZES:
        db = _build(size, retention=None)
        view_cost = _view_query_cost(db)
        scan_cost = _scan_query_cost(db)
        view_total = sum(view_cost.values())
        scan_total = sum(scan_cost.values())
        view_work.append(view_total)
        scan_work.append(scan_total)
        start = time.perf_counter()
        for _ in range(100):
            db.view_value("usage", (5_550_000,), "total")
        view_us = (time.perf_counter() - start) / 100 * 1e6
        rows.append([size, view_total, f"{view_us:.1f}", scan_total])
    return (
        "== E7  summary-query latency vs stream length ==\n"
        + format_table(
            ["stream length", "view query work", "view query µs", "window scan work"],
            rows,
        )
        + f"\nfits: view={fit_series(SIZES, view_work).model} (expected constant), "
        f"scan={fit_series(SIZES, scan_work).model} (expected linear)\n"
        "with retention=0 the scan is impossible and the view still answers\n"
    )


def test_e7_view_flat_scan_linear():
    view_work, scan_work = [], []
    for size in SIZES:
        db = _build(size, retention=None)
        view_work.append(sum(_view_query_cost(db).values()))
        scan_work.append(sum(_scan_query_cost(db).values()))
    assert is_flat(SIZES, view_work, slack=0.2)
    assert fit_series(SIZES, scan_work).model == "linear"


def test_e7_view_answers_without_storage():
    db = _build(10_000, retention=0)
    assert db.view_value("usage", (5_550_000,), "total") > 0
    assert len(db.chronicle("calls")) == 0


@pytest.mark.parametrize("size", [1_000, 100_000])
def test_e7_view_lookup(benchmark, size):
    db = _build(size, retention=0)
    benchmark(lambda: db.view_value("usage", (5_550_000,), "total"))


@pytest.mark.parametrize("size", [1_000, 100_000])
def test_e7_window_scan(benchmark, size):
    db = _build(size, retention=None)

    def scan_query():
        total = 0
        for row in db.chronicle("calls").rows():
            if row["caller"] == 5_550_000:
                total += row["seconds"]
        return total

    benchmark(scan_query)


if __name__ == "__main__":
    sys.stdout.write(run_report())
