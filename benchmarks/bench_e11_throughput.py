"""E11 — end-to-end transaction throughput by language class.

The paper's bottom line: "the transaction rate that can be supported by a
chronicle system is determined by the complexity of incremental
maintenance of its persistent views."  This experiment streams the
frequent-flyer workload through four complete systems — SCA1, SCA⋈, SCA
(cross product) and the full-recompute baseline — at growing chronicle
sizes and reports appends/second.

Expected shape: SCA1 ≥ SCA⋈ ≫ SCA ≫ recompute, with the incremental
systems' throughput flat in |C| and the baseline's collapsing.
"""

import sys
import time

import pytest

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import scan
from repro.baselines.recompute import RecomputeMaintainer
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.harness import format_table
from repro.core.group import ChronicleGroup
from repro.relational.predicate import attrs_cmp
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView
from repro.workloads import FrequentFlyerWorkload

from _common import make_customers

PRELOADS = [0, 5_000, 20_000]
MEASURED_APPENDS = 1_000
CUSTOMERS = 400


def _records(count, start=0):
    workload = FrequentFlyerWorkload(seed=37, customers=CUSTOMERS)
    return [
        {"acct": r["acct"] - 9_000_000, "miles": r["miles"]}
        for r in workload.records(count, start=start)
    ]


def _build(system):
    retention = None if system == "recompute" else 0
    group = ChronicleGroup("g")
    mileage = group.create_chronicle(
        "mileage", [("acct", "INT"), ("miles", "INT")], retention=retention
    )
    aggregates = [spec(SUM, "miles"), spec(COUNT)]
    if system == "sca1":
        summary = GroupBySummary(scan(mileage), ["acct"], aggregates)
        attach_view(PersistentView("v", summary), group)
    elif system == "sca_join":
        customers = make_customers(CUSTOMERS, ordered=True)
        node = scan(mileage).keyjoin(customers, [("acct", "acct")])
        summary = GroupBySummary(node, ["state"], aggregates)
        attach_view(PersistentView("v", summary), group)
    elif system == "sca":
        customers = make_customers(CUSTOMERS)
        node = scan(mileage).product(customers).select(
            attrs_cmp("acct", "=", "r_acct")
        )
        summary = GroupBySummary(node, ["state"], aggregates)
        attach_view(PersistentView("v", summary), group)
    else:  # recompute
        summary = GroupBySummary(scan(mileage), ["acct"], aggregates)
        RecomputeMaintainer(summary).attach(group)
    return group, mileage


def _throughput(system, preload):
    group, mileage = _build(system)
    with GLOBAL_COUNTERS.disabled():
        for record in _records(preload):
            group.append(mileage, record)
    measured = _records(MEASURED_APPENDS, start=preload)
    start = time.perf_counter()
    for record in measured:
        group.append(mileage, record)
    elapsed = time.perf_counter() - start
    return MEASURED_APPENDS / elapsed


SYSTEMS = ("sca1", "sca_join", "sca", "recompute")


def run_report() -> str:
    rows = []
    results = {}
    for preload in PRELOADS:
        row = [preload]
        for system in SYSTEMS:
            if system == "recompute" and preload > 5_000:
                row.append("-")
                continue
            rate = _throughput(system, preload)
            results[(system, preload)] = rate
            row.append(f"{rate:,.0f}")
        rows.append(row)
    return (
        "== E11  appends/second by language class vs preloaded |C| ==\n"
        + format_table(
            ["preloaded |C|", "SCA1", "SCA-join", "SCA (C×R)", "recompute"], rows
        )
        + "\nexpected ordering: SCA1 ≥ SCA-join ≫ SCA ≫ recompute; "
        "incremental systems flat in |C|, recompute collapsing\n"
    )


def test_e11_ordering_and_flatness():
    sca1 = _throughput("sca1", 0)
    sca_join = _throughput("sca_join", 0)
    sca = _throughput("sca", 0)
    recompute = _throughput("recompute", 5_000)
    assert sca1 > sca * 2
    assert sca_join > sca * 2
    assert sca > recompute
    # Flat in |C|: within 2x across the preload sweep (wall-clock slack).
    small = _throughput("sca1", 0)
    large = _throughput("sca1", 20_000)
    assert large > small / 2


@pytest.mark.parametrize("system", SYSTEMS)
def test_e11_append(benchmark, system):
    group, mileage = _build(system)
    with GLOBAL_COUNTERS.disabled():
        for record in _records(2_000):
            group.append(mileage, record)
    counter = [0]

    def action():
        counter[0] += 1
        group.append(mileage, {"acct": counter[0] % CUSTOMERS, "miles": 100})

    benchmark(action)


if __name__ == "__main__":
    sys.stdout.write(run_report())
