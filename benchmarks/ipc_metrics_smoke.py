"""CI smoke: the process executor's telemetry relay reaches ``/metrics``.

Drives a small sharded database with ``executor="process"`` and
observability installed, scrapes the live ``/metrics`` endpoint
mid-run, and asserts the cross-process accounting series exist and are
nonzero:

* ``ipc_bytes_down_total`` / ``ipc_bytes_up_total`` (per shard);
* ``ipc_encode_seconds`` / ``ipc_decode_seconds`` (per shard and
  direction, with samples);
* worker-labeled series (``worker_cpu_seconds{worker=...}`` and the
  relayed worker metrics carrying a ``worker`` label).

Exit status 0 when every assertion holds, 1 otherwise — wired into the
multicore-smoke CI job next to the E15 gate.  Runs anywhere the process
executor runs (single-core hosts included: the relay measures cost, not
scaling).
"""

import os
import re
import sys
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import ChronicleDatabase, DatabaseConfig  # noqa: E402
from repro.aggregates import COUNT, SUM, spec  # noqa: E402
from repro.algebra.ast import scan  # noqa: E402
from repro.sca.summarize import GroupBySummary  # noqa: E402

WINDOWS = 10
BATCHES = 8


def _series_values(text, name):
    """``[(labels, value)]`` for one family in Prometheus text format."""
    out = []
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest[:1] not in ("{", " "):
            continue  # a longer family name sharing the prefix
        match = re.match(r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)", rest)
        if match:
            out.append((match.group("labels") or "", float(match.group("value"))))
    return out


def main() -> int:
    workers = int(os.environ.get("E15_WORKERS", "2"))
    db = ChronicleDatabase(
        config=DatabaseConfig(
            engine="sharded",
            shards=workers,
            executor="process",
            observe=True,
            audit_mode="off",
        )
    )
    failures = []
    try:
        db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
        chron = db.chronicle("calls")
        db.define_view(
            GroupBySummary(
                scan(chron), ["caller"], [spec(SUM, "minutes"), spec(COUNT)]
            ),
            name="usage",
        )
        server = db.serve_metrics(0)
        for window in range(WINDOWS):
            db.ingest(
                "calls",
                [
                    [{"caller": (window * BATCHES + i) % 16, "minutes": i + 1}]
                    for i in range(BATCHES)
                ],
            )
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/metrics"
        ) as response:
            text = response.read().decode("utf-8")

        for name in ("ipc_bytes_down_total", "ipc_bytes_up_total"):
            series = _series_values(text, name)
            if not series:
                failures.append(f"{name}: no series exported")
            elif not all(value > 0 for _, value in series):
                failures.append(f"{name}: zero-valued series {series}")
            elif not all("shard=" in labels for labels, _ in series):
                failures.append(f"{name}: series missing the shard label")
        for name in ("ipc_encode_seconds_count", "ipc_decode_seconds_count"):
            series = _series_values(text, name)
            if not series or not any(value > 0 for _, value in series):
                failures.append(f"{name}: no samples recorded")
            directions = {
                direction
                for labels, _ in series
                for direction in re.findall(r'direction="(\w+)"', labels)
            }
            if directions != {"down", "up"}:
                failures.append(f"{name}: directions {directions} != down+up")
        cpu = _series_values(text, "worker_cpu_seconds")
        if not cpu or not all("worker=" in labels for labels, _ in cpu):
            failures.append(f"worker_cpu_seconds: missing worker-labeled series")
        relayed = [
            (labels, value)
            for labels, value in _series_values(text, "view_maintained_total")
            if "worker=" in labels
        ]
        if not relayed or not all(value > 0 for _, value in relayed):
            failures.append(
                "view_maintained_total: no nonzero worker-labeled relayed series"
            )
    finally:
        db.close()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"ok: /metrics exposes nonzero ipc_* and worker-labeled series "
        f"after {WINDOWS} process-executor windows"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
