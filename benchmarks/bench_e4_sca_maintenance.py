"""E4 — Theorem 4.4: SCA view maintenance in Time O(t·log|V|), Space O(|V|).

Two sweeps over a grouped SUM/COUNT view:

1. sweep t (tuples per append batch) at fixed |V|: maintenance work grows
   linearly with t;
2. sweep |V| (number of groups) at t=1: tuple work stays flat; the locate
   cost (B+-tree probes) grows logarithmically; and the maintenance state
   is exactly one accumulator entry per view row (space O(|V|)).
"""

import sys

import pytest

from repro.algebra.ast import scan
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table

from _common import attach, make_group, sum_view

T_VALUES = [1, 10, 100, 1000]
V_SIZES = [100, 1_000, 10_000, 100_000]


def _batch_cost(t):
    group, calls = make_group(retention=0)
    view = attach(sum_view(scan(calls), ["acct"]), group)
    with GLOBAL_COUNTERS.disabled():
        for acct in range(50):
            group.append(calls, {"acct": acct, "mins": 0})
    batch = [{"acct": i % 50, "mins": i} for i in range(t)]
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, batch)
    return cost


def _view_size_cost(groups):
    group, calls = make_group(retention=0)
    view = attach(sum_view(scan(calls), ["acct"]), group)
    with GLOBAL_COUNTERS.disabled():
        for acct in range(groups):
            group.append(calls, {"acct": acct, "mins": 1})
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": groups // 2, "mins": 1})
    return cost, len(view._state), len(view)


def run_report() -> str:
    t_rows, t_work = [], []
    for t in T_VALUES:
        cost = _batch_cost(t)
        work = cost["tuple_op"] + cost["aggregate_step"]
        t_work.append(work)
        t_rows.append([t, work, cost["index_probe"]])
    v_rows, v_probes = [], []
    for size in V_SIZES:
        cost, state_entries, view_rows = _view_size_cost(size)
        v_probes.append(cost["index_probe"])
        v_rows.append(
            [size, cost["tuple_op"], cost["index_probe"], state_entries, view_rows]
        )
    return (
        "== E4  Theorem 4.4: SCA maintenance O(t log|V|), space O(|V|) ==\n"
        + format_table(["t (batch size)", "fold work", "probes"], t_rows)
        + f"\nfit in t: {fit_series(T_VALUES, t_work).model} (expected linear)\n\n"
        + format_table(
            ["|V| groups", "tuple_ops", "probes", "state entries", "view rows"], v_rows
        )
        + f"\nfit of probes in |V|: {fit_series(V_SIZES, v_probes).model} "
        "(expected log); state entries == view rows (space O(|V|))\n"
    )


def test_e4_linear_in_batch_size():
    work = [
        _batch_cost(t)["tuple_op"] + _batch_cost(t)["aggregate_step"]
        for t in T_VALUES
    ]
    assert fit_series(T_VALUES, work).model == "linear"


def test_e4_log_locate_flat_work_in_view_size():
    probes, work = [], []
    for size in V_SIZES:
        cost, state_entries, view_rows = _view_size_cost(size)
        probes.append(cost["index_probe"])
        work.append(cost["tuple_op"])
        assert state_entries == view_rows  # space O(|V|), exactly
    assert is_flat(V_SIZES, work, slack=0.05)
    assert probes[-1] <= probes[0] + 12  # additive levels only


@pytest.mark.parametrize("t", [1, 100])
def test_e4_batch_append(benchmark, t):
    group, calls = make_group(retention=0)
    attach(sum_view(scan(calls), ["acct"]), group)
    counter = [0]

    def action():
        counter[0] += 1
        batch = [
            {"acct": i % 50, "mins": counter[0] * 1000 + i} for i in range(t)
        ]
        group.append(calls, batch)

    benchmark(action)


if __name__ == "__main__":
    sys.stdout.write(run_report())
