"""E5 — Theorem 4.5: SCA1 ∈ IM-Constant, SCA⋈ ∈ IM-log(R), SCA ∈ IM-R^k.

The *same* summary question ("total minutes per customer state") is
expressed in the three languages:

* SCA1   — state carried on the chronicle record itself (no relation);
* SCA⋈  — key join to a customers relation with an ordered unique index;
* SCA    — cross product with the relation plus a selection (the join
           rewritten without the key guarantee).

Sweep |R| and fit the per-append cost: the fitted models must come out
constant / log / polynomial(≥linear) respectively — the empirical form of
the Theorem 4.5 classification.
"""

import sys

import pytest

from repro.aggregates import SUM, spec
from repro.algebra.ast import scan
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table
from repro.core.group import ChronicleGroup
from repro.relational.predicate import attrs_cmp
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView

from _common import make_customers

R_SIZES = [100, 1_000, 10_000, 100_000]


def _sca1_system(r):
    group = ChronicleGroup("g")
    calls = group.create_chronicle(
        "calls", [("acct", "INT"), ("state", "STR"), ("mins", "INT")], retention=0
    )
    view = PersistentView(
        "v", GroupBySummary(scan(calls), ["state"], [spec(SUM, "mins")])
    )
    attach_view(view, group)
    return group, calls, {"acct": r // 2, "state": "NJ", "mins": 1}


def _sca_join_system(r):
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")], retention=0)
    customers = make_customers(r, ordered=True)
    node = scan(calls).keyjoin(customers, [("acct", "acct")])
    view = PersistentView("v", GroupBySummary(node, ["state"], [spec(SUM, "mins")]))
    attach_view(view, group)
    return group, calls, {"acct": r // 2, "mins": 1}


def _sca_system(r):
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")], retention=0)
    customers = make_customers(r)
    node = scan(calls).product(customers).select(attrs_cmp("acct", "=", "r_acct"))
    view = PersistentView("v", GroupBySummary(node, ["state"], [spec(SUM, "mins")]))
    attach_view(view, group)
    return group, calls, {"acct": r // 2, "mins": 1}


_SYSTEMS = {"SCA1": _sca1_system, "SCA-join": _sca_join_system, "SCA": _sca_system}


def _cost(language, r):
    group, calls, record = _SYSTEMS[language](r)
    group.append(calls, dict(record))  # warm up (first group insert)
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, dict(record, mins=2))
    return cost


def run_report() -> str:
    rows = []
    series = {name: [] for name in _SYSTEMS}
    probe_series = {name: [] for name in _SYSTEMS}
    for r in R_SIZES:
        row = [r]
        for name in ("SCA1", "SCA-join", "SCA"):
            if name == "SCA" and r > 10_000:
                series[name].append(None)
                row.append("-")
                continue
            cost = _cost(name, r)
            work = cost["tuple_op"] + cost["index_probe"]
            series[name].append(work)
            probe_series[name].append(cost["index_probe"])
            row.append(work)
        rows.append(row)
    sca1_fit = fit_series(R_SIZES, series["SCA1"]).model
    join_fit = fit_series(
        R_SIZES, probe_series["SCA-join"], models=("constant", "log", "linear")
    ).model
    sca_points = [(r, w) for r, w in zip(R_SIZES, series["SCA"]) if w is not None]
    sca_fit = fit_series([p[0] for p in sca_points], [p[1] for p in sca_points]).model
    return (
        "== E5  Theorem 4.5: per-append work vs |R| by language ==\n"
        + format_table(["|R|", "SCA1", "SCA-join", "SCA"], rows)
        + f"\nfits: SCA1={sca1_fit} (expected constant → IM-Constant), "
        f"SCA-join probes={join_fit} (expected log → IM-log(R)), "
        f"SCA={sca_fit} (expected linear+ → IM-R^k)\n"
    )


def test_e5_sca1_constant():
    work = [_cost("SCA1", r)["tuple_op"] + _cost("SCA1", r)["index_probe"]
            for r in R_SIZES]
    assert is_flat(R_SIZES, work, slack=0.05)


def test_e5_sca_join_logarithmic():
    probes = [_cost("SCA-join", r)["index_probe"] for r in R_SIZES]
    # 1000x growth in |R| adds only a few tree levels.
    assert probes[-1] <= probes[0] + 12
    assert probes[-1] > probes[0]  # but it does grow (it is not constant)


def test_e5_sca_polynomial():
    sizes = [100, 1_000, 10_000]
    work = [_cost("SCA", r)["tuple_op"] for r in sizes]
    assert fit_series(sizes, work).model in ("linear", "nlogn", "quadratic")
    assert work[-1] > work[0] * 50


@pytest.mark.parametrize("language", ["SCA1", "SCA-join"])
def test_e5_append_large_relation(benchmark, language):
    group, calls, record = _SYSTEMS[language](100_000)
    counter = [0]

    def action():
        counter[0] += 1
        group.append(calls, dict(record, mins=counter[0]))

    benchmark(action)


def test_e5_append_sca_product(benchmark):
    group, calls, record = _SYSTEMS["SCA"](1_000)
    counter = [0]

    def action():
        counter[0] += 1
        group.append(calls, dict(record, mins=counter[0]))

    benchmark(action)


if __name__ == "__main__":
    sys.stdout.write(run_report())
