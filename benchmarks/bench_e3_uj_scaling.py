"""E3 — Theorem 4.2's shape in u, j and |R|.

The theorem's per-append bounds:

* CA   (relation cross products):  Time = O((u·|R|)^j · log|R|)
* CA⋈ (key joins):                Time = O(u^j · log|R|)
* CA1  (no relation operators):    Time = O(u^j)

Three sweeps confirm the separations:

1. sweep j (number of C×R products) at fixed |R|: CA work grows
   geometrically with ratio ~|R| per extra product;
2. sweep |R| at j=1: CA work ~linear in |R|, CA⋈ flat tuple work with
   ≤ log probe growth, CA1 exactly flat (it never touches R);
3. sweep u (unions): delta size grows linearly with the number of scans
   feeding the union tree.
"""

import sys

import pytest

from repro.algebra.ast import Node, scan
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table

from _common import attach, make_customers, make_group, one_append, sum_view

R_SIZES = [10, 100, 1000]
J_VALUES = [0, 1, 2]
U_VALUES = [1, 2, 4, 8]


def _system(j=0, u=1, r=100, language="ca"):
    """A view with u parallel scans unioned and j relation operators."""
    group, calls = make_group(retention=0)
    node: Node = scan(calls)
    for _ in range(u - 1):
        node = node.union(scan(calls))
    customers = make_customers(r, ordered=(language == "ca_join"))
    for _ in range(j):
        if language == "ca":
            node = node.product(customers)
        elif language == "ca_join":
            node = node.keyjoin(customers, [("acct", "acct")])
    view = attach(sum_view(node, ["acct"]), group)
    return group, calls, view


def _append_cost(group, calls):
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": 1, "mins": 1})
    return cost


def run_report() -> str:
    # Sweep 1: j at fixed |R| for CA.
    j_rows, j_work = [], []
    for j in J_VALUES:
        group, calls, _ = _system(j=j, r=50, language="ca")
        cost = _append_cost(group, calls)
        j_work.append(cost["tuple_op"])
        j_rows.append([j, cost["tuple_op"]])
    # Sweep 2: |R| at j=1 per language.
    r_rows = []
    series = {"ca": [], "ca_join": [], "ca1": []}
    for r in R_SIZES:
        row = [r]
        for language in ("ca", "ca_join", "ca1"):
            group, calls, _ = _system(j=0 if language == "ca1" else 1, r=r,
                                      language=language)
            cost = _append_cost(group, calls)
            series[language].append(cost["tuple_op"])
            row.append(cost["tuple_op"])
        r_rows.append(row)
    # Sweep 3: u.
    u_rows, u_work = [], []
    for u in U_VALUES:
        group, calls, _ = _system(u=u, j=0)
        cost = _append_cost(group, calls)
        u_work.append(cost["tuple_op"])
        u_rows.append([u, cost["tuple_op"]])
    return (
        "== E3  Theorem 4.2 shape in j, |R|, u ==\n"
        + format_table(["j (C×R products)", "tuple_ops (|R|=50)"], j_rows)
        + f"\ngeometric growth ratios: "
        f"{[round(b / max(a, 1), 1) for a, b in zip(j_work, j_work[1:])]}"
        " (expected ~|R| per extra product)\n\n"
        + format_table(["|R|", "CA tuple_ops", "CA-join tuple_ops", "CA1 tuple_ops"], r_rows)
        + f"\nfits in |R|: CA={fit_series(R_SIZES, series['ca']).model} (exp linear), "
        f"CA-join={fit_series(R_SIZES, series['ca_join']).model} (exp constant), "
        f"CA1={fit_series(R_SIZES, series['ca1']).model} (exp constant)\n\n"
        + format_table(["u (unions of scans)", "tuple_ops"], u_rows)
        + f"\nfit in u: {fit_series(U_VALUES, u_work).model} (expected linear)\n"
    )


def test_e3_j_growth_is_geometric_in_relation_size():
    work = []
    for j in J_VALUES:
        group, calls, _ = _system(j=j, r=50, language="ca")
        work.append(_append_cost(group, calls)["tuple_op"])
    assert work[1] > work[0] * 20   # one product ≈ |R| multiplier
    assert work[2] > work[1] * 20


def test_e3_relation_size_separation():
    ca, ca_join = [], []
    for r in R_SIZES:
        group, calls, _ = _system(j=1, r=r, language="ca")
        ca.append(_append_cost(group, calls)["tuple_op"])
        group, calls, _ = _system(j=1, r=r, language="ca_join")
        ca_join.append(_append_cost(group, calls)["tuple_op"])
    assert fit_series(R_SIZES, ca).model in ("linear", "nlogn")
    assert is_flat(R_SIZES, ca_join, slack=0.05)


def test_e3_union_growth_is_linear():
    work = []
    for u in U_VALUES:
        group, calls, _ = _system(u=u, j=0)
        work.append(_append_cost(group, calls)["tuple_op"])
    assert fit_series(U_VALUES, work).model == "linear"


@pytest.mark.parametrize("language,j", [("ca1", 0), ("ca_join", 1), ("ca", 1)])
def test_e3_append_by_language(benchmark, language, j):
    group, calls, _ = _system(j=j, r=1000, language=language)
    benchmark(one_append(group, calls, acct=1))


if __name__ == "__main__":
    sys.stdout.write(run_report())
