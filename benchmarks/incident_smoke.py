"""Incident smoke drill — force failures, verify the flight recorder.

CI's black-box check: deliberately break the two invariants the health
layer guards and assert that each produces a **readable incident
bundle** (the files the workflow uploads as artifacts):

1. **auditor violation** — a view's maintenance path smuggles a
   chronicle read under ``audit_mode="raise"``; the append aborts with
   :class:`~repro.errors.MaintenanceAuditError` and the recorder dumps
   ``incident-*-auditor-violation.json`` *before* the exception
   propagates;
2. **shard-worker error** — the sharded engine's dispatch fan-out
   raises :class:`~repro.errors.EngineError`; the recorder dumps
   ``incident-*-shard-worker-error.json`` with per-shard watermarks,
   and the subsequent health evaluation reports ``FAILING`` (hard
   engine-error breach).

Each bundle is then re-read and validated: parseable JSON, the ring's
recent spans carry trace ids, and the context holds watermarks plus
the metrics snapshot.  Exits non-zero on any missing piece.

Set ``INCIDENT_DIR`` to choose the artifact directory (default
``incident-artifacts``).
"""

import json
import os
import sys

from repro import ChronicleDatabase, DatabaseConfig
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.errors import EngineError, MaintenanceAuditError
from repro.obs.health import SloPolicy


def build_db(incident_dir, **config):
    db = ChronicleDatabase(config=DatabaseConfig(**config))
    db.create_chronicle(
        "calls", [("caller", "INT"), ("minutes", "INT")], retention=0
    )
    db.define_view(
        "DEFINE VIEW usage AS "
        "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
    )
    db.enable_observability(
        audit=db.config.audit_mode, incident_dir=incident_dir
    )
    return db


def drill_auditor_violation(incident_dir):
    """A leaky maintenance path under audit_mode='raise'."""
    db = build_db(incident_dir, audit_mode="raise")
    try:
        for i in range(16):
            db.append("calls", {"caller": i % 4, "minutes": i + 1})

        view = db.view("usage")
        original = view.apply_delta

        def leaky(delta):
            GLOBAL_COUNTERS.count("chronicle_read")  # the smuggled read
            return original(delta)

        view.apply_delta = leaky
        try:
            db.append("calls", {"caller": 9, "minutes": 9})
        except MaintenanceAuditError as exc:
            print(f"auditor drill: append aborted as expected ({exc})")
        else:
            raise SystemExit("auditor drill: expected MaintenanceAuditError")
    finally:
        db.observability.uninstall()
        db.close()


def drill_shard_worker_error(incident_dir):
    """A worker failure in the sharded dispatch fan-out."""
    db = build_db(
        incident_dir,
        engine="sharded",
        shards=2,
        executor="thread",
        slo=SloPolicy(),
        audit_mode="off",
    )
    try:
        for i in range(16):
            db.append("calls", {"caller": i % 4, "minutes": i + 1})

        def exploding(tasks):
            raise EngineError("injected worker failure (incident drill)")

        db._maintainer.run = exploding
        try:
            db.append("calls", {"caller": 9, "minutes": 9})
        except EngineError as exc:
            print(f"worker drill: append aborted as expected ({exc})")
        else:
            raise SystemExit("worker drill: expected EngineError")

        report = db.health()
        print(f"worker drill: health now {report.status}")
        if report.status != "FAILING":
            raise SystemExit(
                f"worker drill: expected FAILING health, got {report.status}"
            )
    finally:
        db.observability.uninstall()
        db.close()


def validate_bundle(path):
    with open(path) as handle:
        bundle = json.load(handle)
    for key in ("reason", "at", "sequence", "events", "context"):
        if key not in bundle:
            raise SystemExit(f"{path}: missing bundle key {key!r}")
    spans = [e for e in bundle["events"] if e.get("kind") == "span"]
    if not spans:
        raise SystemExit(f"{path}: no spans on the flight-recorder tape")
    if not all("trace_id" in span for span in spans):
        raise SystemExit(f"{path}: spans without trace ids")
    context = bundle["context"]
    if "watermarks" not in context or "snapshot" not in context:
        raise SystemExit(f"{path}: context missing watermarks/snapshot")
    print(
        f"  {os.path.basename(path)}: reason={bundle['reason']!r} "
        f"events={len(bundle['events'])} spans={len(spans)} "
        f"watermarks={context['watermarks']}"
    )


def main():
    incident_dir = os.environ.get("INCIDENT_DIR", "incident-artifacts")
    drill_auditor_violation(incident_dir)
    drill_shard_worker_error(incident_dir)

    bundles = sorted(
        os.path.join(incident_dir, name)
        for name in os.listdir(incident_dir)
        if name.startswith("incident-") and name.endswith(".json")
    )
    reasons = {os.path.basename(b).split("-", 2)[2].rsplit(".", 1)[0] for b in bundles}
    expected = {"auditor-violation", "shard-worker-error"}
    if not expected <= reasons:
        raise SystemExit(
            f"expected bundles for {sorted(expected)}, found {sorted(reasons)}"
        )
    print(f"validating {len(bundles)} bundle(s) in {incident_dir}/")
    for bundle in bundles:
        validate_bundle(bundle)
    print("incident smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
