"""E15 — multi-core scaling of the process executor.

Implementation experiment (no paper claim): the same ATM-regime banking
catalog as E14 (small transaction batches, group-commit ingest windows,
41 account-partitioned views), but comparing *where* shard maintenance
executes:

* ``serial``     — ``ChronicleDatabase()``: the baseline engine;
* ``thread(N)``  — the sharded engine's worker-thread pool.  Python's
  GIL serializes the actual fold work, so its win is group-commit
  coalescing plus whatever little overlap the interpreter allows;
* ``process(N)`` — worker processes holding portable shard replicas
  (:mod:`repro.parallel.worker`).  Each replica maintains its views in
  its own interpreter, so on a multi-core host the fold work itself
  runs concurrently — true multi-core maintenance.

Worker counts sweep 1/2/4, capped at ``os.cpu_count()`` (a worker count
above the core count measures oversubscription, not scaling).  Replica
installation happens during the untimed preload, so the numbers measure
steady-state maintenance, not process start-up.

Expected shape on a >= 2-core host: process(N>=2) beats thread(N) —
the GIL bounds the thread executor near coalescing-only throughput
while processes scale with cores — and process(2) >= 1.5x serial.
On a single-core host the sweep degenerates to process(1) and the gate
**skips with a notice** (recorded in ``BENCH_e15.json`` with
``"skipped": true``): scaling cannot be demonstrated without cores,
and a hard failure there would just teach people to ignore the gate.

``gate()`` persists results to ``BENCH_e15.json`` (schema v2; the
machine fingerprint's ``cpus`` plus the payload's ``executor``/
``workers`` keep single-core and multi-core history separate — see
``comparable_runs`` in ``_results.py``) and applies the same
median/MAD noise policy as E12/E14.  The sharded≡serial equivalence
check runs under the process executor even on one core.

The summary table additionally reports the process executor's IPC cost
from a separate short instrumented pass (telemetry relay on): ``ipc
MB/s`` — bytes crossing the process boundary per wall-clock second in
both directions — and ``enc+dec %`` — the share of the windows' end-to-
end visibility time spent pickling (``ipc_encode_seconds`` +
``ipc_decode_seconds`` over ``ingest_visibility_seconds``).  The
instrumented pass never contaminates the gated throughput numbers.

Environment knobs: ``E15_WORKERS`` selects the gated worker count
(default 2 — CI's multicore-smoke job), ``E15_TRIALS`` the measurement
repetitions.
"""

import gc
import os
import sys
import time

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _results import (  # noqa: E402
    append_run,
    comparable_runs,
    load_history,
    save_history,
)
from bench_e14_sharded import (  # noqa: E402
    BATCH,
    MEASURED_WINDOWS,
    PRELOAD_WINDOWS,
    WINDOW,
    _BANDS,
    _KINDS,
    _build,
    _windows,
)

from repro.complexity.counters import GLOBAL_COUNTERS  # noqa: E402
from repro.complexity.fitting import mad, median  # noqa: E402
from repro.complexity.harness import format_table  # noqa: E402

REPS = 2  # best-of repetitions inside one measurement
TRIALS = 3  # measurement repetitions; the median gates

#: Worker counts swept by run_report, capped at the core count.
WORKER_COUNTS = (1, 2, 4)

#: Acceptance bar on the process(N) records/sec speedup vs serial.
SPEEDUP_BARS = {1: 0.5, 2: 1.5, 4: 2.0}
TOLERANCE = 0.7  # regression: median speedup < 70% of best recorded
MAD_BAND = 3.0  # ...and more than 3 MADs below it

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e15.json"
)
EXPERIMENT = "E15 multi-core process executor"


def gated_workers() -> int:
    return int(os.environ.get("E15_WORKERS", "2"))


def trials() -> int:
    return int(os.environ.get("E15_TRIALS", str(TRIALS)))


def swept_workers():
    """The worker counts this host can meaningfully measure."""
    cpus = os.cpu_count() or 1
    return tuple(n for n in WORKER_COUNTS if n <= max(cpus, 1)) or (1,)


def _throughput(executor, workers):
    """Records/second through ``ingest`` for one executor configuration.

    Mirrors E14's measurement loop; replica installation (process
    executor) happens during the untimed preload.
    """
    db = _build(0 if executor == "serial" else workers, executor=executor)
    try:
        with GLOBAL_COUNTERS.disabled():
            for window in _windows(PRELOAD_WINDOWS):
                db.ingest("transactions", window)
            measured = _windows(MEASURED_WINDOWS, start=PRELOAD_WINDOWS)
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                for window in measured:
                    db.ingest("transactions", window)
                elapsed = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
    finally:
        db.close()
    return MEASURED_WINDOWS * WINDOW * BATCH / elapsed


def _ipc_profile(executor, workers, windows=20):
    """One short instrumented pass measuring cross-process IPC cost.

    Returns ``(ipc bytes/sec, encode+decode share of window time)`` for
    the process executor, ``None`` for executors with no process
    boundary.  Runs separately from the throughput measurements — the
    telemetry relay this reads costs tracing overhead, which must never
    contaminate the gated records/sec numbers.
    """
    if executor != "process":
        return None
    db = _build(workers, executor=executor)
    try:
        obs = db.enable_observability(audit="off")
        try:
            start = time.perf_counter()
            for window in _windows(windows):
                db.ingest("transactions", window)
            elapsed = time.perf_counter() - start
            metrics = obs.metrics
            total_bytes = sum(
                instrument.value
                for name in ("ipc_bytes_down_total", "ipc_bytes_up_total")
                for _, instrument in metrics.series(name)
            )
            pickling = 0.0
            for name in ("ipc_encode_seconds", "ipc_decode_seconds"):
                merged = metrics.merged_histogram(name)
                if merged is not None:
                    pickling += merged.sum
            visibility = metrics.merged_histogram("ingest_visibility_seconds")
            window_seconds = (
                visibility.sum if visibility is not None and visibility.count else 0.0
            )
            share = pickling / window_seconds if window_seconds > 0 else 0.0
            return total_bytes / elapsed, share
        finally:
            obs.uninstall()
    finally:
        db.close()


def run_measurements(configs):
    """Records/sec per (executor, workers): best of REPS, interleaved so
    transient machine noise lands on every configuration alike."""
    best = {config: 0.0 for config in configs}
    for _ in range(REPS):
        for config in configs:
            best[config] = max(best[config], _throughput(*config))
    return best


def run_report() -> str:
    configs = [("serial", 0)]
    for workers in swept_workers():
        configs.append(("thread", workers))
        configs.append(("process", workers))
    results = run_measurements(configs)
    serial = results[("serial", 0)]
    rows = []
    for config in configs:
        executor, workers = config
        label = "serial" if executor == "serial" else f"{executor}({workers})"
        profile = _ipc_profile(executor, workers)
        if profile is None:
            ipc_rate, ipc_share = "-", "-"
        else:
            ipc_rate = f"{profile[0] / 1e6:.2f}"
            ipc_share = f"{profile[1] * 100:.1f}%"
        rows.append(
            [
                label,
                f"{results[config]:,.0f}",
                f"{results[config] / serial:.2f}x",
                ipc_rate,
                ipc_share,
            ]
        )
    cpus = os.cpu_count() or 1
    note = (
        "\nexpected: process(N>=2) beats thread(N) — replicas fold in "
        "parallel interpreters while the GIL serializes threads\n"
        "ipc MB/s and enc+dec % come from a separate instrumented pass "
        "(telemetry relay on), not the timed throughput runs\n"
        if cpus >= 2
        else "\nnote: single-core host — the sweep cannot show scaling; "
        "run on >= 2 cores for the E15 claim\n"
    )
    return (
        f"== E15  records/second by executor ({cpus} cores, "
        f"{1 + len(_KINDS) * len(_BANDS)} views) ==\n"
        + format_table(
            ["executor", "records/s", "vs serial", "ipc MB/s", "enc+dec %"], rows
        )
        + note
    )


def check_equivalence(workers=2) -> None:
    """Sharded(process) must equal serial view-for-view (always runs)."""
    states = {}
    for executor in ("serial", "process"):
        db = _build(0 if executor == "serial" else workers, executor=executor)
        try:
            for window in _windows(2):
                db.ingest("transactions", window)
            names = ["balance"] + [
                f"v_{kind}_{i}" for kind in _KINDS for i in range(len(_BANDS))
            ]
            states[executor] = {
                name: sorted(tuple(r.values) for r in db.view(name).rows())
                for name in names
            }
        finally:
            db.close()
    assert states["serial"] == states["process"], (
        "process-executor view state diverged from serial"
    )


def gate(workers=None) -> int:
    """Measure, record BENCH_e15.json, gate on the median speedup.

    Exit status 0 when the gate passes **or is skipped** (single-core
    host — recorded as such), 1 on a regression.  The equivalence check
    always runs: a correctness break fails even where scaling cannot be
    measured.
    """
    if workers is None:
        workers = gated_workers()
    cpus = os.cpu_count() or 1

    check_equivalence(workers=min(workers, 2))
    print(f"equivalence: process-executor state == serial state  ok")

    history = load_history(RESULTS_PATH, EXPERIMENT)
    if cpus < 2:
        append_run(
            history,
            {
                "executor": "process",
                "workers": workers,
                "skipped": True,
                "reason": f"single-core host ({cpus} cpu): scaling not measurable",
            },
        )
        save_history(RESULTS_PATH, history)
        print(
            f"SKIPPED: {cpus}-core host cannot demonstrate multi-core "
            f"scaling; equivalence checked, gate recorded as skipped in "
            f"{RESULTS_PATH}"
        )
        return 0

    bar = SPEEDUP_BARS.get(workers, SPEEDUP_BARS[2])
    n_trials = trials()
    configs = [("serial", 0), ("thread", workers), ("process", workers)]
    speedups, thread_speedups, rates = [], [], []
    for _ in range(n_trials):
        results = run_measurements(configs)
        serial = results[("serial", 0)]
        speedups.append(results[("process", workers)] / serial)
        thread_speedups.append(results[("thread", workers)] / serial)
        rates.append(results)
    observed = median(speedups)
    thread_observed = median(thread_speedups)
    spread = mad(speedups)

    previous_best = max(
        (
            run["speedup"]
            for run in comparable_runs(
                history, executor="process", workers=workers
            )
            if "speedup" in run
        ),
        default=None,
    )
    append_run(
        history,
        {
            "trials": n_trials,
            "executor": "process",
            "workers": workers,
            "batch": BATCH,
            "window": WINDOW,
            "records_per_sec": {
                "serial": round(median([r[("serial", 0)] for r in rates]), 1),
                "thread": round(median([r[("thread", workers)] for r in rates]), 1),
                "process": round(median([r[("process", workers)] for r in rates]), 1),
            },
            "speedup": round(observed, 3),
            "thread_speedup": round(thread_observed, 3),
            "speedup_trials": [round(s, 3) for s in speedups],
            "speedup_mad": round(spread, 4),
        },
    )
    save_history(RESULTS_PATH, history)

    print(
        f"process({workers}) speedup: median {observed:.2f}x of {n_trials} "
        f"trials {[round(s, 2) for s in speedups]}  MAD {spread:.3f}  "
        f"(thread({workers}): {thread_observed:.2f}x)"
    )
    print(f"results appended to {RESULTS_PATH}")
    failed = False
    if observed < bar:
        print(
            f"REGRESSION: median process({workers}) speedup {observed:.2f}x "
            f"is below the {bar}x acceptance bar"
        )
        failed = True
    if workers >= 2 and observed < thread_observed - MAD_BAND * spread:
        print(
            f"REGRESSION: process({workers}) at {observed:.2f}x does not "
            f"beat thread({workers}) at {thread_observed:.2f}x on a "
            f"{cpus}-core host (outside the {MAD_BAND:.0f}-MAD band)"
        )
        failed = True
    if (
        previous_best is not None
        and observed < TOLERANCE * previous_best
        and observed < previous_best - MAD_BAND * spread
    ):
        print(
            f"REGRESSION: median speedup {observed:.2f}x is below "
            f"{TOLERANCE:.0%} of the best recorded {previous_best:.2f}x "
            f"and outside the {MAD_BAND:.0f}-MAD noise band ({spread:.3f})"
        )
        failed = True
    if not failed:
        print("ok: no regression")
    return 1 if failed else 0


def test_e15_engines_agree():
    check_equivalence(workers=2)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="multi-core scaling needs >= 2 cores"
)
def test_e15_process_beats_thread():
    workers = min(gated_workers(), os.cpu_count() or 1)
    best_process, best_thread = 0.0, 0.0
    for _ in range(TRIALS):
        results = run_measurements(
            [("thread", workers), ("process", workers)]
        )
        best_process = max(best_process, results[("process", workers)])
        best_thread = max(best_thread, results[("thread", workers)])
    assert best_process >= best_thread


if __name__ == "__main__":
    if "--gate" in sys.argv:
        sys.exit(gate())
    sys.stdout.write(run_report())
