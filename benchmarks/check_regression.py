"""Persist E12 throughput numbers and flag regressions across runs.

Runs the E12 measurement (compiled plans vs tree interpreter, see
``bench_e12_compiled_plans.py``) ``TRIALS`` times and gates on the
**median** speedup with an MAD-based noise band, so one background
process stealing a core cannot fail the build — the recorded history
(``BENCH_e12.json``, schema v2 with machine fingerprints, see
``_results.py``) showed single-run numbers jittering a few percent
between identical checkouts.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--ledger]

Exit status 1 when the median compiled speedup fails the 1.5x
acceptance bar, or drops below ``TOLERANCE`` of the best previously
recorded speedup *and* the drop exceeds 3 MADs of this run's own trial
spread (both conditions — a tight-spread run just under the tolerance
line is a real regression; a wide-spread run is noise until it also
clears the MAD band).

With ``--ledger`` (opt-in: it runs one extra instrumented pass, so the
default CI gate stays exactly as cheap as before), a per-operator
:class:`~repro.obs.costmodel.CostLedger` snapshot of the compiled
engine is recorded alongside the throughput numbers in
``BENCH_e12_costs.json``, marked green or failed.  On a gate failure
the snapshot is diffed against the last green run from a comparable
machine and the failure message names the slowest-moving operator —
"the gate failed" becomes "the gate failed and Select inside
compiled/GroupBySeq got 1.8x slower".
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_e12_compiled_plans import (  # noqa: E402
    MODES,
    PRELOAD_EVENTS,
    _batches,
    _build,
    run_measurements,
)
from _results import (  # noqa: E402
    append_run,
    comparable_runs,
    load_history,
    save_history,
)

from repro.complexity.fitting import mad, median  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e12.json"
)
EXPERIMENT = "E12 compiled maintenance plans"
TRIALS = 3  # full measurement repetitions; the median gates
SPEEDUP_BAR = 1.5  # acceptance: compiled >= 1.5x interpreted
TOLERANCE = 0.7  # regression: median speedup < 70% of best recorded
MAD_BAND = 3.0  # ...and more than 3 MADs below it

LEDGER_PATH = os.path.join(os.path.dirname(RESULTS_PATH), "BENCH_e12_costs.json")
LEDGER_EXPERIMENT = "E12 per-operator cost ledger"
LEDGER_EVENTS = 30  # instrumented window per snapshot
LEDGER_KEEP = 20  # snapshots retained in the sidecar file
LEDGER_MIN_RATIO = 1.05  # name an operator only past 5% movement


def collect_ledger(events=LEDGER_EVENTS):
    """A cost-ledger snapshot from one instrumented compiled-engine pass."""
    from repro.obs import Observability
    from repro.obs import runtime as obs_runtime

    group, mileage = _build("compiled")
    for batch in _batches(PRELOAD_EVENTS):
        group.append(mileage, batch)
    obs = Observability(trace=True, trace_operators=True, audit="off")
    with obs_runtime.installed(obs):
        for batch in _batches(events, start=PRELOAD_EVENTS):
            group.append(mileage, batch)
    return obs.cost_ledger.as_dict()


def aggregate_costs(snapshot):
    """Mean seconds per (operator, shape), summed across the 50 views."""
    totals = {}
    for entry in snapshot.get("entries", []):
        key = (entry["operator"], entry["shape"])
        seconds, calls = totals.get(key, (0.0, 0))
        totals[key] = (seconds + entry["seconds"], calls + entry["calls"])
    return {key: s / c for key, (s, c) in totals.items() if c}


def slowest_moving_operator(current, baseline):
    """The (operator, shape, old_mean, new_mean) that regressed the most.

    Compares mean per-call seconds between two ledger snapshots and
    returns the operator with the largest slowdown ratio, or ``None``
    when nothing moved past ``LEDGER_MIN_RATIO``.
    """
    cur = aggregate_costs(current)
    base = aggregate_costs(baseline)
    worst, worst_ratio = None, LEDGER_MIN_RATIO
    for key, mean in cur.items():
        old = base.get(key)
        if not old or old <= 0.0:
            continue
        ratio = mean / old
        if ratio > worst_ratio:
            worst_ratio = ratio
            worst = (key[0], key[1], old, mean)
    return worst


def run_trials(trials=TRIALS):
    """Per-mode appends/sec and speedups across *trials* measurements."""
    raw = [run_measurements() for _ in range(trials)]
    rates = {mode: [trial[mode] for trial in raw] for mode in MODES}
    speedups = {
        mode: [trial[mode] / trial["interpreted"] for trial in raw] for mode in MODES
    }
    return rates, speedups


def attribute_failure(snapshot):
    """Diff *snapshot* against the last green ledger; print the verdict."""
    history = load_history(LEDGER_PATH, LEDGER_EXPERIMENT)
    greens = [run for run in comparable_runs(history) if run.get("green")]
    if not greens:
        print("ledger: no green baseline from a comparable machine to diff against")
        return
    baseline = greens[-1]
    worst = slowest_moving_operator(snapshot, baseline["ledger"])
    if worst is None:
        print(
            "ledger: no operator moved more than "
            f"{(LEDGER_MIN_RATIO - 1):.0%} vs the green run of "
            f"{baseline['timestamp']} — the regression is outside the "
            "maintenance operators (admission, GC, machine load?)"
        )
        return
    operator, shape, old, new = worst
    print(
        f"ledger: slowest-moving operator is {operator} [{shape}]: "
        f"mean {old * 1e6:.1f}us -> {new * 1e6:.1f}us "
        f"({new / old:.2f}x vs the green run of {baseline['timestamp']})"
    )


def record_ledger(snapshot, green):
    history = load_history(LEDGER_PATH, LEDGER_EXPERIMENT)
    append_run(history, {"green": bool(green), "ledger": snapshot})
    history["runs"] = history["runs"][-LEDGER_KEEP:]
    save_history(LEDGER_PATH, history)
    print(f"ledger snapshot appended to {LEDGER_PATH}")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    with_ledger = "--ledger" in argv
    rates, speedups = run_trials()
    compiled = speedups["compiled"]
    median_speedup = {mode: median(speedups[mode]) for mode in MODES}
    spread = mad(compiled)

    history = load_history(RESULTS_PATH, EXPERIMENT)
    # Only runs from a comparable machine gate: a core-count change is a
    # hardware change, not a regression.
    previous_best = max(
        (
            run["speedups"]["compiled"]
            for run in comparable_runs(history)
            if "speedups" in run
        ),
        default=None,
    )
    append_run(
        history,
        {
            "trials": TRIALS,
            "appends_per_sec": {m: round(median(rates[m]), 1) for m in MODES},
            "speedups": {m: round(median_speedup[m], 3) for m in MODES},
            "compiled_speedup_trials": [round(s, 3) for s in compiled],
            "compiled_speedup_mad": round(spread, 4),
        },
    )
    save_history(RESULTS_PATH, history)

    for mode in MODES:
        print(
            f"{mode:>12}: {median(rates[mode]):>10,.0f} appends/s  "
            f"({median_speedup[mode]:.2f}x median of {TRIALS})"
        )
    print(f"compiled speedup trials: {[round(s, 2) for s in compiled]}  MAD {spread:.3f}")
    print(f"results appended to {RESULTS_PATH}")

    observed = median_speedup["compiled"]
    failed = False
    if observed < SPEEDUP_BAR:
        print(
            f"REGRESSION: median compiled speedup {observed:.2f}x is below "
            f"the {SPEEDUP_BAR}x acceptance bar"
        )
        failed = True
    if (
        previous_best is not None
        and observed < TOLERANCE * previous_best
        and observed < previous_best - MAD_BAND * spread
    ):
        print(
            f"REGRESSION: median compiled speedup {observed:.2f}x is below "
            f"{TOLERANCE:.0%} of the best recorded {previous_best:.2f}x "
            f"and outside the {MAD_BAND:.0f}-MAD noise band ({spread:.3f})"
        )
        failed = True
    if with_ledger:
        snapshot = collect_ledger()
        if failed:
            attribute_failure(snapshot)
        record_ledger(snapshot, green=not failed)
    if not failed:
        print("ok: no regression")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
