"""Persist E12 throughput numbers and flag regressions across runs.

Runs the E12 measurement (compiled plans vs tree interpreter, see
``bench_e12_compiled_plans.py``) ``TRIALS`` times and gates on the
**median** speedup with an MAD-based noise band, so one background
process stealing a core cannot fail the build — the recorded history
(``BENCH_e12.json``, schema v2 with machine fingerprints, see
``_results.py``) showed single-run numbers jittering a few percent
between identical checkouts.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py

Exit status 1 when the median compiled speedup fails the 1.5x
acceptance bar, or drops below ``TOLERANCE`` of the best previously
recorded speedup *and* the drop exceeds 3 MADs of this run's own trial
spread (both conditions — a tight-spread run just under the tolerance
line is a real regression; a wide-spread run is noise until it also
clears the MAD band).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_e12_compiled_plans import MODES, run_measurements  # noqa: E402
from _results import (  # noqa: E402
    append_run,
    comparable_runs,
    load_history,
    save_history,
)

from repro.complexity.fitting import mad, median  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e12.json"
)
EXPERIMENT = "E12 compiled maintenance plans"
TRIALS = 3  # full measurement repetitions; the median gates
SPEEDUP_BAR = 1.5  # acceptance: compiled >= 1.5x interpreted
TOLERANCE = 0.7  # regression: median speedup < 70% of best recorded
MAD_BAND = 3.0  # ...and more than 3 MADs below it


def run_trials(trials=TRIALS):
    """Per-mode appends/sec and speedups across *trials* measurements."""
    raw = [run_measurements() for _ in range(trials)]
    rates = {mode: [trial[mode] for trial in raw] for mode in MODES}
    speedups = {
        mode: [trial[mode] / trial["interpreted"] for trial in raw] for mode in MODES
    }
    return rates, speedups


def main() -> int:
    rates, speedups = run_trials()
    compiled = speedups["compiled"]
    median_speedup = {mode: median(speedups[mode]) for mode in MODES}
    spread = mad(compiled)

    history = load_history(RESULTS_PATH, EXPERIMENT)
    # Only runs from a comparable machine gate: a core-count change is a
    # hardware change, not a regression.
    previous_best = max(
        (
            run["speedups"]["compiled"]
            for run in comparable_runs(history)
            if "speedups" in run
        ),
        default=None,
    )
    append_run(
        history,
        {
            "trials": TRIALS,
            "appends_per_sec": {m: round(median(rates[m]), 1) for m in MODES},
            "speedups": {m: round(median_speedup[m], 3) for m in MODES},
            "compiled_speedup_trials": [round(s, 3) for s in compiled],
            "compiled_speedup_mad": round(spread, 4),
        },
    )
    save_history(RESULTS_PATH, history)

    for mode in MODES:
        print(
            f"{mode:>12}: {median(rates[mode]):>10,.0f} appends/s  "
            f"({median_speedup[mode]:.2f}x median of {TRIALS})"
        )
    print(f"compiled speedup trials: {[round(s, 2) for s in compiled]}  MAD {spread:.3f}")
    print(f"results appended to {RESULTS_PATH}")

    observed = median_speedup["compiled"]
    failed = False
    if observed < SPEEDUP_BAR:
        print(
            f"REGRESSION: median compiled speedup {observed:.2f}x is below "
            f"the {SPEEDUP_BAR}x acceptance bar"
        )
        failed = True
    if (
        previous_best is not None
        and observed < TOLERANCE * previous_best
        and observed < previous_best - MAD_BAND * spread
    ):
        print(
            f"REGRESSION: median compiled speedup {observed:.2f}x is below "
            f"{TOLERANCE:.0%} of the best recorded {previous_best:.2f}x "
            f"and outside the {MAD_BAND:.0f}-MAD noise band ({spread:.3f})"
        )
        failed = True
    if not failed:
        print("ok: no regression")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
