"""Persist E12 throughput numbers and flag regressions across runs.

Runs the E12 measurement (compiled plans vs tree interpreter, see
``bench_e12_compiled_plans.py``) and writes the results to
``BENCH_e12.json`` at the repository root, so future changes have a
recorded perf trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py

Exit status 1 when the compiled engine fails the 1.5x acceptance bar or
drops more than ``TOLERANCE`` below the best previously recorded run
(absolute appends/sec are machine-dependent; the file stores a history,
and the regression check compares against the best entry).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_e12_compiled_plans import MODES, run_measurements  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e12.json"
)
SPEEDUP_BAR = 1.5  # acceptance: compiled >= 1.5x interpreted
TOLERANCE = 0.7  # regression: compiled speedup < 70% of best recorded


def load_history():
    if not os.path.exists(RESULTS_PATH):
        return {"experiment": "E12 compiled maintenance plans", "runs": []}
    with open(RESULTS_PATH) as handle:
        return json.load(handle)


def main() -> int:
    results = run_measurements()
    speedups = {mode: results[mode] / results["interpreted"] for mode in MODES}
    history = load_history()
    previous_best = max(
        (run["speedups"]["compiled"] for run in history["runs"]), default=None
    )
    history["runs"].append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "appends_per_sec": {m: round(results[m], 1) for m in MODES},
            "speedups": {m: round(speedups[m], 3) for m in MODES},
        }
    )
    with open(RESULTS_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")

    for mode in MODES:
        print(f"{mode:>12}: {results[mode]:>10,.0f} appends/s  ({speedups[mode]:.2f}x)")
    print(f"results appended to {RESULTS_PATH}")

    failed = False
    if speedups["compiled"] < SPEEDUP_BAR:
        print(
            f"REGRESSION: compiled speedup {speedups['compiled']:.2f}x is below "
            f"the {SPEEDUP_BAR}x acceptance bar"
        )
        failed = True
    if previous_best is not None and speedups["compiled"] < TOLERANCE * previous_best:
        print(
            f"REGRESSION: compiled speedup {speedups['compiled']:.2f}x is below "
            f"{TOLERANCE:.0%} of the best recorded {previous_best:.2f}x"
        )
        failed = True
    if not failed:
        print("ok: no regression")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
