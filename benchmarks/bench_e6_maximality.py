"""E6 — Theorem 4.3: CA's maximality.

The theorem's two halves, demonstrated mechanically:

1. (structural) projecting out the sequencing attribute, or grouping
   without it, is *rejected* inside chronicle algebra — the result would
   not be a chronicle;
2. (complexity) chronicle×chronicle cross products and non-equijoins can
   only be maintained by consulting stored chronicle history: their
   per-append delta cost grows with |C|, while the corresponding CA
   expression (the SN equijoin) stays flat.
"""

import sys

import pytest

from repro.algebra.ast import ChronicleProduct, NonEquiSeqJoin, scan
from repro.algebra.delta_engine import propagate
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table
from repro.core.delta import Delta
from repro.core.group import ChronicleGroup

C_SIZES = [100, 400, 1_600, 6_400]


def _two_chronicles(retention=None):
    group = ChronicleGroup("g")
    calls = group.create_chronicle("calls", [("acct", "INT"), ("mins", "INT")],
                                   retention=retention)
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")],
                                  retention=retention)
    return group, calls, fees


def _delta_cost(expression_kind, size):
    retention = 0 if expression_kind == "seq_join" else None
    group, calls, fees = _two_chronicles(retention)
    if expression_kind == "product":
        expression = ChronicleProduct(scan(calls), scan(fees))
    elif expression_kind == "non_equi":
        expression = NonEquiSeqJoin(scan(calls), scan(fees), "<")
    else:
        expression = scan(calls).join(scan(fees))
    with GLOBAL_COUNTERS.disabled():
        for i in range(size):
            group.append(fees, {"acct": i % 10, "mins": 1})
    rows = group.append(calls, {"acct": 0, "mins": 1})
    deltas = {"calls": Delta(calls.schema, rows)}
    allow = expression_kind != "seq_join"
    with GLOBAL_COUNTERS.measure() as cost:
        propagate(expression, deltas, allow_chronicle_access=allow)
    return cost["tuple_op"] + cost["chronicle_read"]


def run_report() -> str:
    rows = []
    series = {"product": [], "non_equi": [], "seq_join": []}
    for size in C_SIZES:
        row = [size]
        for kind in ("product", "non_equi", "seq_join"):
            work = _delta_cost(kind, size)
            series[kind].append(work)
            row.append(work)
        rows.append(row)
    return (
        "== E6  Theorem 4.3: extension operators need the chronicle ==\n"
        + format_table(
            ["|C| (fees)", "C1×C2 work", "C1⋈(<)C2 work", "C1⋈(SN)C2 work (CA)"],
            rows,
        )
        + "\nfits: product="
        + fit_series(C_SIZES, series["product"]).model
        + " (expected linear+), non-equijoin="
        + fit_series(C_SIZES, series["non_equi"]).model
        + " (expected linear+), SN-equijoin="
        + fit_series(C_SIZES, series["seq_join"]).model
        + " (expected constant)\n"
        + "structural half: Π without SN and GROUPBY without SN raise "
        + "NotAChronicleError at construction (see tests/test_algebra_ast.py)\n"
    )


def test_e6_product_cost_grows_with_chronicle():
    work = [_delta_cost("product", s) for s in C_SIZES]
    assert work[-1] > work[0] * 20


def test_e6_non_equi_cost_grows_with_chronicle():
    work = [_delta_cost("non_equi", s) for s in C_SIZES]
    assert work[-1] > work[0] * 20


def test_e6_sn_equijoin_stays_flat():
    work = [_delta_cost("seq_join", s) for s in C_SIZES]
    assert is_flat(C_SIZES, work, slack=0.05)


@pytest.mark.parametrize("kind,size", [("product", 1_600), ("seq_join", 1_600)])
def test_e6_delta_step(benchmark, kind, size):
    retention = 0 if kind == "seq_join" else None
    group, calls, fees = _two_chronicles(retention)
    if kind == "product":
        expression = ChronicleProduct(scan(calls), scan(fees))
    else:
        expression = scan(calls).join(scan(fees))
    with GLOBAL_COUNTERS.disabled():
        for i in range(size):
            group.append(fees, {"acct": i % 10, "mins": 1})
    counter = [0]

    def action():
        counter[0] += 1
        rows = group.append(calls, {"acct": counter[0] % 10, "mins": 1})
        propagate(
            expression,
            {"calls": Delta(calls.schema, rows)},
            allow_chronicle_access=(kind == "product"),
        )

    benchmark(action)


if __name__ == "__main__":
    sys.stdout.write(run_report())
