"""Recovery drill — kill a live ingesting process, verify recovery.

CI's black-box check for the durability subsystem, the counterpart of
``incident_smoke.py``:

1. **kill -9 drill** — a child process opens a durable database
   (``wal`` mode, ``fsync="always"``), builds the banking catalog, and
   ingests batches, printing a marker line after each durable commit.
   The parent SIGKILLs it mid-stream, then recovers the directory via
   ``ChronicleDatabase.open`` and cross-checks the recovered views
   against the batch count read straight off the SQLite log (every
   printed marker must be on disk — ``fsync="always"``), plus
   cross-view consistency (per-key sums/counts vs the global view).
2. **corruption drill** — a logged batch payload is overwritten in
   place; reopening must raise :class:`RecoveryError` and leave a
   readable ``recovery-failure.json`` incident bundle in the durable
   directory.

Exits non-zero on any missing piece.  Set ``RECOVERY_DIR`` to choose
the artifact directory (default ``recovery-artifacts``).
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
import time

from repro import ChronicleDatabase, DatabaseConfig, DurabilityConfig
from repro.errors import ChronicleError
from repro.storage.durability import RecoveryError
from repro.storage.wal import wal_path

BATCH = 4
KILL_AFTER = 8  # marker lines before the SIGKILL

_CHILD = textwrap.dedent(
    """
    import sys
    import warnings

    from repro import BankingWorkload, ChronicleDatabase, DatabaseConfig, DurabilityConfig
    from repro.aggregates import COUNT, SUM, spec
    from repro.algebra.ast import scan
    from repro.sca.summarize import GroupBySummary


    def main():
        directory = sys.argv[1]
        config = DatabaseConfig(
            durability=DurabilityConfig(mode="wal", dir=directory, fsync="always")
        )
        db = ChronicleDatabase.open(directory, config=config)
        workload = BankingWorkload(seed=7)
        db.create_chronicle(workload.NAME, workload.CHRONICLE_SCHEMA)
        chron = db.chronicle(workload.NAME)
        db.define_view(
            GroupBySummary(scan(chron), ["acct"], [spec(SUM, "cents"), spec(COUNT)]),
            name="by_key",
        )
        db.define_view(
            GroupBySummary(scan(chron), [], [spec(SUM, "cents"), spec(COUNT)]),
            name="grand",
        )
        for n in range(1000000):
            db.append(workload.NAME, list(workload.records(4)))
            print(f"BATCH {n}", flush=True)


    if __name__ == "__main__":
        main()
    """
)


def _logged_batches(directory):
    """Durably committed batches, read straight off the SQLite file."""
    conn = sqlite3.connect(wal_path(directory))
    try:
        return conn.execute(
            "SELECT COUNT(*) FROM log WHERE kind = 'batch'"
        ).fetchone()[0]
    finally:
        conn.close()


def drill_kill9(artifact_dir):
    directory = os.path.join(artifact_dir, "kill9-db")
    script = os.path.join(artifact_dir, "child.py")
    with open(script, "w") as handle:
        handle.write(_CHILD)
    proc = subprocess.Popen(
        [sys.executable, script, directory],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    seen = 0
    started = time.time()
    try:
        for line in proc.stdout:
            if line.startswith("BATCH"):
                seen += 1
                if seen >= KILL_AFTER:
                    break
        if seen < KILL_AFTER:
            raise SystemExit(
                f"kill9 drill: child died early after {seen} batches: "
                f"{proc.stderr.read()}"
            )
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print(
        f"kill9 drill: SIGKILL after {seen} durable batches "
        f"({time.time() - started:.1f}s)"
    )

    logged = _logged_batches(directory)
    if logged < seen:
        raise SystemExit(
            f"kill9 drill: log holds {logged} batches but the child "
            f"printed {seen} durable commits"
        )

    config = DatabaseConfig(
        durability=DurabilityConfig(mode="wal", dir=directory, fsync="off")
    )
    db = ChronicleDatabase.open(directory, config=config)
    try:
        report = db.durability.last_recovery
        if report.replayed_batches != logged:
            raise SystemExit(
                f"kill9 drill: recovery replayed {report.replayed_batches} "
                f"of {logged} logged batches"
            )
        (grand,) = db.view("grand").rows()
        grand_sum, grand_count = grand.values
        if grand_count != logged * BATCH:
            raise SystemExit(
                f"kill9 drill: recovered global count {grand_count} != "
                f"{logged} batches x {BATCH} records"
            )
        by_key = list(db.view("by_key").rows())
        if sum(row.values[-1] for row in by_key) != grand_count:
            raise SystemExit("kill9 drill: per-key counts disagree with grand")
        if sum(row.values[-2] for row in by_key) != grand_sum:
            raise SystemExit("kill9 drill: per-key sums disagree with grand")
        print(
            f"kill9 drill: recovered {logged} batches "
            f"({grand_count} records) in {report.seconds * 1000:.1f}ms, "
            f"views consistent"
        )
    finally:
        db.close()


def drill_corruption(artifact_dir):
    directory = os.path.join(artifact_dir, "corrupt-db")
    config = DatabaseConfig(
        durability=DurabilityConfig(mode="wal", dir=directory, fsync="off")
    )
    db = ChronicleDatabase.open(directory, config=config)
    db.create_chronicle("t", [("k", "INT")])
    for i in range(4):
        db.append("t", {"k": i})
    db.durability.abort()

    conn = sqlite3.connect(wal_path(directory))
    conn.execute(
        "UPDATE log SET payload = X'DEADBEEF' WHERE kind = 'batch' "
        "AND id = (SELECT MAX(id) FROM log WHERE kind = 'batch')"
    )
    conn.commit()
    conn.close()

    try:
        ChronicleDatabase.open(directory, config=config)
    except RecoveryError as exc:
        print(f"corruption drill: open failed as expected ({exc})")
    except ChronicleError as exc:
        raise SystemExit(
            f"corruption drill: expected RecoveryError, got {type(exc).__name__}"
        )
    else:
        raise SystemExit("corruption drill: expected RecoveryError")

    bundle_path = os.path.join(directory, "recovery-failure.json")
    if not os.path.exists(bundle_path):
        raise SystemExit(f"corruption drill: no incident bundle at {bundle_path}")
    with open(bundle_path) as handle:
        bundle = json.load(handle)
    for key in ("reason", "at", "context"):
        if key not in bundle:
            raise SystemExit(f"{bundle_path}: missing bundle key {key!r}")
    if bundle["reason"] != "recovery-failure":
        raise SystemExit(
            f"{bundle_path}: reason {bundle['reason']!r} != 'recovery-failure'"
        )
    print(
        f"corruption drill: bundle {os.path.basename(bundle_path)} "
        f"reason={bundle['reason']!r} readable"
    )


def main():
    artifact_dir = os.environ.get("RECOVERY_DIR", "recovery-artifacts")
    os.makedirs(artifact_dir, exist_ok=True)
    drill_kill9(artifact_dir)
    drill_corruption(artifact_dir)
    print("recovery drill: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
