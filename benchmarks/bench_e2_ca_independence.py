"""E2 — Theorem 4.2: CA delta computation is independent of |C| and |V|.

A composite CA-join view (σ, ∪, ⋈key, GROUPBY) is maintained while the
chronicle (swept up to 100k appends, stored nowhere) and the view (swept
up to 50k groups) grow.  Expected shape: per-append tuple work is flat in
both sweeps; only the O(log |V|) locate probes grow — additively, never
multiplicatively.
"""

import sys

import pytest

from repro.algebra.ast import scan
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.complexity.fitting import fit_series, is_flat
from repro.complexity.harness import format_table
from repro.relational.predicate import attr_cmp

from _common import attach, make_customers, make_group, one_append, preload, sum_view

C_SIZES = [1_000, 10_000, 100_000]
V_SIZES = [500, 5_000, 50_000]


def _composite_system():
    group = make_group(retention=0)[0]
    calls = group["calls"]
    fees = group.create_chronicle("fees", [("acct", "INT"), ("mins", "INT")], retention=0)
    customers = make_customers(256)
    node = (
        scan(calls)
        .select(attr_cmp("mins", ">=", 0))
        .union(scan(fees))
        .keyjoin(customers, [("acct", "acct")])
    )
    view = attach(sum_view(node, ["acct"]), group)
    return group, calls, view


def _cost_at_chronicle_size(size):
    group, calls, view = _composite_system()
    preload(group, calls, size, accts=256)
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": 7, "mins": 1})
    return cost


def _cost_at_view_size(groups):
    group, calls = make_group(retention=0)
    view = attach(sum_view(scan(calls), ["acct"]), group)
    with GLOBAL_COUNTERS.disabled():
        for acct in range(groups):
            group.append(calls, {"acct": acct, "mins": 1})
    with GLOBAL_COUNTERS.measure() as cost:
        group.append(calls, {"acct": 0, "mins": 1})
    return cost


def run_report() -> str:
    c_rows, c_work = [], []
    for size in C_SIZES:
        cost = _cost_at_chronicle_size(size)
        c_work.append(cost["tuple_op"])
        c_rows.append([size, cost["tuple_op"], cost["index_probe"],
                       cost["chronicle_read"]])
    v_rows, v_work, v_probes = [], [], []
    for size in V_SIZES:
        cost = _cost_at_view_size(size)
        v_work.append(cost["tuple_op"])
        v_probes.append(cost["index_probe"])
        v_rows.append([size, cost["tuple_op"], cost["index_probe"],
                       cost["chronicle_read"]])
    return (
        "== E2  Theorem 4.2: per-append work, composite CA-join view ==\n"
        + format_table(["|C| appended", "tuple_ops", "probes", "chr_reads"], c_rows)
        + f"\nfit in |C|: {fit_series(C_SIZES, c_work).model} (expected constant)\n\n"
        + format_table(["|V| groups", "tuple_ops", "probes", "chr_reads"], v_rows)
        + f"\nfit in |V|: tuple work {fit_series(V_SIZES, v_work).model} "
        f"(expected constant), probes {fit_series(V_SIZES, v_probes).model} "
        f"(expected ≤ log)\n"
    )


def test_e2_flat_in_chronicle_size():
    work = [_cost_at_chronicle_size(s)["tuple_op"] for s in C_SIZES]
    assert is_flat(C_SIZES, work, slack=0.01)
    assert _cost_at_chronicle_size(C_SIZES[0])["chronicle_read"] == 0


def test_e2_flat_tuple_work_in_view_size():
    work = [_cost_at_view_size(s)["tuple_op"] for s in V_SIZES]
    probes = [_cost_at_view_size(s)["index_probe"] for s in V_SIZES]
    assert is_flat(V_SIZES, work, slack=0.01)
    assert probes[-1] <= probes[0] + 10  # log growth is additive levels


@pytest.mark.parametrize("size", [1_000, 100_000])
def test_e2_append_at_chronicle_size(benchmark, size):
    group, calls, view = _composite_system()
    preload(group, calls, size, accts=256)
    benchmark(one_append(group, calls, acct=7))


@pytest.mark.parametrize("groups", [500, 50_000])
def test_e2_append_at_view_size(benchmark, groups):
    group, calls = make_group(retention=0)
    attach(sum_view(scan(calls), ["acct"]), group)
    with GLOBAL_COUNTERS.disabled():
        for acct in range(groups):
            group.append(calls, {"acct": acct, "mins": 1})
    benchmark(one_append(group, calls, acct=0))


if __name__ == "__main__":
    sys.stdout.write(run_report())
