"""Shared builders for the experiment benchmarks (see DESIGN.md §6).

Every experiment Exx certifies one formal claim of the paper.  Each
benchmark module provides

* pytest-benchmark timing tests (``pytest benchmarks/ --benchmark-only``);
* a ``run_report()`` returning the experiment's printed table + fitted
  complexity models (the paper-shaped deliverable, collected into
  EXPERIMENTS.md by ``benchmarks/run_all.py`` or ``python <module>``).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.aggregates import COUNT, SUM, spec
from repro.algebra.ast import Node
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.core.group import ChronicleGroup
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sca.maintenance import attach_view
from repro.sca.summarize import GroupBySummary
from repro.sca.view import PersistentView

CALL_SCHEMA = [("acct", "INT"), ("mins", "INT")]


def make_group(retention: Optional[int] = 0) -> Tuple[ChronicleGroup, Any]:
    """A group with one ``calls`` chronicle (unstored by default)."""
    group = ChronicleGroup("bench")
    calls = group.create_chronicle("calls", CALL_SCHEMA, retention=retention)
    return group, calls


def make_customers(size: int, ordered: bool = False) -> Relation:
    """A customers relation with a unique index on acct.

    With ``ordered=False`` the uniqueness comes from the primary-key hash
    index (expected-O(1) probes); with ``ordered=True`` the relation has
    *only* a unique B+-tree index, so key-join probes cost O(log |R|) —
    the IM-log(R) regime the paper's formulas charge for.
    """
    if ordered:
        customers = Relation(
            "customers", Schema.build(("acct", "INT"), ("state", "STR"))
        )
        customers.create_index(["acct"], ordered=True, unique=True)
    else:
        customers = Relation(
            "customers",
            Schema.build(("acct", "INT"), ("state", "STR"), key=["acct"]),
        )
    for acct in range(size):
        customers.insert({"acct": acct, "state": "NJ" if acct % 2 else "NY"})
    return customers


def sum_view(node: Node, grouping: List[str], name: str = "v") -> PersistentView:
    """A SUM+COUNT persistent view over *node*."""
    return PersistentView(
        name, GroupBySummary(node, grouping, [spec(SUM, "mins"), spec(COUNT)])
    )


def attach(view: PersistentView, group: ChronicleGroup) -> PersistentView:
    attach_view(view, group)
    return view


def preload(group: ChronicleGroup, calls: Any, count: int, accts: int = 64) -> None:
    """Append *count* records without measuring."""
    with GLOBAL_COUNTERS.disabled():
        base = calls.appended_count
        for i in range(count):
            group.append(calls, {"acct": (base + i) % accts, "mins": 1})


def one_append(group: ChronicleGroup, calls: Any, acct: int = 0) -> Callable[[], None]:
    """A per-append action closure for timing."""

    def action() -> None:
        group.append(calls, {"acct": acct, "mins": 1})

    return action
