"""Banking: the ATM balance scenario and the Chemical Bank bug.

Section 1 of the paper: ATM withdrawals need the dollar_balance summary
field updated *as the transaction executes* (the next withdrawal checks
it), and the hand-written procedural update code "has been the cause of
well-publicized banking disasters" — the Chemical Bank double-posting of
February 18, 1994 [NYT94].

This example runs the same transaction stream through

1. a declaratively defined persistent view (the chronicle model), and
2. a trigger-style procedural updater with the classic double-apply bug,

then reconciles: the view is exact; the buggy updater bounces checks.

Run:  python examples/banking_atm.py
"""

from repro import ChronicleDatabase
from repro.baselines.trigger import BuggyTriggerUpdater
from repro.workloads import BankingWorkload


def main() -> None:
    db = ChronicleDatabase()
    db.create_chronicle(
        "transactions",
        [("acct", "INT"), ("kind", "STR"), ("cents", "INT"), ("day", "INT")],
        retention=0,
    )
    db.define_view(
        "DEFINE VIEW balance AS "
        "SELECT acct, SUM(cents) AS cents, COUNT(*) AS transactions "
        "FROM transactions GROUP BY acct"
    )
    db.define_view(
        "DEFINE VIEW withdrawals AS "
        "SELECT acct, SUM(cents) AS cents, COUNT(*) AS n "
        "FROM transactions WHERE kind = 'withdrawal' GROUP BY acct"
    )

    # The status-quo implementation: procedural summary fields, with the
    # 1994 bug (every 97th update applied twice).
    def update_balance(fields, row):
        fields["cents"] += row["cents"]

    buggy = BuggyTriggerUpdater(
        "acct", lambda: {"cents": 0}, update_balance, double_apply_every=97
    )
    buggy.attach(db.group())

    workload = BankingWorkload(seed=3, accounts=200)
    denied = 0
    for record in workload.records(25_000):
        # The ATM check: a withdrawal is denied when the *declarative*
        # balance would go below -$500 (overdraft line).  This query runs
        # before the append — subsecond, no stream access.
        if record["kind"] == "withdrawal":
            balance = db.view_value("balance", (record["acct"],), "cents") or 0
            if balance + record["cents"] < -50_000:
                denied += 1
                continue
        db.append("transactions", record)

    # Reconciliation: compare the declarative view with the buggy fields.
    mismatched = []
    for row in db.view("balance"):
        acct = row["acct"]
        if buggy.value(acct, "cents") != row["cents"]:
            mismatched.append(acct)

    total = len(db.view("balance"))
    print(f"accounts               : {total}")
    print(f"withdrawals denied     : {denied} (overdraft protection)")
    print(f"buggy trigger mismatch : {len(mismatched)}/{total} accounts "
          f"(the Chemical Bank failure mode)")
    worst = max(
        (abs(buggy.value(a, 'cents') - (db.view_value('balance', (a,), 'cents') or 0)), a)
        for a in mismatched
    )
    print(f"worst account error    : ${worst[0] / 100:,.2f} on account {worst[1]}")
    print("declarative view       : exact by construction (Theorem 4.4)")


if __name__ == "__main__":
    main()
