"""The paper's running example (Examples 2.1 / 2.2): frequent-flyer miles.

One chronicle of mileage transactions, a customers relation, and the
three persistent views of Example 2.1 — mileage balance, miles actually
flown, and premier status — plus the Example 2.2 New-Jersey bonus view,
whose temporal join makes the bonus depend on the customer's address *at
flight time* (address changes are proactive updates).

Run:  python examples/frequent_flyer.py
"""

from repro import ChronicleDatabase, GroupBySummary, scan, spec
from repro.aggregates import COUNT, SUM
from repro.relational import attr_eq
from repro.workloads import FrequentFlyerWorkload, premier_status

NJ_BONUS_MILES = 500


def main() -> None:
    db = ChronicleDatabase()
    db.create_chronicle(
        "mileage",
        [("acct", "INT"), ("miles", "INT"), ("source", "STR"), ("day", "INT")],
        retention=0,
    )
    db.create_relation(
        "customers", [("acct", "INT"), ("name", "STR"), ("state", "STR")], key=["acct"]
    )

    workload = FrequentFlyerWorkload(seed=7, customers=300)
    customers = db.relation("customers")
    customers.insert_many(workload.customer_rows())

    # -- the three Example 2.1 views, in the SQL-like language ---------------
    db.define_view(
        "DEFINE VIEW balance AS SELECT acct, SUM(miles) AS miles "
        "FROM mileage GROUP BY acct"
    )
    db.define_view(
        "DEFINE VIEW flown AS SELECT acct, SUM(miles) AS miles "
        "FROM mileage WHERE source = 'flight' GROUP BY acct"
    )

    # -- the Example 2.2 NJ bonus view, built programmatically ----------------
    bonus_expr = (
        scan(db.chronicle("mileage"))
        .select(attr_eq("source", "flight"))
        .keyjoin(customers, [("acct", "acct")])
        .select(attr_eq("state", "NJ"))
    )
    db.define_view(
        GroupBySummary(bonus_expr, ["acct"], [spec(COUNT, None, "nj_flights")]),
        name="nj_bonus",
    )

    # -- stream postings, with occasional proactive address changes ----------
    for index, record in enumerate(workload.records(20_000)):
        if index and index % 2_500 == 0:
            acct, state = workload.address_change(record["day"])
            db.update_relation("customers", (acct,), state=state)
        db.append("mileage", record)

    # -- summary queries -------------------------------------------------------
    top = max(db.view("flown"), key=lambda row: row["miles"])
    acct = top["acct"]
    flown = top["miles"]
    balance = db.view_value("balance", (acct,), "miles") or 0
    print(f"top flyer account  : {acct}")
    print(f"miles flown        : {flown:,} → status {premier_status(flown)!r}")
    print(f"mileage balance    : {balance:,}")
    nj_top = max(db.view("nj_bonus"), key=lambda row: row["nj_flights"])
    print(f"top NJ-bonus earner: account {nj_top['acct']} with "
          f"{nj_top['nj_flights']} qualifying flights "
          f"→ {nj_top['nj_flights'] * NJ_BONUS_MILES:,} bonus miles")
    print(f"chronicle stored   : {len(db.chronicle('mileage'))} rows "
          f"(of {db.chronicle('mileage').appended_count:,} appended)")


if __name__ == "__main__":
    main()
