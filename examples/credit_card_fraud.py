"""Credit-card monitoring: HAVING views, periodic windows, durability.

A card processor's monitoring database over an unstored purchase stream:

* a HAVING view surfacing only cards whose cash-advance volume crossed a
  risk threshold (the view's state tracks *every* card; visibility is
  the filter — groups appear the moment they cross);
* a weekly periodic view (``DEFINE PERIODIC VIEW … OVER EVERY 7``) for
  per-card weekly spend;
* a mid-stream checkpoint + simulated restart: the views' accumulators
  are the only copy of the summarized history, and they survive.

Run:  python examples/credit_card_fraud.py
"""

import io

from repro import ChronicleDatabase
from repro.storage.checkpoint import write_checkpoint, load_checkpoint
from repro.workloads import CreditCardWorkload

RISK_THRESHOLD_CENTS = 50_000


def build() -> ChronicleDatabase:
    db = ChronicleDatabase()
    db.create_chronicle(
        "purchases",
        [("card", "INT"), ("merchant", "INT"), ("category", "STR"),
         ("cents", "INT"), ("day", "INT")],
        retention=0,
    )
    db.define_view(
        "DEFINE VIEW spend AS SELECT card, SUM(cents) AS cents, COUNT(*) AS n "
        "FROM purchases GROUP BY card"
    )
    db.define_view(
        "DEFINE VIEW risky AS SELECT card, SUM(cents) AS advance_cents "
        "FROM purchases WHERE category = 'cash_advance' "
        f"GROUP BY card HAVING advance_cents > {RISK_THRESHOLD_CENTS}"
    )
    db.define_view(
        "DEFINE PERIODIC VIEW weekly OVER EVERY 7 BY day AS "
        "SELECT card, SUM(cents) AS cents FROM purchases GROUP BY card"
    )
    return db


def main() -> None:
    db = build()
    workload = CreditCardWorkload(seed=19, cards=500, purchases_per_day=400)
    records = list(workload.records(28_000))  # 10 weeks

    # First half of the stream, then a checkpoint ("nightly snapshot").
    for record in records[: len(records) // 2]:
        db.append("purchases", record)
    snapshot = io.StringIO()
    write_checkpoint(db, snapshot)

    # Simulated crash + restart: rebuild the schema, restore the state,
    # and replay only the *new* traffic (the old stream is gone — and was
    # never stored anywhere).
    db = build()
    snapshot.seek(0)
    load_checkpoint(db, snapshot)
    for record in records[len(records) // 2:]:
        db.append("purchases", record)

    risky = sorted(db.view("risky"), key=lambda r: -r["advance_cents"])
    tracked = len(db.view("risky").relation)  # state for every card seen
    print(f"purchases processed : {len(records):,} "
          f"(stored: {len(db.chronicle('purchases'))})")
    print(f"risk view           : {len(risky)} cards over "
          f"${RISK_THRESHOLD_CENTS / 100:,.0f} in cash advances "
          f"(state tracked for {tracked} advance-using cards)")
    for row in risky[:5]:
        print(f"  card {row['card']}: ${row['advance_cents'] / 100:,.2f}")
    weeks = db.periodic_view("weekly")
    hot_card = risky[0]["card"] if risky else records[-1]["card"]
    series = [
        (index, view.value((hot_card,), "cents") or 0)
        for index, view in weeks.active_views()
    ]
    pretty = ", ".join(f"w{index}=${cents / 100:,.0f}" for index, cents in series[-4:])
    print(f"weekly spend, card {hot_card}: {pretty}")
    print("checkpoint/restart  : survived mid-stream (totals span both halves)")


if __name__ == "__main__":
    main()
