"""Cellular billing: monthly periodic views and the tiered discount plan.

Reproduces two Section 5 scenarios:

* §5.1 — "total number of minutes of calls made in the current billing
  month", as a monthly periodic view V⟨D⟩ with expiration: finished
  months are turned into billing statements and reclaimed;
* §5.3 — the tiered telephone discount (10% over $10, 20% over $25),
  maintained incrementally so the discount is correct mid-month, and
  shown equal to the period-end batch computation.

Run:  python examples/telecom_billing.py
"""

from repro import ChronicleDatabase, IncrementalTieredComputation, TierSchedule, monthly
from repro.views.batch import batch_tiered_computation
from repro.workloads import TelecomWorkload

DAYS_PER_MONTH = 30


def main() -> None:
    db = ChronicleDatabase()
    db.create_chronicle(
        "calls",
        [("caller", "INT"), ("callee", "INT"), ("seconds", "INT"),
         ("cents", "INT"), ("day", "INT")],
        retention=0,
    )

    statements = []

    def issue_statement(index, view):
        rows = sorted(view, key=lambda r: -r["total_cents"])[:3]
        statements.append((index, [(r["caller"], r["total_cents"]) for r in rows]))

    months = db.define_periodic_view(
        "monthly_minutes",
        "DEFINE VIEW monthly_minutes AS "
        "SELECT caller, SUM(seconds) AS total_seconds, SUM(cents) AS total_cents "
        "FROM calls GROUP BY caller",
        monthly(month_length=DAYS_PER_MONTH),
        chronon_of=lambda row: float(row["day"]),
        expire_after=DAYS_PER_MONTH,  # keep one month of grace, then bill
        on_expire=issue_statement,
    )

    # §5.3: the discount plan, maintained per record in O(1).
    plan = TierSchedule([(10_00, 0.10), (25_00, 0.20)])  # cents thresholds
    discounts = IncrementalTieredComputation(plan)

    workload = TelecomWorkload(seed=11, subscribers=400, calls_per_day=400)
    records = list(workload.records(36_000))  # three months of calls
    current_month = 0
    month_records = []
    for record in records:
        month = record["day"] // DAYS_PER_MONTH
        if month != current_month:
            # period end: check incremental statement == batch statement
            batch = batch_tiered_computation(plan, month_records)
            assert discounts.statement() == batch
            discounts.reset()
            month_records = []
            current_month = month
        db.append("calls", record)
        discounts.observe(record["caller"], record["cents"])
        month_records.append((record["caller"], record["cents"]))

    # The current (partial) month is already queryable:
    active = months.active_indices()
    caller = records[-1]["caller"]
    live = months[active[-1]].value((caller,), "total_seconds") or 0
    print(f"months materialized : {months.instantiated_count}, active now: {active}")
    print(f"caller {caller}: {live}s so far this month")
    print(f"current discount    : {discounts.rate(caller):.0%} "
          f"(total ${discounts.total(caller) / 100:,.2f})")
    print("expired-month statements (top-3 spenders each):")
    for index, top in statements:
        pretty = ", ".join(f"{caller}=${cents / 100:,.2f}" for caller, cents in top)
        print(f"  month {index}: {pretty}")
    print("incremental == batch discount statements: verified each month")


if __name__ == "__main__":
    main()
