"""Quickstart: a chronicle database in ten lines.

Creates a call-record chronicle that stores *nothing* (retention=0),
defines two persistent views declaratively, streams ten thousand calls
through, and answers summary queries instantly — the core promise of the
chronicle data model.

Run:  python examples/quickstart.py
"""

from repro import ChronicleDatabase
from repro.workloads import TelecomWorkload


def main() -> None:
    db = ChronicleDatabase()

    # A chronicle: an unbounded, append-only stream.  retention=0 means
    # the database stores none of it — views must be maintainable anyway.
    db.create_chronicle(
        "calls",
        [("caller", "INT"), ("seconds", "INT"), ("cents", "INT")],
        retention=0,
    )

    # Persistent views, defined declaratively (no procedural update code).
    db.define_view(
        "DEFINE VIEW usage AS "
        "SELECT caller, SUM(seconds) AS total_seconds, COUNT(*) AS calls "
        "FROM calls GROUP BY caller"
    )
    db.define_view(
        "DEFINE VIEW revenue AS SELECT SUM(cents) AS total_cents FROM calls"
    )

    # Stream transactions; every append maintains both views before it
    # returns (the ATM requirement).
    workload = TelecomWorkload(seed=42, subscribers=500)
    hot_caller = None
    for record in workload.records(10_000):
        db.append(
            "calls",
            {
                "caller": record["caller"],
                "seconds": record["seconds"],
                "cents": record["cents"],
            },
        )
        hot_caller = hot_caller or record["caller"]

    # Summary queries: index lookups on the views, no stream access.
    usage = db.view_row("usage", (hot_caller,))
    revenue = db.view_value("revenue", (), "total_cents")
    print(f"chronicle stored rows : {len(db.chronicle('calls'))} (of 10,000 appended)")
    print(f"caller {hot_caller}   : {usage['calls']} calls, {usage['total_seconds']}s total")
    print(f"total revenue         : ${revenue / 100:,.2f}")

    view = db.view("usage")
    print(f"view language         : {view.language.value} ({view.im_class.value})")


if __name__ == "__main__":
    main()
