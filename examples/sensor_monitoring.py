"""Industrial control: sensor statistics and alarm views.

The paper lists "sensor outputs in a control system" among chronicle
applications.  This example maintains per-sensor statistics (COUNT, AVG,
MIN, MAX, STDEV) and a selective spike-alarm view over a high-rate
reading stream, with a zones relation joined in — and shows the
Section 5.2 affected-view prefilter at work: the alarm view is only
maintained for the rare spike records.

Run:  python examples/sensor_monitoring.py
"""

from repro import ChronicleDatabase
from repro.workloads import SensorWorkload


def main() -> None:
    db = ChronicleDatabase()
    db.create_chronicle(
        "readings",
        [("sensor", "INT"), ("milli", "INT"), ("status", "STR"), ("tick", "INT")],
        retention=0,
    )
    db.create_relation("sensors", [("sensor", "INT"), ("unit", "STR"), ("zone", "INT")],
                       key=["sensor"])

    workload = SensorWorkload(seed=13, sensors=48, spike_probability=0.01)
    db.relation("sensors").insert_many(workload.sensor_rows())

    db.define_view(
        "DEFINE VIEW stats AS "
        "SELECT sensor, COUNT(*) AS n, AVG(milli) AS mean, "
        "MIN(milli) AS low, MAX(milli) AS high, STDEV(milli) AS sd "
        "FROM readings GROUP BY sensor"
    )
    alarms = db.define_view(
        "DEFINE VIEW alarms AS "
        "SELECT zone, COUNT(*) AS spikes "
        "FROM readings JOIN sensors ON readings.sensor = sensors.sensor "
        "WHERE status = 'spike' GROUP BY zone"
    )

    for record in workload.records(30_000):
        db.append("readings", record)

    stats = db.registry.stats
    print(f"readings processed   : {stats['events']:,}")
    print(f"alarm view maintained: {alarms.maintenance_count:,} times "
          f"(prefilter skipped the other "
          f"{stats['events'] - alarms.maintenance_count:,} events)")
    noisiest = max(db.view("stats"), key=lambda r: r["sd"] or 0)
    print(f"noisiest sensor      : #{noisiest['sensor']} "
          f"(mean {noisiest['mean']:.0f} m-units, σ {noisiest['sd']:.0f})")
    print("spikes by zone       : "
          + ", ".join(f"z{r['zone']}={r['spikes']}" for r in sorted(
              db.view("alarms"), key=lambda r: r["zone"])))


if __name__ == "__main__":
    main()
