"""Stock trading: 30-day moving volume via the cyclic-buffer optimizer.

Section 5.1's optimization example: "a periodic view for every day that
computes the total number of shares of a stock sold during the 30 days
preceding that day … keep the total number of shares sold for each of the
last 30 days separately, and derive the view as the sum of these 30
numbers.  Moving from one periodic view to the next one involves shifting
a cyclic buffer."

This example maintains the 30-day moving sell volume per symbol two ways —
the naive family of overlapping periodic views and the cyclic buffer —
verifies they agree, and reports how much work the optimization saves.

Run:  python examples/stock_trading.py
"""

from repro import ChronicleDatabase, KeyedMovingWindow, sliding
from repro.aggregates import SUM
from repro.complexity.counters import GLOBAL_COUNTERS
from repro.workloads import StockWorkload

WINDOW_DAYS = 30


def main() -> None:
    db = ChronicleDatabase()
    db.create_chronicle(
        "trades",
        [("symbol", "INT"), ("side", "STR"), ("shares", "INT"),
         ("price_cents", "INT"), ("day", "INT")],
        retention=0,
    )

    # Naive: one periodic view per day-window; day d falls in 30 windows.
    windows = db.define_periodic_view(
        "volume_30d",
        "DEFINE VIEW volume_30d AS SELECT symbol, SUM(shares) AS shares "
        "FROM trades WHERE side = 'sell' GROUP BY symbol",
        sliding(window=WINDOW_DAYS, step=1),
        chronon_of=lambda row: float(row["day"]),
        expire_after=1.0,
    )

    # Optimized: a cyclic buffer of 30 per-day partial sums per symbol.
    buffer = KeyedMovingWindow(SUM, width=WINDOW_DAYS, bucket_width=1.0)

    workload = StockWorkload(seed=9, symbols=40, trades_per_day=200)
    snapshot = GLOBAL_COUNTERS.snapshot()
    last_day = 0
    for record in workload.records(18_000):  # 90 trading days
        last_day = record["day"]
        db.append("trades", record)
        if record["side"] == "sell":
            buffer.observe(record["symbol"], record["shares"], float(record["day"]))
    work = GLOBAL_COUNTERS.diff(snapshot)

    # Agreement check: the *current* day's window view vs the buffer.
    current_window = windows[last_day - WINDOW_DAYS + 1]
    checked = 0
    for row in current_window:
        assert buffer.current(row["symbol"]) == row["shares"]
        checked += 1

    hot = max(buffer.items(), key=lambda kv: kv[1])
    print(f"trading days            : {last_day + 1}")
    print(f"windows materialized    : {windows.instantiated_count} "
          f"(active: {windows.active_count})")
    print(f"hottest symbol          : SYM{hot[0]:03d} with {hot[1]:,} shares "
          f"sold in the last {WINDOW_DAYS} days")
    print(f"agreement               : cyclic buffer == periodic views "
          f"for all {checked} symbols")
    folds = work["aggregate_step"]
    print(f"aggregate work observed : {folds:,} steps — the naive family "
          f"folds each sell into ~{WINDOW_DAYS} views, the buffer into 1")


if __name__ == "__main__":
    main()
