"""Incrementally computable aggregation functions (paper Preliminaries)."""

from .base import AggregateSpec, IncrementalAggregate, NonIncrementalAggregate, spec
from .registry import DEFAULT_REGISTRY, AggregateRegistry, default_registry
from .standard import AVG, COUNT, FIRST, LAST, MAX, MIN, STDEV, SUM, VAR

__all__ = [
    "IncrementalAggregate",
    "AggregateSpec",
    "NonIncrementalAggregate",
    "spec",
    "AggregateRegistry",
    "default_registry",
    "DEFAULT_REGISTRY",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "VAR",
    "STDEV",
    "FIRST",
    "LAST",
]
