"""Name → aggregate registry used by the query language and builders.

The registry maps canonical names ("SUM") to shared aggregate instances.
User-defined aggregates (subclasses of :class:`~.base.IncrementalAggregate`)
can be registered to become available in ``DEFINE VIEW`` statements.
"""

from __future__ import annotations

from typing import Dict, Iterator

from ..errors import AggregateError
from .base import IncrementalAggregate
from .standard import AVG, COUNT, FIRST, LAST, MAX, MIN, STDEV, SUM, VAR


class AggregateRegistry:
    """A mutable registry of aggregation functions keyed by name."""

    def __init__(self) -> None:
        self._functions: Dict[str, IncrementalAggregate] = {}

    def register(self, function: IncrementalAggregate, replace: bool = False) -> None:
        """Register *function* under its canonical name."""
        name = function.name.upper()
        if name in self._functions and not replace:
            raise AggregateError(f"aggregate {name!r} is already registered")
        self._functions[name] = function

    def get(self, name: str) -> IncrementalAggregate:
        """Look up an aggregate by (case-insensitive) name."""
        try:
            return self._functions[name.upper()]
        except KeyError:
            known = ", ".join(sorted(self._functions))
            raise AggregateError(
                f"unknown aggregate {name!r}; known aggregates: {known}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.upper() in self._functions

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._functions))

    def copy(self) -> "AggregateRegistry":
        """An independent copy (databases get their own registry)."""
        clone = AggregateRegistry()
        clone._functions = dict(self._functions)
        return clone


def default_registry() -> AggregateRegistry:
    """A registry pre-loaded with the standard aggregates."""
    registry = AggregateRegistry()
    for function in (COUNT, SUM, MIN, MAX, AVG, VAR, STDEV, FIRST, LAST):
        registry.register(function)
    return registry


#: Process-wide default registry.
DEFAULT_REGISTRY = default_registry()
