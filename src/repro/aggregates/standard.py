"""The standard incrementally computable aggregation functions.

MIN, MAX, SUM and COUNT are the paper's examples of functions computable
in O(n) per group and O(1) per increment.  AVG and VAR/STDEV are included
as *decomposable* aggregates: their accumulators are tuples of SUM-like
parts, each maintained in O(1), finalized arithmetically.  FIRST and LAST
exploit chronicle ordering (appends arrive in sequence-number order).

All state values are plain tuples/numbers so that persistent views can
store one state per group row.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

from .base import IncrementalAggregate


class Count(IncrementalAggregate):
    """COUNT(*) — number of rows in the group."""

    name = "COUNT"
    invertible = True
    takes_argument = False

    def output_domain(self, input_domain: Any) -> Any:
        from ..relational.types import INT

        return INT

    def initial(self) -> int:
        return 0

    def step(self, state: int, value: Any) -> int:
        return state + 1

    def merge(self, left: int, right: int) -> int:
        return left + right

    def unstep(self, state: int, value: Any) -> int:
        return state - 1

    def unmerge(self, state: int, removed: int) -> int:
        return state - removed

    def finalize(self, state: int) -> int:
        return state


class Sum(IncrementalAggregate):
    """SUM(attr) — sum of the attribute over the group (0 when empty)."""

    name = "SUM"
    invertible = True

    def initial(self) -> Any:
        return 0

    def step(self, state: Any, value: Any) -> Any:
        return state + value

    def merge(self, left: Any, right: Any) -> Any:
        return left + right

    def unstep(self, state: Any, value: Any) -> Any:
        return state - value

    def unmerge(self, state: Any, removed: Any) -> Any:
        return state - removed

    def finalize(self, state: Any) -> Any:
        return state


class Min(IncrementalAggregate):
    """MIN(attr).  Incremental under insert-only streams; not invertible."""

    name = "MIN"
    invertible = False

    def initial(self) -> Optional[Any]:
        return None

    def step(self, state: Optional[Any], value: Any) -> Any:
        if state is None or value < state:
            return value
        return state

    def merge(self, left: Optional[Any], right: Optional[Any]) -> Optional[Any]:
        if left is None:
            return right
        if right is None:
            return left
        return left if left <= right else right

    def finalize(self, state: Optional[Any]) -> Optional[Any]:
        return state


class Max(IncrementalAggregate):
    """MAX(attr).  Incremental under insert-only streams; not invertible."""

    name = "MAX"
    invertible = False

    def initial(self) -> Optional[Any]:
        return None

    def step(self, state: Optional[Any], value: Any) -> Any:
        if state is None or value > state:
            return value
        return state

    def merge(self, left: Optional[Any], right: Optional[Any]) -> Optional[Any]:
        if left is None:
            return right
        if right is None:
            return left
        return left if left >= right else right

    def finalize(self, state: Optional[Any]) -> Optional[Any]:
        return state


class Avg(IncrementalAggregate):
    """AVG(attr), decomposed into (sum, count) — both O(1) per step."""

    name = "AVG"
    invertible = True

    def output_domain(self, input_domain: Any) -> Any:
        from ..relational.types import FLOAT

        return FLOAT

    def initial(self) -> Tuple[Any, int]:
        return (0, 0)

    def step(self, state: Tuple[Any, int], value: Any) -> Tuple[Any, int]:
        return (state[0] + value, state[1] + 1)

    def merge(self, left: Tuple[Any, int], right: Tuple[Any, int]) -> Tuple[Any, int]:
        return (left[0] + right[0], left[1] + right[1])

    def unstep(self, state: Tuple[Any, int], value: Any) -> Tuple[Any, int]:
        return (state[0] - value, state[1] - 1)

    def unmerge(self, state: Tuple[Any, int], removed: Tuple[Any, int]) -> Tuple[Any, int]:
        return (state[0] - removed[0], state[1] - removed[1])

    def finalize(self, state: Tuple[Any, int]) -> Optional[float]:
        total, count = state
        if count == 0:
            return None
        return total / count


class Var(IncrementalAggregate):
    """Population variance, decomposed into (sum, sum-of-squares, count)."""

    name = "VAR"
    invertible = True

    def output_domain(self, input_domain: Any) -> Any:
        from ..relational.types import FLOAT

        return FLOAT

    def initial(self) -> Tuple[Any, Any, int]:
        return (0, 0, 0)

    def step(self, state: Tuple[Any, Any, int], value: Any) -> Tuple[Any, Any, int]:
        return (state[0] + value, state[1] + value * value, state[2] + 1)

    def merge(self, left: Tuple[Any, Any, int], right: Tuple[Any, Any, int]) -> Tuple[Any, Any, int]:
        return (left[0] + right[0], left[1] + right[1], left[2] + right[2])

    def unstep(self, state: Tuple[Any, Any, int], value: Any) -> Tuple[Any, Any, int]:
        return (state[0] - value, state[1] - value * value, state[2] - 1)

    def unmerge(self, state: Tuple[Any, Any, int],
                removed: Tuple[Any, Any, int]) -> Tuple[Any, Any, int]:
        return (state[0] - removed[0], state[1] - removed[1], state[2] - removed[2])

    def finalize(self, state: Tuple[Any, Any, int]) -> Optional[float]:
        total, squares, count = state
        if count == 0:
            return None
        mean = total / count
        # Clamp tiny negative values produced by floating-point cancellation.
        return max(squares / count - mean * mean, 0.0)


class Stdev(Var):
    """Population standard deviation (square root of :class:`Var`)."""

    name = "STDEV"

    def finalize(self, state: Tuple[Any, Any, int]) -> Optional[float]:
        variance = super().finalize(state)
        if variance is None:
            return None
        return math.sqrt(variance)


class First(IncrementalAggregate):
    """FIRST(attr) — value from the earliest row (chronicle order).

    The accumulator is ``(has_value, value)`` — a plain tuple, so view
    checkpoints stay JSON-serializable.
    """

    name = "FIRST"
    mergeable = False  # merge order is not derivable from the state alone
    invertible = False

    def initial(self) -> Tuple[bool, Any]:
        return (False, None)

    def step(self, state: Tuple[bool, Any], value: Any) -> Tuple[bool, Any]:
        return state if state[0] else (True, value)

    def merge(self, left: Tuple[bool, Any], right: Tuple[bool, Any]) -> Tuple[bool, Any]:
        return left if left[0] else right

    def finalize(self, state: Tuple[bool, Any]) -> Optional[Any]:
        return state[1] if state[0] else None


class Last(IncrementalAggregate):
    """LAST(attr) — value from the latest row (chronicle order).

    Accumulator: ``(has_value, value)``, as for :class:`First`.
    """

    name = "LAST"
    mergeable = False
    invertible = False

    def initial(self) -> Tuple[bool, Any]:
        return (False, None)

    def step(self, state: Tuple[bool, Any], value: Any) -> Tuple[bool, Any]:
        return (True, value)

    def merge(self, left: Tuple[bool, Any], right: Tuple[bool, Any]) -> Tuple[bool, Any]:
        return right if right[0] else left

    def finalize(self, state: Tuple[bool, Any]) -> Optional[Any]:
        return state[1] if state[0] else None


#: Shared singleton instances (the aggregates are stateless).
COUNT = Count()
SUM = Sum()
MIN = Min()
MAX = Max()
AVG = Avg()
VAR = Var()
STDEV = Stdev()
FIRST = First()
LAST = Last()
