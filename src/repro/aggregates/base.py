"""The incremental-aggregation framework.

The paper (Preliminaries) admits only aggregation functions that are
*incrementally computable*, or decomposable into incrementally computable
functions: computable in O(n) over a group of size n and in O(1) per
increment of size 1.  We model that contract explicitly:

* :class:`IncrementalAggregate` — carries an accumulator through
  ``initial() → step(state, value) → finalize(state)``; ``merge`` combines
  two accumulators (needed by the cyclic-buffer optimizer of Section 5.1
  and by decomposed aggregates).
* ``invertible`` — whether ``unstep`` can remove a value in O(1); SUM and
  COUNT are, MIN/MAX are not.  Chronicles are insert-only so inversion is
  never required for plain SCA maintenance, but the moving-window
  optimizer exploits it when present.

An :class:`AggregateSpec` pairs an aggregate with its input attribute and
output name, as written in ``GROUPBY(C, GL, AL)`` aggregation lists.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..complexity.counters import GLOBAL_COUNTERS
from ..errors import AggregateError, NotIncrementalError


class IncrementalAggregate:
    """Base class for incrementally computable aggregation functions.

    Subclasses define the class attributes ``name``, ``mergeable`` and
    ``invertible`` and implement the state-transition methods.  States
    must be treated as opaque by callers and must be cheaply copyable
    values (tuples/numbers), because view maintenance stores one state per
    group row.
    """

    #: Canonical upper-case name ("SUM", "COUNT", ...).
    name: str = "?"
    #: Whether two partial states can be merged (decomposability).
    mergeable: bool = True
    #: Whether a value can be removed from the state in O(1).
    invertible: bool = False
    #: Whether the aggregate consumes an attribute (COUNT(*) does not).
    takes_argument: bool = True

    def initial(self) -> Any:
        """The accumulator for the empty group."""
        raise NotImplementedError

    def step(self, state: Any, value: Any) -> Any:
        """Fold one value into the accumulator — must be O(1)."""
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        """Combine two accumulators (decomposed evaluation)."""
        raise NotImplementedError

    def unstep(self, state: Any, value: Any) -> Any:
        """Remove one previously-stepped value (invertible aggregates)."""
        raise NotImplementedError(f"{self.name} is not invertible")

    def unmerge(self, state: Any, removed: Any) -> Any:
        """Undo a previous ``merge(state', removed)`` (invertible only).

        The cyclic-buffer window optimizer (Section 5.1) uses this to
        evict a whole bucket's partial state in O(1).
        """
        raise NotImplementedError(f"{self.name} is not invertible")

    def finalize(self, state: Any) -> Any:
        """The aggregate's visible result for the accumulator."""
        raise NotImplementedError

    def output_domain(self, input_domain: Any) -> Any:
        """Domain of the result attribute given the input's domain.

        Defaults to the input domain (MIN/MAX/SUM preserve it); COUNT and
        the ratio aggregates override.  *input_domain* may be ``None``
        for argument-less aggregates.
        """
        if input_domain is None:
            from ..relational.types import FLOAT

            return FLOAT
        return input_domain

    # -- batch contract ------------------------------------------------------------

    def compute(self, values: Any) -> Any:
        """O(n) batch evaluation: fold every value and finalize."""
        state = self.initial()
        for value in values:
            GLOBAL_COUNTERS.count("aggregate_step")
            state = self.step(state, value)
        return self.finalize(state)

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


class AggregateSpec:
    """One entry of an aggregation list: ``function(attribute) AS output``.

    Parameters
    ----------
    function:
        The :class:`IncrementalAggregate` instance.
    attribute:
        Input attribute name; ``None`` only for argument-less aggregates
        (COUNT(*)).
    output:
        Result attribute name; defaults to ``func_attr`` / ``func``.
    """

    __slots__ = ("function", "attribute", "output")

    def __init__(
        self,
        function: IncrementalAggregate,
        attribute: Optional[str] = None,
        output: Optional[str] = None,
    ) -> None:
        if attribute is None and function.takes_argument:
            raise AggregateError(f"{function.name} requires an input attribute")
        self.function = function
        self.attribute = attribute
        if output is None:
            lower = function.name.lower()
            output = f"{lower}_{attribute}" if attribute else lower
        self.output = output

    def argument(self, row: Any) -> Any:
        """Extract this spec's input value from a row (1 for COUNT(*))."""
        if self.attribute is None:
            return 1
        return row[self.attribute]

    def require_incremental(self) -> None:
        """Raise unless the function honours the O(1)-step contract.

        Every built-in aggregate does; the hook exists so user-defined
        functions can declare themselves non-incremental and be rejected
        by SCA (Definition 4.3).
        """
        if not getattr(self.function, "incremental", True):
            raise NotIncrementalError(
                f"aggregate {self.function.name} is not incrementally computable "
                f"and cannot appear in a summarized chronicle algebra view"
            )

    def __repr__(self) -> str:
        arg = self.attribute if self.attribute is not None else "*"
        return f"{self.function.name}({arg}) AS {self.output}"


def spec(function: IncrementalAggregate, attribute: Optional[str] = None,
         output: Optional[str] = None) -> AggregateSpec:
    """Shorthand constructor for :class:`AggregateSpec`."""
    return AggregateSpec(function, attribute, output)


# A "batch" aggregate wrapper for testing the SCA rejection path ------------------


class NonIncrementalAggregate(IncrementalAggregate):
    """An aggregate that declares itself non-incremental.

    Wraps an arbitrary batch function (e.g. MEDIAN).  Usable in the
    general relational-algebra baseline but rejected by SCA.
    """

    incremental = False
    mergeable = False

    def __init__(self, name: str, batch: Callable[[Tuple[Any, ...]], Any]) -> None:
        self.name = name.upper()
        self._batch = batch

    def initial(self) -> Tuple[Any, ...]:
        return ()

    def step(self, state: Tuple[Any, ...], value: Any) -> Tuple[Any, ...]:
        # Keeping every value is exactly what makes this non-incremental:
        # the state is O(n), violating the paper's O(1)-per-step contract.
        return state + (value,)

    def merge(self, left: Tuple[Any, ...], right: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return left + right

    def finalize(self, state: Tuple[Any, ...]) -> Any:
        return self._batch(state)
