"""``EXPLAIN`` / ``EXPLAIN ANALYZE``: render and measure maintenance plans.

``EXPLAIN view`` answers "*why* is the compiled plan shaped the way it
is": it renders the plan tree the compiler built — fused select/project
chains collapsed into their chain head, sharing points flagged with
reference counts, the partition declaration, the per-chronicle
prefilter predicates, and the view's claimed language/IM class.  The
tree comes from :func:`repro.algebra.plan.describe_plan` against the
registry's live :class:`~repro.algebra.plan.PlanCompiler`, so it shows
the *actual* compiled structure (which depends on cross-view sharing),
not a recomputation.

``EXPLAIN ANALYZE view`` additionally drives a short instrumented
window — synthesized records appended through the normal ingest path
under a private :class:`~repro.obs.core.Observability` handle — and
annotates every operator with measured calls, output rows, wall time
(mean/p99), the Theorem-4.2 work measure, and delta-cache hits, all
read from the ``maintain``/``delta`` span trees the engines emit.
Measured spans are matched to described nodes *structurally*, by the
engine-prefixed operator-kind path (the same "shape" key the
:class:`~repro.obs.costmodel.CostLedger` aggregates by), so EXPLAIN
output, ledger rows, and span trees all line up.

Both forms work on the serial engine and on sharded databases (a
partitioned view is described from one shard's registry — every shard
compiles the same plan).  Interpreted registries are described from the
raw expression tree, which matches the interpreter's one-span-per-node
tracing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.plan import PlanNode, describe_plan
from ..errors import ObservabilityError
from . import runtime
from .core import Observability
from .costmodel import span_work
from .tracer import Span

#: Instrumented-window defaults: enough appends for stable numbers,
#: small enough to finish in milliseconds.
DEFAULT_EVENTS = 8
DEFAULT_BATCH = 4


class OperatorMeasurement:
    """Aggregated measurements of one plan position over the window."""

    __slots__ = ("calls", "rows", "seconds", "max_seconds", "counters")

    def __init__(self) -> None:
        self.calls = 0
        self.rows = 0
        self.seconds = 0.0
        self.max_seconds = 0.0
        self.counters: Dict[str, int] = {}

    def add(self, span: Span) -> None:
        self.calls += 1
        self.rows += int(span.attrs.get("rows", 0) or 0)
        self.seconds += span.duration
        if span.duration > self.max_seconds:
            self.max_seconds = span.duration
        for event, amount in span.counters.items():
            self.counters[event] = self.counters.get(event, 0) + amount

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    @property
    def work(self) -> int:
        return span_work(self.counters)

    @property
    def cache_hits(self) -> int:
        return self.counters.get("delta_cache_hit", 0)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "calls": self.calls,
            "rows": self.rows,
            "seconds": self.seconds,
            "max_seconds": self.max_seconds,
            "work": self.work,
        }
        if self.counters:
            out["counters"] = dict(sorted(self.counters.items()))
        return out


class ExplainReport:
    """The result of :func:`explain` — renderable and JSON-ready."""

    def __init__(
        self,
        view: str,
        engine: str,
        plan: PlanNode,
        language: Optional[str] = None,
        im_class: Optional[str] = None,
        partition: Any = None,
        prefilters: Optional[Dict[str, List[str]]] = None,
        summary: Optional[str] = None,
        note: Optional[str] = None,
    ) -> None:
        self.view = view
        self.engine = engine
        self.plan = plan
        self.language = language
        self.im_class = im_class
        self.partition = partition
        self.prefilters = prefilters or {}
        #: The summarization step applied on top of the χ expression
        #: (Theorem 4.3's reshaping: grouping or projection).
        self.summary = summary
        self.note = note
        #: Filled by EXPLAIN ANALYZE.
        self.analyzed = False
        self.events = 0
        self.batch = 0
        self.maintain: Optional[OperatorMeasurement] = None
        self.measurements: Dict[str, OperatorMeasurement] = {}

    # -- span → plan-node matching --------------------------------------------------

    def paths(self) -> Dict[int, str]:
        """Engine-prefixed shape path per described node (by ``id``).

        The same path construction the :class:`~repro.obs.costmodel
        .CostLedger` applies to span trees: operator kinds from the
        maintain span down, ``Kind@i`` among same-kind siblings.
        """
        out: Dict[int, str] = {}

        def assign(nodes: Sequence[PlanNode], prefix: str) -> None:
            totals: Dict[str, int] = {}
            for node in nodes:
                totals[node.kind] = totals.get(node.kind, 0) + 1
            seen: Dict[str, int] = {}
            for node in nodes:
                index = seen.get(node.kind, 0)
                seen[node.kind] = index + 1
                component = (
                    node.kind if totals[node.kind] == 1 else f"{node.kind}@{index}"
                )
                path = f"{prefix}/{component}"
                out[id(node)] = path
                assign(node.children, path)

        assign([self.plan], self.engine)
        return out

    def record_maintain(self, span: Span) -> None:
        """Fold one measured ``maintain`` span into the report."""
        if self.maintain is None:
            self.maintain = OperatorMeasurement()
        self.maintain.add(span)
        self._record_deltas(span.children, self.engine)

    def _record_deltas(self, children: Sequence[Span], prefix: str) -> None:
        deltas = [c for c in children if c.name == "delta"]
        totals: Dict[str, int] = {}
        for child in deltas:
            op = str(child.attrs.get("operator", "?"))
            totals[op] = totals.get(op, 0) + 1
        seen: Dict[str, int] = {}
        for child in deltas:
            op = str(child.attrs.get("operator", "?"))
            index = seen.get(op, 0)
            seen[op] = index + 1
            component = op if totals[op] == 1 else f"{op}@{index}"
            path = f"{prefix}/{component}"
            measurement = self.measurements.get(path)
            if measurement is None:
                measurement = self.measurements[path] = OperatorMeasurement()
            measurement.add(child)
            self._record_deltas(child.children, path)

    # -- output ---------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "view": self.view,
            "engine": self.engine,
            "plan": self.plan.to_dict(),
        }
        if self.language is not None:
            out["language"] = self.language
        if self.im_class is not None:
            out["im_class"] = self.im_class
        if self.partition is not None:
            out["partition"] = repr(self.partition)
        if self.prefilters:
            out["prefilters"] = {k: list(v) for k, v in self.prefilters.items()}
        if self.summary:
            out["summary"] = self.summary
        if self.note:
            out["note"] = self.note
        if self.analyzed:
            out["analyze"] = {
                "events": self.events,
                "batch": self.batch,
                "maintain": self.maintain.to_dict() if self.maintain else None,
                "operators": {
                    path: m.to_dict()
                    for path, m in sorted(self.measurements.items())
                },
            }
        return out

    def format(self) -> str:
        verb = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        lines = [f"{verb} view {self.view!r} (engine={self.engine})"]
        if self.language is not None or self.im_class is not None:
            lines.append(f"  summary: {self.language} → {self.im_class}")
        if self.partition is not None:
            lines.append(f"  partition: {self.partition!r}")
        for chronicle, predicates in sorted(self.prefilters.items()):
            for predicate in predicates:
                lines.append(f"  prefilter[{chronicle}]: {predicate}")
        if self.summary:
            lines.append(f"  summarize: {self.summary}")
        if self.note:
            lines.append(f"  note: {self.note}")
        if self.analyzed:
            lines.append(
                f"  measured: {self.events} events × {self.batch} records"
                + (
                    f", maintain mean={_us(self.maintain.mean_seconds)}"
                    f" work/call={self.maintain.work / self.maintain.calls:.1f}"
                    if self.maintain is not None and self.maintain.calls
                    else " (no maintain spans recorded)"
                )
            )
        lines.append("  plan:")

        paths = self.paths()
        tree: List[Tuple[str, Optional[OperatorMeasurement]]] = []

        def render(node: PlanNode, indent: int) -> None:
            label = node.kind
            if node.detail:
                label += f" {node.detail}"
            for fused in node.fused:
                label += f" ⨟ {fused}"
            if node.shared:
                label += f" [shared ×{node.refs}]"
            measurement = (
                self.measurements.get(paths[id(node)]) if self.analyzed else None
            )
            tree.append(("    " + "  " * indent + label, measurement))
            for child in node.children:
                render(child, indent + 1)

        render(self.plan, 0)
        width = max(len(text) for text, _ in tree)
        for text, measurement in tree:
            if measurement is None:
                lines.append(text)
                continue
            columns = (
                f"calls={measurement.calls}"
                f" rows={measurement.rows}"
                f" mean={_us(measurement.mean_seconds)}"
                f" max={_us(measurement.max_seconds)}"
                f" work={measurement.work}"
            )
            if measurement.cache_hits:
                columns += f" cache_hits={measurement.cache_hits}"
            lines.append(f"{text.ljust(width)}  {columns}")

        if self.analyzed:
            matched = {paths[id(node)] for node in self.plan.walk()}
            extras = sorted(set(self.measurements) - matched)
            if extras:
                lines.append("  unmatched spans (interpreter fallback inside a step):")
                for path in extras:
                    m = self.measurements[path]
                    lines.append(
                        f"    {path}  calls={m.calls} rows={m.rows}"
                        f" mean={_us(m.mean_seconds)}"
                    )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ExplainReport(view={self.view!r}, engine={self.engine!r})"


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}us"


# ---------------------------------------------------------------------------
# Building reports
# ---------------------------------------------------------------------------


def _locate_registry(db: Any, name: str) -> Tuple[Any, Optional[str]]:
    """The registry describing *name*: serial first, then shard units."""
    registry = db.registry
    if name in registry:
        return registry, None
    for group in getattr(db, "_shard_groups", {}).values():
        for unit in group.units:
            if name in unit.registry:
                note = (
                    f"partitioned across {len(group.units)} shards; "
                    f"plan described from one shard (all shards compile "
                    f"the same plan)"
                )
                return unit.registry, note
    raise ObservabilityError(f"unknown view: {name!r}")


def _describe_summary(summary: Any) -> Optional[str]:
    grouping = getattr(summary, "grouping", None)
    if grouping is not None:
        aggs = ", ".join(
            f"{spec.function.name.upper()}({spec.attribute or '*'}) AS {spec.output}"
            for spec in summary.aggregates
        )
        text = f"group by ({', '.join(grouping) or 'ALL'}); {aggs}"
    else:
        names = getattr(summary, "names", None)
        if names is None:
            return None
        text = "π [" + ", ".join(names) + "]"
    having = getattr(summary, "having", None)
    if having is not None:
        text += f" having {having!r}"
    return text


def explain(db: Any, name: str) -> ExplainReport:
    """Describe the maintenance plan of view *name* on *db*."""
    registry, note = _locate_registry(db, name)
    registered = registry._views[name]
    view = registered.view
    compiler = registry._compiler
    if compiler is not None:
        registry.ensure_compiled()
        root = registered.root
        engine = "compiled"
    else:
        root = view.expression
        engine = "interpreted"
    plan = describe_plan(root, compiler)
    prefilters = {
        chronicle: [repr(p) for p in predicates]
        for chronicle, predicates in registered.prefilters.items()
    }
    language = getattr(view, "language", None)
    im_class = getattr(view, "im_class", None)
    return ExplainReport(
        view=name,
        engine=engine,
        plan=plan,
        language=getattr(language, "value", None),
        im_class=getattr(im_class, "value", None),
        partition=registered.partition,
        prefilters=prefilters,
        summary=_describe_summary(getattr(view, "summary", None)),
        note=note,
    )


def explain_analyze(
    db: Any,
    name: str,
    events: int = DEFAULT_EVENTS,
    batch: int = DEFAULT_BATCH,
    record_factory: Optional[Any] = None,
    chronicle: Optional[str] = None,
) -> ExplainReport:
    """EXPLAIN plus a measured window of *events* × *batch* appends.

    Drives synthesized records (or *record_factory(index)* outputs)
    through the normal ingest path of the driver *chronicle* (default:
    the view's first) under a private observability handle, then
    annotates the report with per-operator measurements from the
    recorded span trees.  The database's own observability state is
    suspended for the window and restored after.
    """
    if events < 1:
        raise ValueError("events must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    report = explain(db, name)
    view = db.view(name)
    chronicles = view.chronicle_names()
    driver = chronicle if chronicle is not None else chronicles[0]
    if driver not in chronicles:
        raise ObservabilityError(
            f"chronicle {driver!r} does not feed view {name!r} "
            f"(it reads {sorted(chronicles)})"
        )
    if record_factory is None:
        from .conformance import schema_record_factory

        record_factory = schema_record_factory(db.chronicle(driver).schema)

    obs = Observability(trace=True, trace_operators=True, audit="off", ring=512)
    collected: List[Span] = []
    with runtime.installed(obs):
        # Warm-up append: first-touch effects (lazy compilation, new
        # group rows) land here, not in the measurements.
        db.append(driver, [record_factory(i) for i in range(batch)])
        seen = {id(s) for t in obs.tracer.traces() for s in t.walk()}
        for event in range(events):
            base = (event + 1) * batch
            db.append(
                driver, [record_factory(base + i) for i in range(batch)]
            )
        for trace in obs.tracer.traces():
            for span in trace.find("maintain"):
                if span.attrs.get("view") == name and id(span) not in seen:
                    collected.append(span)
    if not collected:
        raise ObservabilityError(
            f"no maintenance spans recorded for view {name!r} — the "
            f"synthesized records may not pass its prefilter; pass a "
            f"record_factory that produces matching records"
        )
    report.analyzed = True
    report.events = events
    report.batch = batch
    for span in collected:
        report.record_maintain(span)
    return report
