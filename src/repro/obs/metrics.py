"""A small pull-style metrics registry: counters, gauges, histograms.

The registry is the aggregated (cheap, always-on-able) face of the
observability layer: where traces record *individual* appends, metrics
accumulate per-(view, chronicle, operator) totals that stay O(label
cardinality) in memory no matter how long the process runs — the shape
every production IVM deployment actually scrapes.

Three instrument kinds, deliberately mirroring the Prometheus data model
so the text exposition format falls out directly:

* :class:`Counter` — monotonically increasing totals
  (``view_maintained_total``);
* :class:`Gauge` — last-written values (``registered_views``);
* :class:`Histogram` — fixed-bucket latency/size distributions
  (``append_seconds``).  Buckets are chosen at creation and never
  resized, so ``observe()`` is a bisect plus two adds.

Instruments are created lazily and identified by ``(name, labels)``;
look-ups are dict hits on a frozen label key.  Exports:
:meth:`MetricsRegistry.as_dict` (programmatic), :meth:`~MetricsRegistry
.to_json`, and :meth:`~MetricsRegistry.to_prometheus` (the standard
``text/plain; version=0.0.4`` exposition format).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds): 50µs .. 2.5s, roughly 1-2.5-5 per
#: decade — wide enough for both a single fused operator and a full
#: 50-view append event.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers without the ``.0``)."""
    if isinstance(value, bool):  # bools are ints; never wanted here
        value = int(value)
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def as_dict(self) -> Any:
        return self.value


class Gauge:
    """A value that can go up and down; ``set`` overwrites."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_dict(self) -> Any:
        return self.value


class Histogram:
    """A fixed-bucket histogram (cumulative on export, like Prometheus).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    *non*-cumulatively in memory; the ``+Inf`` overflow bucket is
    ``bucket_counts[-1]``.  Export cumulates.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per bound, ending with the +Inf total."""
        totals, running = [], 0
        for n in self.bucket_counts:
            running += n
            totals.append(running)
        return totals

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (upper bound of the containing bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            if running >= rank:
                return bound
        return float("inf")

    def as_dict(self) -> Any:
        return {
            "buckets": dict(zip(self.bounds, self.cumulative())),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Lazily created, labelled instruments with three export formats."""

    def __init__(self) -> None:
        # name -> (kind, help, {label_key: instrument}); kept insertion-
        # ordered for stable exports, series sorted at export time.
        self._families: "Dict[str, Tuple[str, str, Dict[LabelKey, Any]]]" = {}

    # -- instrument acquisition ---------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> Dict[LabelKey, Any]:
        family = self._families.get(name)
        if family is None:
            family = (kind, help, {})
            self._families[name] = family
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family[0]}, "
                f"not a {kind}"
            )
        return family[2]

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        series = self._family(name, "counter", help)
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            instrument = series[key] = Counter()
        return instrument

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        series = self._family(name, "gauge", help)
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            instrument = series[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        **labels: Any,
    ) -> Histogram:
        series = self._family(name, "histogram", help)
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            instrument = series[key] = Histogram(
                buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
            )
        return instrument

    # -- convenience write paths ---------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        self.counter(name, **labels).inc(amount)

    def set(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(value)

    # -- reads / exports ----------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Any:
        """Current value of one series (None when it does not exist)."""
        family = self._families.get(name)
        if family is None:
            return None
        instrument = family[2].get(_label_key(labels))
        return None if instrument is None else instrument.as_dict()

    def series(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """``(labels, instrument)`` pairs of one family (empty if absent).

        The live instruments are returned, not copies — the health
        evaluator uses this to merge histogram series and read gauges
        without round-tripping through the export formats.
        """
        family = self._families.get(name)
        if family is None:
            return []
        return [(dict(key), instrument) for key, instrument in family[2].items()]

    def merged_histogram(self, name: str) -> Optional[Histogram]:
        """All of one histogram family's series merged into one.

        Series share bucket bounds when they were created through the
        same convenience path (the default buckets), which holds for
        every histogram this library emits; series with different
        bounds are skipped rather than mis-merged.  Returns ``None``
        when the family is absent or empty.
        """
        merged: Optional[Histogram] = None
        for _, instrument in self.series(name):
            if not isinstance(instrument, Histogram):
                return None
            if merged is None:
                merged = Histogram(instrument.bounds)
            elif merged.bounds != instrument.bounds:
                continue
            for index, count in enumerate(instrument.bucket_counts):
                merged.bucket_counts[index] += count
            merged.sum += instrument.sum
            merged.count += instrument.count
        return merged

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark phases)."""
        self._families.clear()

    # -- cross-process deltas -----------------------------------------------------

    def to_deltas(self) -> List[Tuple[str, str, LabelKey, Any]]:
        """Every series as a portable ``(name, kind, labels, value)`` list.

        The wire format of the worker telemetry relay
        (:mod:`repro.parallel.worker`): a worker resets its registry per
        window, so the accumulated series *are* that window's deltas.
        Counter/gauge values travel as numbers; histograms as
        ``(sum, count, bucket_counts)`` with the standard bucket bounds
        implied — bounded by label cardinality, never by window size.
        """
        out: List[Tuple[str, str, LabelKey, Any]] = []
        for name, (kind, _help, series) in self._families.items():
            for key, instrument in series.items():
                if kind == "histogram":
                    value: Any = (
                        instrument.sum,
                        instrument.count,
                        list(instrument.bucket_counts),
                    )
                else:
                    value = instrument.value
                out.append((name, kind, key, value))
        return out

    def merge_deltas(
        self,
        deltas: Iterable[Tuple[str, str, Any, Any]],
        **extra_labels: Any,
    ) -> int:
        """Merge :meth:`to_deltas` output into this registry.

        *extra_labels* (e.g. ``shard=...``, ``worker=...``) are added to
        every merged series, so one registry can absorb many workers'
        deltas without collisions.  Counters add, gauges overwrite,
        histograms merge bucket-wise (a series whose bucket count does
        not match the local default layout is skipped rather than
        mis-merged).  Returns the number of series merged.
        """
        merged = 0
        for name, kind, key, value in deltas:
            labels = dict(key)
            for label, label_value in extra_labels.items():
                if label_value is not None:
                    labels[label] = label_value
            if kind == "counter":
                self.inc(name, value, **labels)
            elif kind == "gauge":
                self.set(name, value, **labels)
            elif kind == "histogram":
                total, count, bucket_counts = value
                histogram = self.histogram(name, **labels)
                if len(bucket_counts) != len(histogram.bucket_counts):
                    continue
                for index, bucket in enumerate(bucket_counts):
                    histogram.bucket_counts[index] += bucket
                histogram.sum += total
                histogram.count += count
            else:
                continue
            merged += 1
        return merged

    def as_dict(self) -> Dict[str, Any]:
        """``{name: {"type", "help", "series": {label-string: value}}}``."""
        out: Dict[str, Any] = {}
        for name, (kind, help, series) in sorted(self._families.items()):
            out[name] = {
                "type": kind,
                "help": help,
                "series": {
                    ",".join(f"{k}={v}" for k, v in key) or "": instrument.as_dict()
                    for key, instrument in sorted(series.items())
                },
            }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, (kind, help, series) in sorted(self._families.items()):
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for key, instrument in sorted(series.items()):
                if kind == "histogram":
                    totals = instrument.cumulative()
                    for bound, total in zip(instrument.bounds, totals):
                        lines.append(
                            f"{name}_bucket{{{_render_labels(key, ('le', _format_value(bound)))}}} {total}"
                        )
                    lines.append(
                        f"{name}_bucket{{{_render_labels(key, ('le', '+Inf'))}}} {totals[-1]}"
                    )
                    base = _render_labels(key)
                    suffix = f"{{{base}}}" if base else ""
                    lines.append(f"{name}_sum{suffix} {_format_value(instrument.sum)}")
                    lines.append(f"{name}_count{suffix} {instrument.count}")
                else:
                    base = _render_labels(key)
                    suffix = f"{{{base}}}" if base else ""
                    lines.append(f"{name}{suffix} {_format_value(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


class HistogramWindow:
    """Per-interval deltas of one cumulative histogram family.

    Histograms only ever accumulate, so a lifetime ``quantile(0.99)``
    converges to a constant and stops saying anything about *now*.  The
    metrics-history sampler wants the p99 *of the last interval*: wrap
    the family name in a window, and each :meth:`delta` call returns a
    :class:`Histogram` holding exactly the observations recorded since
    the previous call (all series of the family merged).

    Returns ``None`` while the family is absent; a delta with
    ``count == 0`` when nothing new arrived.  A shrinking cumulative
    count (registry reset between calls) re-baselines: the whole
    current histogram becomes the window.
    """

    __slots__ = ("registry", "name", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self._bounds: Optional[Tuple[float, ...]] = None
        self._counts: List[int] = []
        self._sum = 0.0
        self._count = 0

    def delta(self) -> Optional[Histogram]:
        merged = self.registry.merged_histogram(self.name)
        if merged is None:
            return None
        if self._bounds != merged.bounds or self._count > merged.count:
            previous_counts: Sequence[int] = (0,) * len(merged.bucket_counts)
            previous_sum, previous_count = 0.0, 0
        else:
            previous_counts = self._counts
            previous_sum, previous_count = self._sum, self._count
        window = Histogram(merged.bounds)
        for index, count in enumerate(merged.bucket_counts):
            window.bucket_counts[index] = count - previous_counts[index]
        window.sum = merged.sum - previous_sum
        window.count = merged.count - previous_count
        self._bounds = merged.bounds
        self._counts = list(merged.bucket_counts)
        self._sum = merged.sum
        self._count = merged.count
        return window


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs: Iterable[Tuple[str, str]] = key if extra is None else tuple(key) + (extra,)
    return ",".join(f'{k}="{v}"' for k, v in pairs)
