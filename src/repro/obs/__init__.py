"""Observability for the maintenance pipeline: traces, metrics, audit.

The paper proves *per-append cost guarantees* (Theorems 4.2-4.5); this
package makes them observable on a live system instead of only checkable
offline through benchmark counter diffs:

* :mod:`~repro.obs.tracer` — span trees per append event
  (``append`` → ``prefilter`` → per-view ``maintain`` → per-operator
  ``delta``), each span carrying wall time and a
  :class:`~repro.complexity.counters.CostCounters` diff; bounded ring
  buffer, JSON-lines export;
* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms keyed by (view, chronicle, operator), exportable as a
  dict, JSON, or Prometheus text;
* :mod:`~repro.obs.auditor` — the live no-chronicle-access check:
  ``chronicle_read == 0`` and ``view_read`` bounded per maintenance
  span, in ``warn`` or ``raise`` mode;
* :mod:`~repro.obs.runtime` — the module-level no-op fast path that
  keeps all of it zero-cost when disabled.

Quickstart::

    from repro import ChronicleDatabase

    db = ChronicleDatabase(observe=True)      # installs observability
    ...
    db.observability.tracer.last().format()   # the latest append trace
    db.observability.metrics.to_prometheus()  # scrapeable metrics
"""

from .auditor import AuditViolation, AuditWarning, Auditor
from .core import Observability
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .runtime import get as get_observability
from .tracer import Span, Tracer

__all__ = [
    "AuditViolation",
    "AuditWarning",
    "Auditor",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "get_observability",
]
