"""Observability for the maintenance pipeline: traces, metrics, audit.

The paper proves *per-append cost guarantees* (Theorems 4.2-4.5); this
package makes them observable on a live system instead of only checkable
offline through benchmark counter diffs:

* :mod:`~repro.obs.tracer` — span trees per append event
  (``append`` → ``prefilter`` → per-view ``maintain`` → per-operator
  ``delta``), each span carrying wall time and a
  :class:`~repro.complexity.counters.CostCounters` diff; bounded ring
  buffer, JSON-lines export;
* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms keyed by (view, chronicle, operator), exportable as a
  dict, JSON, or Prometheus text;
* :mod:`~repro.obs.auditor` — the live no-chronicle-access check:
  ``chronicle_read == 0`` and ``view_read`` bounded per maintenance
  span, in ``warn`` or ``raise`` mode;
* :mod:`~repro.obs.runtime` — the module-level no-op fast path that
  keeps all of it zero-cost when disabled.

Quickstart::

    from repro import ChronicleDatabase

    db = ChronicleDatabase(observe=True)      # installs observability
    ...
    db.observability.tracer.last().format()   # the latest append trace
    db.observability.metrics.to_prometheus()  # scrapeable metrics
"""

from .auditor import AuditViolation, AuditWarning, Auditor
from .core import Observability
from .costmodel import CostEntry, CostLedger, span_probes, span_work
from .exporters import (
    AttributionNode,
    JsonlSpanSink,
    MetricsServer,
    attribution_tree,
    format_attribution,
)
from .health import (
    HealthCheck,
    HealthReport,
    ShardHealth,
    ShardLag,
    SloPolicy,
    evaluate_health,
)
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .recorder import FlightRecorder, summarize_span
from .runtime import get as get_observability
from .tracer import Span, Tracer

#: Conformance symbols are loaded lazily (PEP 562): this package is
#: imported by the core hot-path modules for the runtime slot, and the
#: profiler imports the algebra layer — an eager import would cycle.
_CONFORMANCE_EXPORTS = (
    "ConformanceCertificate",
    "ConformanceProfiler",
    "SweepVerdict",
    "certify_expression",
    "schema_record_factory",
)

def __getattr__(name: str):
    if name in _CONFORMANCE_EXPORTS:
        from . import conformance

        return getattr(conformance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AttributionNode",
    "AuditViolation",
    "AuditWarning",
    "Auditor",
    "ConformanceCertificate",
    "ConformanceProfiler",
    "CostEntry",
    "CostLedger",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "HealthCheck",
    "HealthReport",
    "Histogram",
    "JsonlSpanSink",
    "MetricsRegistry",
    "MetricsServer",
    "Observability",
    "ShardHealth",
    "ShardLag",
    "SloPolicy",
    "Span",
    "SweepVerdict",
    "Tracer",
    "attribution_tree",
    "certify_expression",
    "evaluate_health",
    "format_attribution",
    "get_observability",
    "schema_record_factory",
    "span_probes",
    "span_work",
    "summarize_span",
]
