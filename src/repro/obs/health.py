"""Operational health: SLO policies, shard lag, and OK/DEGRADED/FAILING.

The paper's freshness story — views stay current at bounded per-append
cost — becomes operational here.  Since the sharded engine decoupled
*admission* (a batch gets its sequence number on the serial path) from
*visibility* (the batch is readable once every shard's watermark passes
it), freshness is a measurable gap, the same signal streaming systems
watch as per-partition consumer lag.  This module gives it first-class
types:

* :class:`SloPolicy` — a small frozen declaration of the service-level
  objectives a deployment promises: p99 maintain latency, shard lag (in
  batches and seconds), worker queue depth, auditor violations, engine
  errors.  Carried on :class:`~repro.core.config.DatabaseConfig` as the
  ``slo`` field.
* :class:`ShardLag` / :class:`ShardHealth` — a point-in-time snapshot
  of every worker shard: watermark, lag behind admission, staleness,
  records applied, and the imbalance ratio across the fleet.  Built by
  :meth:`~repro.parallel.engine.ShardedDatabase.shard_health`.
* :class:`HealthCheck` / :class:`HealthReport` — one evaluated rule and
  the overall verdict.  :func:`evaluate_health` turns (metrics,
  auditor, shard snapshot) × policy into a report.

Verdict semantics are deterministic and documented, not vibes:

* **hard checks** (auditor violations beyond the permitted count,
  engine/worker errors) — any breach is ``FAILING``: a theorem-level
  invariant or a maintenance worker broke, and view state can no longer
  be trusted to be fresh;
* **soft checks** (p99 latency, shard lag, staleness, queue depth) —
  one breach is ``DEGRADED``, two or more are ``FAILING``: a single
  pressured dimension is a warning, several at once mean the engine is
  not keeping up.

The ``/health`` HTTP route (:mod:`repro.obs.exporters`) serves the
report as JSON — 200 for ``OK``/``DEGRADED``, 503 for ``FAILING`` — and
the CLI renders it as ``SHOW HEALTH``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: The three health verdicts, healthiest first.
STATUSES = ("OK", "DEGRADED", "FAILING")


@dataclass(frozen=True)
class SloPolicy:
    """Declarative service-level objectives for one database.

    Every limit is inclusive ("observed <= limit is healthy").  Zero is
    a legal limit — ``max_maintain_p99_seconds=0`` declares that any
    maintenance latency at all breaches, which tests and drills use to
    inject deterministic SLO breaches.

    Parameters
    ----------
    max_maintain_p99_seconds:
        Permitted p99 of ``view_maintain_seconds`` across all views
        (soft).
    max_shard_lag_batches:
        Permitted gap between the admission watermark and the slowest
        shard's watermark, in sequence numbers (soft).
    max_shard_lag_seconds:
        Permitted staleness of a lagging shard — seconds since it last
        absorbed a window while batches are pending (soft).
    max_queue_depth:
        Permitted depth of the shard executor's work queue (soft).
    max_ipc_overhead_fraction:
        Permitted share of the sharded write path spent pickling —
        the summed ``ipc_encode_seconds``/``ipc_decode_seconds`` wall
        time over the summed ``ingest_visibility_seconds`` (soft).  Only
        evaluated once the process executor's telemetry relay has
        produced IPC samples; above the limit, the cross-process
        encoding — not maintenance — dominates the window and the
        ROADMAP's shared-memory payload work is the fix.
    max_auditor_violations:
        Permitted lifetime auditor violations (hard; default 0 — the
        no-chronicle-access theorem allows none).
    max_engine_errors:
        Permitted shard-worker/engine errors (hard; default 0).
    """

    max_maintain_p99_seconds: float = 0.25
    max_shard_lag_batches: int = 10_000
    max_shard_lag_seconds: float = 5.0
    max_queue_depth: int = 1_000
    max_ipc_overhead_fraction: float = 0.5
    max_auditor_violations: int = 0
    max_engine_errors: int = 0

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(
                    f"SloPolicy.{spec.name} must be a number, got {value!r}"
                )
            if value < 0:
                raise ConfigError(
                    f"SloPolicy.{spec.name} must be >= 0, got {value!r}"
                )

    def as_dict(self) -> Dict[str, Any]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


class ShardLag:
    """One worker shard's freshness at a point in time."""

    __slots__ = (
        "shard",
        "watermark",
        "lag_batches",
        "lag_seconds",
        "records_applied",
        "windows_applied",
        "last_apply_at",
    )

    def __init__(
        self,
        shard: str,
        watermark: int,
        lag_batches: int,
        lag_seconds: float,
        records_applied: int,
        windows_applied: int,
        last_apply_at: float,
    ) -> None:
        self.shard = shard
        self.watermark = watermark
        #: Sequence numbers admitted but not yet absorbed by this shard.
        self.lag_batches = lag_batches
        #: Seconds this shard has been behind (0.0 when caught up).
        self.lag_seconds = lag_seconds
        self.records_applied = records_applied
        self.windows_applied = windows_applied
        self.last_apply_at = last_apply_at

    def as_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "watermark": self.watermark,
            "lag_batches": self.lag_batches,
            "lag_seconds": round(self.lag_seconds, 6),
            "records_applied": self.records_applied,
            "windows_applied": self.windows_applied,
            "last_apply_at": self.last_apply_at,
        }

    def __repr__(self) -> str:
        return (
            f"ShardLag({self.shard!r}, watermark={self.watermark}, "
            f"lag_batches={self.lag_batches}, lag_seconds={self.lag_seconds:.3f})"
        )


class ShardHealth:
    """Point-in-time snapshot of the whole shard fleet.

    ``imbalance_ratio`` is max/mean of per-shard applied record counts
    (1.0 = perfectly balanced; 0.0 before any records flow) — the
    signal that says one shard is hot long before its latency shows it.
    """

    __slots__ = ("admission_watermark", "shards", "queue_depth", "at")

    def __init__(
        self,
        admission_watermark: int,
        shards: Sequence[ShardLag],
        queue_depth: int,
        at: Optional[float] = None,
    ) -> None:
        self.admission_watermark = admission_watermark
        self.shards: Tuple[ShardLag, ...] = tuple(shards)
        self.queue_depth = queue_depth
        self.at = time.time() if at is None else at

    @property
    def max_lag_batches(self) -> int:
        return max((s.lag_batches for s in self.shards), default=0)

    @property
    def max_lag_seconds(self) -> float:
        return max((s.lag_seconds for s in self.shards), default=0.0)

    @property
    def imbalance_ratio(self) -> float:
        counts = [s.records_applied for s in self.shards]
        total = sum(counts)
        if not counts or not total:
            return 0.0
        return max(counts) / (total / len(counts))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "admission_watermark": self.admission_watermark,
            "queue_depth": self.queue_depth,
            "imbalance_ratio": round(self.imbalance_ratio, 4),
            "max_lag_batches": self.max_lag_batches,
            "max_lag_seconds": round(self.max_lag_seconds, 6),
            "shards": [s.as_dict() for s in self.shards],
            "at": self.at,
        }

    def __repr__(self) -> str:
        return (
            f"ShardHealth(shards={len(self.shards)}, "
            f"max_lag_batches={self.max_lag_batches}, "
            f"imbalance={self.imbalance_ratio:.2f})"
        )


class HealthCheck:
    """One evaluated SLO rule: what was observed against which limit."""

    __slots__ = ("name", "observed", "limit", "ok", "hard")

    def __init__(
        self, name: str, observed: float, limit: float, hard: bool = False
    ) -> None:
        self.name = name
        self.observed = observed
        self.limit = limit
        self.ok = observed <= limit
        self.hard = hard

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "observed": self.observed,
            "limit": self.limit,
            "hard": self.hard,
        }

    def __repr__(self) -> str:
        state = "ok" if self.ok else "BREACH"
        return f"HealthCheck({self.name}: {self.observed} <= {self.limit} [{state}])"


class HealthReport:
    """The overall verdict plus every check that produced it."""

    __slots__ = ("status", "checks", "policy", "shard_health", "at")

    def __init__(
        self,
        status: str,
        checks: Sequence[HealthCheck],
        policy: SloPolicy,
        shard_health: Optional[ShardHealth] = None,
    ) -> None:
        self.status = status
        self.checks: Tuple[HealthCheck, ...] = tuple(checks)
        self.policy = policy
        self.shard_health = shard_health
        self.at = time.time()

    @property
    def breaches(self) -> Tuple[HealthCheck, ...]:
        return tuple(c for c in self.checks if not c.ok)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": self.status,
            "at": self.at,
            "checks": [c.as_dict() for c in self.checks],
            "policy": self.policy.as_dict(),
        }
        if self.shard_health is not None:
            out["shards"] = self.shard_health.as_dict()
        return out

    def format(self) -> str:
        """Human-readable rendering (the CLI's ``SHOW HEALTH``)."""
        lines = [f"health: {self.status}"]
        for check in self.checks:
            mark = "ok" if check.ok else ("FAIL" if check.hard else "degraded")
            lines.append(
                f"  [{mark:>8}] {check.name}: "
                f"observed {check.observed:g} (limit {check.limit:g})"
            )
        sh = self.shard_health
        if sh is not None and sh.shards:
            lines.append(
                f"  shards: admission watermark {sh.admission_watermark}, "
                f"queue depth {sh.queue_depth}, "
                f"imbalance {sh.imbalance_ratio:.2f}"
            )
            for shard in sh.shards:
                lines.append(
                    f"    {shard.shard}: watermark={shard.watermark} "
                    f"lag={shard.lag_batches} batches / "
                    f"{shard.lag_seconds:.3f}s "
                    f"({shard.records_applied} records)"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"HealthReport({self.status!r}, breaches={len(self.breaches)})"


def evaluate_health(
    observability: Any,
    policy: Optional[SloPolicy] = None,
    shard_health: Optional[ShardHealth] = None,
) -> HealthReport:
    """Evaluate *policy* against one observability handle's state.

    Reads the merged ``view_maintain_seconds`` p99, the auditor's
    violation count, the ``engine_errors_total`` counter, and — when a
    :class:`ShardHealth` snapshot is supplied — shard lag, staleness,
    and queue depth.  Verdict: any hard breach is ``FAILING``; one soft
    breach is ``DEGRADED``; two or more soft breaches are ``FAILING``.
    """
    policy = policy if policy is not None else SloPolicy()
    checks: List[HealthCheck] = []

    merged = observability.metrics.merged_histogram("view_maintain_seconds")
    p99 = merged.quantile(0.99) if merged is not None and merged.count else 0.0
    checks.append(
        HealthCheck("maintain_p99_seconds", p99, policy.max_maintain_p99_seconds)
    )

    if shard_health is not None:
        checks.append(
            HealthCheck(
                "shard_lag_batches",
                shard_health.max_lag_batches,
                policy.max_shard_lag_batches,
            )
        )
        checks.append(
            HealthCheck(
                "shard_lag_seconds",
                shard_health.max_lag_seconds,
                policy.max_shard_lag_seconds,
            )
        )
        checks.append(
            HealthCheck(
                "queue_depth", shard_health.queue_depth, policy.max_queue_depth
            )
        )

    # IPC overhead: only once the process executor's telemetry relay has
    # produced samples — a serial/thread deployment (or relay off) never
    # grows this check, so its report keeps the classic check set.
    encode = observability.metrics.merged_histogram("ipc_encode_seconds")
    decode = observability.metrics.merged_histogram("ipc_decode_seconds")
    ipc_samples = (encode.count if encode is not None else 0) + (
        decode.count if decode is not None else 0
    )
    if ipc_samples:
        ipc_seconds = (encode.sum if encode is not None else 0.0) + (
            decode.sum if decode is not None else 0.0
        )
        visibility = observability.metrics.merged_histogram(
            "ingest_visibility_seconds"
        )
        window_seconds = (
            visibility.sum if visibility is not None and visibility.count else 0.0
        )
        fraction = ipc_seconds / window_seconds if window_seconds > 0 else 1.0
        checks.append(
            HealthCheck(
                "ipc_overhead_fraction",
                round(fraction, 6),
                policy.max_ipc_overhead_fraction,
            )
        )

    violations = len(observability.auditor.violations)
    checks.append(
        HealthCheck(
            "auditor_violations",
            violations,
            policy.max_auditor_violations,
            hard=True,
        )
    )

    errors = observability.metrics.value("engine_errors_total") or 0
    checks.append(
        HealthCheck("engine_errors", errors, policy.max_engine_errors, hard=True)
    )

    hard_breaches = sum(1 for c in checks if c.hard and not c.ok)
    soft_breaches = sum(1 for c in checks if not c.hard and not c.ok)
    if hard_breaches or soft_breaches >= 2:
        status = "FAILING"
    elif soft_breaches:
        status = "DEGRADED"
    else:
        status = "OK"
    return HealthReport(status, checks, policy, shard_health)
