"""The :class:`Observability` façade: tracer + metrics + auditor.

One instance bundles the three surfaces and the configuration knobs,
and bridges them: every finished span flows through
:meth:`Observability.on_span_end`, which feeds the metrics registry and
hands maintenance spans to the auditor.  Installing the instance
(:meth:`install`, or ``ChronicleDatabase(observe=True)``) publishes it
to :mod:`repro.obs.runtime`, which is the only thing the hot-path hooks
ever look at — so constructing an Observability costs nothing until it
is installed, and uninstalling restores the zero-overhead no-op path.

Span names are the contract between the hooks and this bridge:

``append``
    One whole append event (admission + every listener).  Metrics:
    ``append_events_total{group}``, ``append_seconds{group}``, and the
    per-event :class:`~repro.complexity.counters.CostCounters` deltas as
    ``cost_<event>_total`` counters.
``prefilter``
    The registry's candidate filtering for one event.
``maintain``
    One view maintained for one event.  Metrics:
    ``view_maintained_total{view,engine}``,
    ``view_maintain_seconds{view,engine}``; audited.
``delta``
    One operator delta step (compiled plan step or interpreter node).
    Metrics: ``operator_invocations_total{operator,engine}``,
    ``operator_delta_rows_total{operator,engine}``.
``ingest``
    One sharded write window (admission through all-shards-visible —
    the end-to-end freshness gap).  Metrics:
    ``ingest_windows_total{group}``, ``ingest_visibility_seconds{group}``.
``shard_apply``
    One coalesced window applied by a shard worker.  Metrics:
    ``shard_batches_total{shard}``, ``shard_apply_seconds{shard}``.

Under ``executor="process"`` with the telemetry relay on
(``DatabaseConfig.relay_telemetry``), worker-side spans arrive as
relayed records grafted under ``shard_apply``
(:meth:`~repro.obs.tracer.Tracer.graft` — they bypass this bridge; the
worker's metric deltas are merged directly with ``shard``/``worker``
labels), and the parent emits the IPC accounting series:
``ipc_bytes_down_total{shard}`` / ``ipc_bytes_up_total{shard}``,
``ipc_encode_seconds{shard,direction}`` /
``ipc_decode_seconds{shard,direction}``, ``worker_rss_bytes{worker}`` /
``worker_cpu_seconds{worker}``, and the pressure-valve counters
``relay_spans_dropped_total{shard}`` /
``relay_series_dropped_total{shard}``.

Every finished *root* span is additionally summarized into the
:class:`~repro.obs.recorder.FlightRecorder` ring, and listener
exceptions are swallowed and counted
(``span_listener_errors_total{listener}``) so a broken exporter can
never abort the maintenance path.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional

from ..errors import MaintenanceAuditError, ObservabilityError
from . import runtime
from .auditor import Auditor
from .costmodel import CostLedger
from .health import HealthReport, SloPolicy, evaluate_health
from .metrics import MetricsRegistry
from .recorder import FlightRecorder, summarize_span
from .tracer import Span, Tracer


class Observability:
    """Tracing, metrics, and auditing for one process.

    Parameters
    ----------
    trace:
        Record span trees per append event (ring buffer of *ring*).
    trace_operators:
        Also record per-operator ``delta`` spans (the deepest, most
        verbose layer; disable to trace only append/view granularity).
    audit:
        Auditor mode: ``"off"``, ``"warn"``, or ``"raise"``.  Any mode
        other than ``"off"`` forces *trace* on — the auditor reads the
        counter diffs the tracer collects.
    view_read_limit:
        Permitted ``view_read`` count per maintenance span (default 0).
    ring:
        Trace ring-buffer capacity.
    slo:
        The :class:`~repro.obs.health.SloPolicy` the ``/health`` route
        and :meth:`health` evaluate against (``None`` — the default
        policy).
    incident_dir:
        Directory where the flight recorder writes incident bundles on
        triggers (auditor violation, shard-worker error, SLO breach).
        ``None`` (the default) keeps the in-memory ring but never
        touches disk automatically; explicit
        :meth:`incident`/``dump_incident(path=...)`` calls still work.
    costs:
        Feed the :class:`~repro.obs.costmodel.CostLedger` from finished
        maintenance spans (requires *trace*; the ledger object exists
        either way so readers never need a None check).
    cost_entries:
        The ledger's cardinality bound (distinct (view, operator,
        shape) keys).
    """

    def __init__(
        self,
        trace: bool = True,
        trace_operators: bool = True,
        audit: str = "warn",
        view_read_limit: int = 0,
        ring: int = 256,
        slo: Optional[SloPolicy] = None,
        incident_dir: Optional[str] = None,
        costs: bool = True,
        cost_entries: int = 512,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.auditor = Auditor(
            mode=audit, view_read_limit=view_read_limit, metrics=self.metrics
        )
        self.trace = bool(trace) or self.auditor.enabled
        self.trace_operators = self.trace and trace_operators
        self.tracer = Tracer(capacity=ring, on_span_end=self.on_span_end)
        #: Conformance certificates by view name (JSON-ready dicts),
        #: published by :class:`~repro.obs.conformance.ConformanceProfiler`
        #: and served on the ``/certificates`` HTTP route.
        self.certificates: Dict[str, Dict[str, Any]] = {}
        #: The live per-(view, operator, shape) cost aggregates, fed by
        #: every finished ``maintain`` span when *costs* is on.  Served
        #: by ``SHOW COSTS`` and the ``/costs`` HTTP route.
        self.cost_ledger = CostLedger(max_entries=cost_entries)
        self.record_costs = self.trace and bool(costs)
        #: The SLO policy health evaluation uses (None = defaults).
        self.slo = slo
        #: The black-box ring + incident dumper.
        self.recorder = FlightRecorder(directory=incident_dir)
        self._span_listeners: List[Callable[[Span], None]] = []
        self._server: Optional[Any] = None
        #: The :class:`~repro.obs.history.MetricsHistory` sampler, once
        #: started (``None`` until then; survives :meth:`stop_history`
        #: so the ring stays readable after shutdown).
        self.history: Optional[Any] = None
        self._db_ref: Optional["weakref.ReferenceType[Any]"] = None
        self._last_health_status = "OK"

    # -- installation ------------------------------------------------------------------

    def install(self) -> "Observability":
        """Publish this instance to the process-wide runtime slot."""
        return runtime.install(self)

    def uninstall(self) -> None:
        """Withdraw this instance (no-op if another one is installed)."""
        runtime.uninstall(self)

    @property
    def installed(self) -> bool:
        return runtime.ACTIVE is self

    def __enter__(self) -> "Observability":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    # -- exporters ---------------------------------------------------------------------

    def add_span_listener(self, listener: Callable[[Span], None]) -> None:
        """Register a callback fed every finished span (after metrics).

        :class:`~repro.obs.exporters.JsonlSpanSink` is the canonical
        listener: it ignores non-root spans and streams each completed
        trace to disk.  Listener exceptions are swallowed and counted
        (``span_listener_errors_total{listener=<type name>}``) — a
        closed sink must degrade the export, never the append path.
        """
        self._span_listeners.append(listener)

    def remove_span_listener(self, listener: Callable[[Span], None]) -> None:
        if listener in self._span_listeners:
            self._span_listeners.remove(listener)

    @property
    def server(self) -> Optional[Any]:
        """The running :class:`~repro.obs.exporters.MetricsServer`, if any."""
        return self._server

    def serve(self, port: int = 0, host: str = "127.0.0.1") -> Any:
        """Start the HTTP exporter (``/metrics``, ``/certificates``,
        ``/snapshot``) on *port* (0 = ephemeral); returns the server."""
        from .exporters import MetricsServer

        if self._server is not None:
            raise ObservabilityError(
                f"metrics server already running on port {self._server.port}"
            )
        self._server = MetricsServer(self, port=port, host=host).start()
        return self._server

    def stop_serving(self) -> None:
        """Stop the HTTP exporter (no-op when not serving)."""
        if self._server is not None:
            self._server.stop()
            self._server = None

    # -- metrics history ---------------------------------------------------------------

    def start_history(
        self,
        interval: float = 1.0,
        capacity: int = 720,
        thread: bool = True,
    ) -> Any:
        """Start the :class:`~repro.obs.history.MetricsHistory` sampler.

        With ``thread=True`` a daemon thread samples every *interval*
        seconds; ``thread=False`` builds the ring without one (callers
        drive :meth:`~repro.obs.history.MetricsHistory.sample_now`
        themselves — the CLI's ``SHOW TIMELINE``).  Raises
        :class:`ObservabilityError` when a sampler thread is already
        running; a stopped sampler is replaced, dropping its ring.
        """
        from .history import MetricsHistory

        if self.history is not None and self.history.running:
            raise ObservabilityError("metrics history already running")
        self.history = MetricsHistory(self, interval=interval, capacity=capacity)
        if thread:
            self.history.start()
        return self.history

    def stop_history(self) -> None:
        """Stop the history sampler thread; the ring stays readable."""
        if self.history is not None:
            self.history.stop()

    # -- span bridge -------------------------------------------------------------------

    def on_span_end(self, span: Span) -> None:
        """Feed one finished span into metrics and (maybe) the auditor."""
        name = span.name
        metrics = self.metrics
        if name == "maintain":
            view = str(span.attrs.get("view", "?"))
            engine = str(span.attrs.get("engine", "?"))
            metrics.inc("view_maintained_total", view=view, engine=engine)
            metrics.observe(
                "view_maintain_seconds", span.duration, view=view, engine=engine
            )
            if self.record_costs:
                # Before the auditor: a raise-mode violation still
                # leaves its cost recorded in the ledger.
                self.cost_ledger.observe_maintain(span)
            try:
                violations = self.auditor.check_span(span)
            except MaintenanceAuditError as exc:
                # Raise-mode: freeze the black box before the append
                # aborts — this is exactly the moment the tape matters.
                self.incident(
                    "auditor-violation",
                    error=str(exc),
                    span=summarize_span(span),
                )
                raise
            if violations:
                self.incident(
                    "auditor-violation",
                    violations=[v.describe() for v in violations],
                    span=summarize_span(span),
                )
        elif name == "delta":
            operator = str(span.attrs.get("operator", "?"))
            engine = str(span.attrs.get("engine", "?"))
            metrics.inc(
                "operator_invocations_total", operator=operator, engine=engine
            )
            rows = span.attrs.get("rows")
            if rows:
                metrics.inc(
                    "operator_delta_rows_total",
                    rows,
                    operator=operator,
                    engine=engine,
                )
        elif name == "append":
            group = str(span.attrs.get("group", "?"))
            metrics.inc("append_events_total", group=group)
            metrics.observe("append_seconds", span.duration, group=group)
            for event, amount in span.counters.items():
                metrics.inc(f"cost_{event}_total", amount, group=group)
        elif name == "shard_apply":
            # One coalesced maintenance window applied by a shard worker
            # (sharded engine).  The nested append/maintain spans carry
            # the per-view numbers; this series shows shard balance.
            shard = span.attrs.get("shard")
            if shard is None:
                # Never emit an unknown-shard bucket: a missing label is
                # a bug in the emitting hook, counted as such.
                metrics.inc("span_label_missing_total", span="shard_apply")
            else:
                shard = str(shard)
                metrics.inc("shard_batches_total", shard=shard)
                metrics.observe("shard_apply_seconds", span.duration, shard=shard)
        elif name == "ingest":
            # One sharded write window: the span covers admission through
            # all-shards-visible, so its duration IS the end-to-end
            # freshness gap the paper's bounded-cost claims protect.
            group = str(span.attrs.get("group", "?"))
            metrics.inc("ingest_windows_total", group=group)
            metrics.observe("ingest_visibility_seconds", span.duration, group=group)
        if span._is_root:
            self.recorder.record_span(span)
        for listener in self._span_listeners:
            try:
                listener(span)
            except Exception:
                metrics.inc(
                    "span_listener_errors_total",
                    listener=type(listener).__name__,
                )

    # -- health & incidents ------------------------------------------------------------

    def bind_database(self, db: Any) -> None:
        """Attach a database as the health/incident context source.

        Held through a weak reference so the process-wide handle can
        never keep a dropped database alive.  One database at a time —
        like the runtime slot itself, the last bind wins.
        """
        self._db_ref = weakref.ref(db)

    def database(self) -> Optional[Any]:
        """The bound database, or ``None`` (never bound / collected)."""
        return self._db_ref() if self._db_ref is not None else None

    def health(self) -> HealthReport:
        """Evaluate the SLO policy against the current state.

        Uses the bound database's :meth:`shard_health` snapshot when it
        has one (the sharded engine); a transition *into* ``FAILING``
        triggers an ``slo-breach`` incident dump.
        """
        db = self.database()
        shard_health = None
        if db is not None:
            probe = getattr(db, "shard_health", None)
            if probe is not None:
                shard_health = probe()
        report = evaluate_health(self, self.slo, shard_health)
        if report.status == "FAILING" and self._last_health_status != "FAILING":
            self.incident("slo-breach", health=report.as_dict())
        self._last_health_status = report.status
        return report

    def incident(
        self, reason: str, path: Optional[str] = None, **context: Any
    ) -> Optional[str]:
        """Trigger the flight recorder with full context; returns the path.

        Assembles whatever the moment can safely provide — per-shard
        watermarks and merged registry stats from the bound database,
        plus this handle's :meth:`snapshot` — and hands it to
        :meth:`~repro.obs.recorder.FlightRecorder.trigger`.  Context
        collection is best-effort: an incident dump must never add a
        second failure to the one being recorded.
        """
        db = self.database()
        if db is not None:
            try:
                context.setdefault("watermarks", db.watermarks())
            except Exception:
                pass
            try:
                context.setdefault("registry_stats", db.stats)
            except Exception:
                pass
        try:
            context.setdefault("snapshot", self.snapshot())
        except Exception:
            pass
        if self.history is not None:
            from .history import INCIDENT_TIMELINE_SAMPLES

            try:
                # The trailing window: a bundle records the lead-up,
                # not just the moment of failure.
                context.setdefault(
                    "timeline",
                    self.history.timeline(limit=INCIDENT_TIMELINE_SAMPLES),
                )
            except Exception:
                pass
        return self.recorder.trigger(reason, context, path=path)

    # -- snapshots ---------------------------------------------------------------------

    def cost_snapshot(self) -> Dict[str, Any]:
        """The cost ledger as a JSON-ready dict, certificates stamped.

        Conformance verdicts published since the last snapshot are
        linked onto matching entries first, so every exported row
        carries its claimed-vs-fitted class when one is known.  This is
        what the ``/costs`` HTTP route serves and what
        :meth:`~repro.obs.costmodel.CostLedger.from_dict` restores.
        """
        if self.certificates:
            self.cost_ledger.link_certificates(self.certificates)
        return self.cost_ledger.as_dict()

    def snapshot(self) -> Dict[str, Any]:
        """A one-call dict of everything: metrics, audit, trace status."""
        return {
            "metrics": self.metrics.as_dict(),
            "audit": self.auditor.summary(),
            "traces": {
                "completed": self.tracer.completed_count,
                "buffered": len(self.tracer.traces()),
                "capacity": self.tracer.capacity,
            },
            "certificates": {
                name: cert.get("conformant")
                for name, cert in sorted(self.certificates.items())
            },
            "health": self._last_health_status,
            "costs": {
                "entries": len(self.cost_ledger),
                "dropped": self.cost_ledger.dropped,
                "recording": self.record_costs,
            },
            "recorder": {
                "events": len(self.recorder.events()),
                "triggered": self.recorder.triggered,
                "dumped": self.recorder.dumped,
            },
            "history": (
                {
                    "running": self.history.running,
                    "samples": len(self.history.samples()),
                    "interval_seconds": self.history.interval,
                    "capacity": self.history.capacity,
                }
                if self.history is not None
                else {"running": False, "samples": 0}
            ),
        }

    def __repr__(self) -> str:
        state = "installed" if self.installed else "idle"
        return (
            f"Observability({state}, trace={self.trace}, "
            f"operators={self.trace_operators}, audit={self.auditor.mode!r})"
        )
