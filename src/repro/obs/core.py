"""The :class:`Observability` façade: tracer + metrics + auditor.

One instance bundles the three surfaces and the configuration knobs,
and bridges them: every finished span flows through
:meth:`Observability.on_span_end`, which feeds the metrics registry and
hands maintenance spans to the auditor.  Installing the instance
(:meth:`install`, or ``ChronicleDatabase(observe=True)``) publishes it
to :mod:`repro.obs.runtime`, which is the only thing the hot-path hooks
ever look at — so constructing an Observability costs nothing until it
is installed, and uninstalling restores the zero-overhead no-op path.

Span names are the contract between the hooks and this bridge:

``append``
    One whole append event (admission + every listener).  Metrics:
    ``append_events_total{group}``, ``append_seconds{group}``, and the
    per-event :class:`~repro.complexity.counters.CostCounters` deltas as
    ``cost_<event>_total`` counters.
``prefilter``
    The registry's candidate filtering for one event.
``maintain``
    One view maintained for one event.  Metrics:
    ``view_maintained_total{view,engine}``,
    ``view_maintain_seconds{view,engine}``; audited.
``delta``
    One operator delta step (compiled plan step or interpreter node).
    Metrics: ``operator_invocations_total{operator,engine}``,
    ``operator_delta_rows_total{operator,engine}``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import ObservabilityError
from . import runtime
from .auditor import Auditor
from .metrics import MetricsRegistry
from .tracer import Span, Tracer


class Observability:
    """Tracing, metrics, and auditing for one process.

    Parameters
    ----------
    trace:
        Record span trees per append event (ring buffer of *ring*).
    trace_operators:
        Also record per-operator ``delta`` spans (the deepest, most
        verbose layer; disable to trace only append/view granularity).
    audit:
        Auditor mode: ``"off"``, ``"warn"``, or ``"raise"``.  Any mode
        other than ``"off"`` forces *trace* on — the auditor reads the
        counter diffs the tracer collects.
    view_read_limit:
        Permitted ``view_read`` count per maintenance span (default 0).
    ring:
        Trace ring-buffer capacity.
    """

    def __init__(
        self,
        trace: bool = True,
        trace_operators: bool = True,
        audit: str = "warn",
        view_read_limit: int = 0,
        ring: int = 256,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.auditor = Auditor(
            mode=audit, view_read_limit=view_read_limit, metrics=self.metrics
        )
        self.trace = bool(trace) or self.auditor.enabled
        self.trace_operators = self.trace and trace_operators
        self.tracer = Tracer(capacity=ring, on_span_end=self.on_span_end)
        #: Conformance certificates by view name (JSON-ready dicts),
        #: published by :class:`~repro.obs.conformance.ConformanceProfiler`
        #: and served on the ``/certificates`` HTTP route.
        self.certificates: Dict[str, Dict[str, Any]] = {}
        self._span_listeners: List[Callable[[Span], None]] = []
        self._server: Optional[Any] = None

    # -- installation ------------------------------------------------------------------

    def install(self) -> "Observability":
        """Publish this instance to the process-wide runtime slot."""
        return runtime.install(self)

    def uninstall(self) -> None:
        """Withdraw this instance (no-op if another one is installed)."""
        runtime.uninstall(self)

    @property
    def installed(self) -> bool:
        return runtime.ACTIVE is self

    def __enter__(self) -> "Observability":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    # -- exporters ---------------------------------------------------------------------

    def add_span_listener(self, listener: Callable[[Span], None]) -> None:
        """Register a callback fed every finished span (after metrics).

        :class:`~repro.obs.exporters.JsonlSpanSink` is the canonical
        listener: it ignores non-root spans and streams each completed
        trace to disk.  Listener exceptions propagate — a broken sink on
        the append path should be loud, not silent.
        """
        self._span_listeners.append(listener)

    def remove_span_listener(self, listener: Callable[[Span], None]) -> None:
        if listener in self._span_listeners:
            self._span_listeners.remove(listener)

    @property
    def server(self) -> Optional[Any]:
        """The running :class:`~repro.obs.exporters.MetricsServer`, if any."""
        return self._server

    def serve(self, port: int = 0, host: str = "127.0.0.1") -> Any:
        """Start the HTTP exporter (``/metrics``, ``/certificates``,
        ``/snapshot``) on *port* (0 = ephemeral); returns the server."""
        from .exporters import MetricsServer

        if self._server is not None:
            raise ObservabilityError(
                f"metrics server already running on port {self._server.port}"
            )
        self._server = MetricsServer(self, port=port, host=host).start()
        return self._server

    def stop_serving(self) -> None:
        """Stop the HTTP exporter (no-op when not serving)."""
        if self._server is not None:
            self._server.stop()
            self._server = None

    # -- span bridge -------------------------------------------------------------------

    def on_span_end(self, span: Span) -> None:
        """Feed one finished span into metrics and (maybe) the auditor."""
        name = span.name
        metrics = self.metrics
        if name == "maintain":
            view = str(span.attrs.get("view", "?"))
            engine = str(span.attrs.get("engine", "?"))
            metrics.inc("view_maintained_total", view=view, engine=engine)
            metrics.observe(
                "view_maintain_seconds", span.duration, view=view, engine=engine
            )
            self.auditor.check_span(span)
        elif name == "delta":
            operator = str(span.attrs.get("operator", "?"))
            engine = str(span.attrs.get("engine", "?"))
            metrics.inc(
                "operator_invocations_total", operator=operator, engine=engine
            )
            rows = span.attrs.get("rows")
            if rows:
                metrics.inc(
                    "operator_delta_rows_total",
                    rows,
                    operator=operator,
                    engine=engine,
                )
        elif name == "append":
            group = str(span.attrs.get("group", "?"))
            metrics.inc("append_events_total", group=group)
            metrics.observe("append_seconds", span.duration, group=group)
            for event, amount in span.counters.items():
                metrics.inc(f"cost_{event}_total", amount, group=group)
        elif name == "shard_apply":
            # One coalesced maintenance window applied by a shard worker
            # (sharded engine).  The nested append/maintain spans carry
            # the per-view numbers; this series shows shard balance.
            shard = str(span.attrs.get("shard", "?"))
            metrics.inc("shard_batches_total", shard=shard)
            metrics.observe("shard_apply_seconds", span.duration, shard=shard)
        for listener in self._span_listeners:
            listener(span)

    # -- snapshots ---------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A one-call dict of everything: metrics, audit, trace status."""
        return {
            "metrics": self.metrics.as_dict(),
            "audit": self.auditor.summary(),
            "traces": {
                "completed": self.tracer.completed_count,
                "buffered": len(self.tracer.traces()),
                "capacity": self.tracer.capacity,
            },
            "certificates": {
                name: cert.get("conformant")
                for name, cert in sorted(self.certificates.items())
            },
        }

    def __repr__(self) -> str:
        state = "installed" if self.installed else "idle"
        return (
            f"Observability({state}, trace={self.trace}, "
            f"operators={self.trace_operators}, audit={self.auditor.mode!r})"
        )
