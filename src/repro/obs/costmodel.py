"""A persistent per-operator cost model fed by live ``maintain`` spans.

The conformance profiler (:mod:`repro.obs.conformance`) answers "does
this view's cost *scale* the way the paper claims?" with controlled
offline sweeps.  The :class:`CostLedger` answers the complementary
question — "what does each operator of each view *actually cost* under
the live workload?" — by continuously folding every finished
``maintain`` span (and its per-operator ``delta`` children) into
bounded per-``(view, operator, shape)`` aggregates:

* totals — calls, rows, wall seconds, the Theorem-4.2 **work** measure
  (:func:`span_work`) and the locate-step **probes** (:func:`span_probes`);
* an exponentially-weighted moving average of per-call wall time
  (recency-sensitive, so a regression shows up before the lifetime mean
  moves);
* a fixed-bucket latency :class:`~repro.obs.metrics.Histogram` for
  p50/p99.

The **shape** of an entry is the path of operator kinds from the
maintain span down to the operator, prefixed with the engine — e.g.
``compiled/GroupBySeq/Select`` — with ``Kind@i`` positional
disambiguation among same-kind siblings.  The maintain-level rollup
entry uses operator ``maintain`` and the bare engine as its shape.
Shapes mirror the compiled plan structure (fused select/project chains
collapse into their chain-head span), so ledger rows line up one-to-one
with ``EXPLAIN`` output (:mod:`repro.obs.explain`).

Ledgers persist: :meth:`CostLedger.as_dict` / :meth:`from_dict` (and
the JSON wrappers) round-trip **exactly** — every stored float survives
:mod:`json` unchanged, and derived statistics (mean, p50, p99) are
recomputed deterministically from the stored totals.  Certificates from
the conformance profiler are stamped onto matching entries with
:meth:`CostLedger.link_certificates`, so each row can carry its
claimed IM class next to the empirically fitted curve classes.

Zero-overhead contract: the ledger is only ever fed from
:meth:`Observability.on_span_end <repro.obs.core.Observability
.on_span_end>` — with no observability installed no spans finish, so no
ledger code runs.

This module is imported by :mod:`repro.obs.core` and therefore must not
import :mod:`repro.obs.conformance` (which imports ``core``); the work/
probe cost measures live *here* and conformance re-exports them.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram
from .tracer import Span

#: Counter events excluded from the "work" measure (the permitted
#: O(log |V|) locate-step overhead the IM classes are stated modulo).
_LOCATE_EVENTS = frozenset(("index_probe", "index_lookup"))

#: Default EWMA smoothing factor: each call contributes 10%, so the
#: average reflects roughly the last ~20 calls.
EWMA_ALPHA = 0.1


def span_work(counters: Mapping[str, int]) -> int:
    """The Theorem-4.2 work measure of one span's counter diff."""
    return sum(v for k, v in counters.items() if k not in _LOCATE_EVENTS)


def span_probes(counters: Mapping[str, int]) -> int:
    """The locate-step overhead (probes + lookups) of one span."""
    return sum(v for k, v in counters.items() if k in _LOCATE_EVENTS)


class CostEntry:
    """Aggregate cost statistics for one (view, operator, shape) key."""

    __slots__ = (
        "view",
        "operator",
        "shape",
        "calls",
        "rows",
        "work",
        "probes",
        "seconds",
        "ewma_seconds",
        "counters",
        "histogram",
        "claimed_class",
        "conformant",
        "fitted",
    )

    def __init__(self, view: str, operator: str, shape: str) -> None:
        self.view = view
        self.operator = operator
        self.shape = shape
        self.calls = 0
        self.rows = 0
        self.work = 0
        self.probes = 0
        self.seconds = 0.0
        self.ewma_seconds = 0.0
        self.counters: Dict[str, int] = {}
        self.histogram = Histogram(DEFAULT_LATENCY_BUCKETS)
        #: Conformance linkage (stamped by :meth:`CostLedger
        #: .link_certificates`): the claimed IM class, the certificate
        #: verdict, and the fitted curve model per sweep.
        self.claimed_class: Optional[str] = None
        self.conformant: Optional[bool] = None
        self.fitted: Dict[str, str] = {}

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.view, self.operator, self.shape)

    def observe(
        self, seconds: float, rows: int, counters: Mapping[str, int], alpha: float
    ) -> None:
        self.calls += 1
        self.rows += int(rows)
        self.work += span_work(counters)
        self.probes += span_probes(counters)
        self.seconds += seconds
        if self.calls == 1:
            self.ewma_seconds = seconds
        else:
            self.ewma_seconds += alpha * (seconds - self.ewma_seconds)
        self.histogram.observe(seconds)
        for event, amount in counters.items():
            self.counters[event] = self.counters.get(event, 0) + amount

    # Derived statistics — deterministic functions of the stored totals,
    # so a deserialized entry reproduces them exactly.

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    @property
    def p50_seconds(self) -> float:
        return self.histogram.quantile(0.5)

    @property
    def p99_seconds(self) -> float:
        return self.histogram.quantile(0.99)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "view": self.view,
            "operator": self.operator,
            "shape": self.shape,
            "calls": self.calls,
            "rows": self.rows,
            "work": self.work,
            "probes": self.probes,
            "seconds": self.seconds,
            "ewma_seconds": self.ewma_seconds,
            "counters": dict(sorted(self.counters.items())),
            "buckets": list(self.histogram.bucket_counts),
            # Derived, recomputed on load — exported for human readers
            # and dashboards, not state.
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
        }
        if self.claimed_class is not None:
            out["claimed_class"] = self.claimed_class
        if self.conformant is not None:
            out["conformant"] = self.conformant
        if self.fitted:
            out["fitted"] = dict(sorted(self.fitted.items()))
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CostEntry":
        entry = cls(str(data["view"]), str(data["operator"]), str(data["shape"]))
        entry.calls = int(data["calls"])
        entry.rows = int(data["rows"])
        entry.work = int(data["work"])
        entry.probes = int(data["probes"])
        entry.seconds = float(data["seconds"])
        entry.ewma_seconds = float(data["ewma_seconds"])
        entry.counters = {str(k): int(v) for k, v in data.get("counters", {}).items()}
        buckets = [int(n) for n in data["buckets"]]
        if len(buckets) != len(entry.histogram.bucket_counts):
            raise ValueError(
                "cost entry bucket count mismatch: "
                f"{len(buckets)} != {len(entry.histogram.bucket_counts)}"
            )
        entry.histogram.bucket_counts = buckets
        entry.histogram.count = sum(buckets)
        entry.histogram.sum = entry.seconds
        entry.claimed_class = data.get("claimed_class")
        conformant = data.get("conformant")
        entry.conformant = None if conformant is None else bool(conformant)
        entry.fitted = {str(k): str(v) for k, v in data.get("fitted", {}).items()}
        return entry


class CostLedger:
    """Bounded, thread-safe per-(view, operator, shape) cost aggregates.

    Feed it finished ``maintain`` spans (:meth:`observe_maintain`) or
    raw measurements (:meth:`observe`); read it via :meth:`entries`,
    :meth:`as_dict`, :meth:`to_json`, or the rendered :meth:`format`
    table (what ``SHOW COSTS`` prints).

    Cardinality is bounded: once *max_entries* distinct keys exist, new
    keys are counted in :attr:`dropped` instead of allocated — a
    runaway label space degrades the ledger, never the process.
    """

    SCHEMA = 1

    def __init__(self, max_entries: int = 512, ewma_alpha: float = EWMA_ALPHA) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.max_entries = max_entries
        self.ewma_alpha = ewma_alpha
        self.dropped = 0
        self._entries: Dict[Tuple[str, str, str], CostEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe(
        self,
        view: str,
        operator: str,
        shape: str,
        seconds: float,
        rows: int = 0,
        counters: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Fold one measurement into the (view, operator, shape) entry."""
        key = (view, operator, shape)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if len(self._entries) >= self.max_entries:
                    self.dropped += 1
                    return
                entry = self._entries[key] = CostEntry(view, operator, shape)
            entry.observe(seconds, rows, counters or {}, self.ewma_alpha)

    def observe_maintain(self, span: Span) -> None:
        """Fold one finished ``maintain`` span and its delta subtree.

        The maintain span itself becomes the per-view rollup entry
        (operator ``maintain``, shape = engine); each ``delta``
        descendant becomes a per-operator entry keyed by its
        engine-prefixed operator-kind path.
        """
        view = str(span.attrs.get("view", "?"))
        engine = str(span.attrs.get("engine", "?"))
        self.observe(
            view,
            "maintain",
            engine,
            span.duration,
            rows=int(span.attrs.get("rows", 0) or 0),
            counters=span.counters,
        )
        self._observe_deltas(view, engine, span.children)

    def _observe_deltas(
        self, view: str, prefix: str, children: Sequence[Span]
    ) -> None:
        deltas = [c for c in children if c.name == "delta"]
        totals: Dict[str, int] = {}
        for child in deltas:
            op = str(child.attrs.get("operator", "?"))
            totals[op] = totals.get(op, 0) + 1
        seen: Dict[str, int] = {}
        for child in deltas:
            op = str(child.attrs.get("operator", "?"))
            index = seen.get(op, 0)
            seen[op] = index + 1
            component = op if totals[op] == 1 else f"{op}@{index}"
            shape = f"{prefix}/{component}"
            self.observe(
                view,
                op,
                shape,
                child.duration,
                rows=int(child.attrs.get("rows", 0) or 0),
                counters=child.counters,
            )
            self._observe_deltas(view, shape, child.children)

    # ------------------------------------------------------------------
    # Conformance linkage
    # ------------------------------------------------------------------

    def link_certificates(self, certificates: Mapping[str, Mapping[str, Any]]) -> int:
        """Stamp conformance verdicts onto every entry of certified views.

        *certificates* is the :attr:`Observability.certificates
        <repro.obs.core.Observability.certificates>` dict (view name →
        :meth:`ConformanceCertificate.to_dict` payload).  Each matching
        ledger entry gains the claimed IM class, the certificate's
        pass/fail verdict, and the fitted curve model per sweep — the
        claimed-vs-fitted pairing the cost-based optimizer consumes.
        Returns the number of entries stamped.
        """
        stamped = 0
        with self._lock:
            for entry in self._entries.values():
                cert = certificates.get(entry.view)
                if not cert:
                    continue
                entry.claimed_class = cert.get("claimed_class")
                conformant = cert.get("conformant")
                entry.conformant = None if conformant is None else bool(conformant)
                entry.fitted = {
                    f"{sweep['parameter']} {sweep['metric']}": str(sweep["model"])
                    for sweep in cert.get("sweeps", ())
                }
                stamped += 1
        return stamped

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def entries(self) -> List[CostEntry]:
        """All entries, sorted by (view, shape, operator)."""
        with self._lock:
            items = list(self._entries.values())
        return sorted(items, key=lambda e: (e.view, e.shape, e.operator))

    def get(self, view: str, operator: str, shape: str) -> Optional[CostEntry]:
        with self._lock:
            return self._entries.get((view, operator, shape))

    def views(self) -> List[str]:
        with self._lock:
            return sorted({view for view, _, _ in self._entries})

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.dropped = 0

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.SCHEMA,
            "max_entries": self.max_entries,
            "ewma_alpha": self.ewma_alpha,
            "dropped": self.dropped,
            "entries": [entry.as_dict() for entry in self.entries()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CostLedger":
        schema = data.get("schema", 0)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported cost ledger schema: {schema!r}")
        ledger = cls(
            max_entries=int(data.get("max_entries", 512)),
            ewma_alpha=float(data.get("ewma_alpha", EWMA_ALPHA)),
        )
        ledger.dropped = int(data.get("dropped", 0))
        for raw in data.get("entries", ()):
            entry = CostEntry.from_dict(raw)
            ledger._entries[entry.key] = entry
        return ledger

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CostLedger":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "CostLedger":
        with open(path) as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format(self, view: Optional[str] = None) -> str:
        """The ``SHOW COSTS`` table: one row per ledger entry."""
        entries = self.entries()
        if view is not None:
            entries = [e for e in entries if e.view == view]
        if not entries:
            return (
                "(cost ledger empty — ingest some events with observability "
                "installed to populate it)"
            )
        header = (
            "view",
            "operator",
            "shape",
            "calls",
            "rows",
            "mean",
            "p50",
            "p99",
            "ewma",
            "work/call",
            "class",
        )
        rows: List[Tuple[str, ...]] = [header]
        for e in entries:
            klass = ""
            if e.claimed_class is not None:
                verdict = {True: " ok", False: " FAIL", None: ""}[e.conformant]
                klass = f"{e.claimed_class}{verdict}"
            rows.append(
                (
                    e.view,
                    e.operator,
                    e.shape,
                    str(e.calls),
                    str(e.rows),
                    _us(e.mean_seconds),
                    _us(e.p50_seconds),
                    _us(e.p99_seconds),
                    _us(e.ewma_seconds),
                    f"{e.work / e.calls:.1f}" if e.calls else "0",
                    klass,
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            for row in rows
        ]
        if self.dropped:
            lines.append(f"({self.dropped} observations dropped: entry cap reached)")
        return "\n".join(lines)


def _us(seconds: float) -> str:
    if seconds == float("inf"):
        return "inf"
    return f"{seconds * 1e6:.1f}us"
