"""The live no-chronicle-access auditor.

The paper's per-append guarantees rest on one mechanical property:
incremental maintenance never reads a chronicle store (Theorems
4.2/4.4), and touches a materialized view only through the O(log |V|)
locate step.  The library already *enforces* the first half with the
:func:`~repro.core.chronicle.maintenance_guard` — but the guard only
covers the guarded read methods.  Code that reaches around them (a
future operator iterating ``chronicle._stored`` directly, an extension
evaluated with ``allow_chronicle_access`` leaking onto the hot path)
would violate the theorem silently.

The auditor closes that gap observationally: every ``maintain`` span's
:class:`~repro.complexity.counters.CostCounters` diff is checked against
the invariants

* ``chronicle_read == 0`` — the no-access rule, live;
* ``view_read <= view_read_limit`` — reads beyond the permitted locate
  step stay bounded (default limit 0: the counter is *defined* as
  "reads other than the locate step", so any count is a violation).

Violations are recorded (bounded ring), counted in the metrics
registry, and — depending on the mode — ignored (``"off"``), reported
as warnings (``"warn"``), or raised as
:class:`~repro.errors.MaintenanceAuditError` (``"raise"``), turning the
theorem into a deployable assertion.

The auditor reads the counter diffs the tracer collects, so it is only
live while tracing is enabled (and while
:data:`~repro.complexity.counters.GLOBAL_COUNTERS` is enabled —
benchmarks that disable counting also blind the auditor, by design).
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, Deque, Dict, List, Optional, TYPE_CHECKING

from ..errors import MaintenanceAuditError, ObservabilityError

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry
    from .tracer import Span

MODES = ("off", "warn", "raise")


class AuditWarning(UserWarning):
    """Emitted for invariant violations in ``warn`` mode."""


class AuditViolation:
    """One observed breach of a maintenance invariant."""

    __slots__ = ("rule", "span_name", "attrs", "observed", "limit")

    def __init__(
        self, rule: str, span: "Span", observed: int, limit: int
    ) -> None:
        self.rule = rule
        self.span_name = span.name
        self.attrs = dict(span.attrs)
        self.observed = observed
        self.limit = limit

    def describe(self) -> str:
        where = ", ".join(f"{k}={v}" for k, v in self.attrs.items())
        return (
            f"{self.rule}: observed {self.observed} (limit {self.limit}) "
            f"in span {self.span_name!r}" + (f" [{where}]" if where else "")
        )

    def __repr__(self) -> str:
        return f"AuditViolation({self.describe()})"


class Auditor:
    """Checks maintenance spans against the paper's cost invariants.

    Parameters
    ----------
    mode:
        ``"off"``, ``"warn"`` (default), or ``"raise"``.
    view_read_limit:
        Maximum permitted ``view_read`` count per maintenance span
        (reads *beyond* the locate step; default 0).
    metrics:
        Optional registry receiving ``audit_violations_total{rule=...}``.
    capacity:
        How many violation records to retain.
    """

    def __init__(
        self,
        mode: str = "warn",
        view_read_limit: int = 0,
        metrics: Optional["MetricsRegistry"] = None,
        capacity: int = 128,
    ) -> None:
        if mode not in MODES:
            raise ObservabilityError(
                f"unknown audit mode {mode!r}; expected one of {MODES}"
            )
        self.mode = mode
        self.view_read_limit = view_read_limit
        self.metrics = metrics
        self.violations: Deque[AuditViolation] = deque(maxlen=capacity)
        self.checked_spans = 0

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def check_span(self, span: "Span") -> List[AuditViolation]:
        """Audit one finished maintenance span; returns the violations."""
        if self.mode == "off":
            return []
        self.checked_spans += 1
        counters = span.counters
        found: List[AuditViolation] = []
        chronicle_reads = counters.get("chronicle_read", 0)
        if chronicle_reads:
            found.append(
                AuditViolation("no-chronicle-access", span, chronicle_reads, 0)
            )
        view_reads = counters.get("view_read", 0)
        if view_reads > self.view_read_limit:
            found.append(
                AuditViolation(
                    "bounded-view-read", span, view_reads, self.view_read_limit
                )
            )
        for violation in found:
            self._report(violation)
        return found

    def _report(self, violation: AuditViolation) -> None:
        self.violations.append(violation)
        if self.metrics is not None:
            self.metrics.inc(
                "audit_violations_total",
                rule=violation.rule,
            )
            # Per-view face of the same signal: lets a dashboard alert on
            # *which* view misbehaved (and in what mode), not just how
            # often some rule fired.  Warn-mode violations would
            # otherwise be invisible to a /metrics scrape that doesn't
            # know the rule names.
            self.metrics.inc(
                "auditor_violations_total",
                view=str(violation.attrs.get("view", "?")),
                mode=self.mode,
            )
        if self.mode == "raise":
            raise MaintenanceAuditError(violation.describe())
        warnings.warn(violation.describe(), AuditWarning, stacklevel=4)

    def summary(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "checked_spans": self.checked_spans,
            "violations": len(self.violations),
        }
