"""The flight recorder: a black-box ring plus dump-on-anomaly bundles.

When a shard worker throws, the auditor flags a chronicle read, or the
SLO evaluator turns ``FAILING``, the question is always "what was the
engine doing *just before*?" — and by the time anyone asks, the trace
ring has churned and the metrics only show totals.  The
:class:`FlightRecorder` answers it the way an aircraft black box does:
it continuously records a bounded ring of compact event summaries
(finished root spans, watermarks, violations, notes) at negligible
cost, and on a trigger freezes everything into a JSON *incident bundle*
on disk.

Two halves:

* **the ring** — :meth:`FlightRecorder.record_span` summarizes every
  finished *root* span (name, trace/span ids, duration, attrs, the
  views its children maintained) into a dict; :meth:`FlightRecorder
  .note` adds free-form events (engine errors, SLO transitions).  Both
  are lock-guarded deque appends — worker threads record concurrently.
* **the dump** — :meth:`FlightRecorder.trigger` writes
  ``incident-<seq>-<reason>.json`` into :attr:`directory`: the ring,
  the trigger reason and context (snapshot, watermarks, registry
  stats, health report — assembled by :meth:`~repro.obs.core
  .Observability.incident`).  With no directory configured the trigger
  still lands in the ring (and is counted), but nothing touches disk —
  persistence is strictly opt-in.

Triggers are wired in three places: :meth:`Observability.on_span_end`
(auditor violations), :meth:`~repro.parallel.engine.ShardedDatabase
._dispatch` (shard-worker exceptions), and :meth:`Observability.health`
(transition to ``FAILING``).  :meth:`~repro.core.database
.ChronicleDatabase.dump_incident` is the manual pull-the-tape call.

Shard-worker bundles carry cross-process context when the telemetry
relay was active: the failed :class:`~repro.parallel.engine.ShardTask`'s
window summary (shard, watermark, per-chronicle row counts) under
``context.window``, and the worker's last relayed span records under
``context.worker_spans`` — a crash is diagnosable from the bundle
without reproducing it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .tracer import Span


def summarize_span(span: Span) -> Dict[str, Any]:
    """Compress one finished span tree into a flat, JSON-ready summary."""
    out: Dict[str, Any] = {
        "kind": "span",
        "name": span.name,
        "at": span.started_at,
        "duration_us": round(span.duration * 1e6, 3),
        "trace_id": span.trace_id,
        "span_id": span.span_id,
    }
    if span.parent_id is not None:
        out["parent_id"] = span.parent_id
    if span.attrs:
        out["attrs"] = dict(span.attrs)
    if span.counters:
        out["counters"] = dict(span.counters)
    views = [
        child.attrs.get("view")
        for child in span.walk()
        if child.name == "maintain" and "view" in child.attrs
    ]
    if views:
        out["views"] = views
    return out


class FlightRecorder:
    """Bounded black-box ring with dump-on-trigger incident bundles.

    Parameters
    ----------
    capacity:
        Events the ring retains (oldest dropped beyond it).
    directory:
        Where incident bundles land (created on first dump).  ``None``
        disables automatic persistence; explicit-path dumps still work.
    cooldown_seconds:
        Minimum spacing between automatic dumps *per reason* — a warn-
        mode auditor violating on every append must not write a file
        per append.  Explicit-path dumps ignore the cooldown.
    """

    def __init__(
        self,
        capacity: int = 512,
        directory: Optional[str] = None,
        cooldown_seconds: float = 30.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.capacity = capacity
        self.directory = directory
        self.cooldown_seconds = cooldown_seconds
        #: Lifetime triggers (including those that wrote no file).
        self.triggered = 0
        #: Lifetime bundles written to disk.
        self.dumped = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        # Side-channel of trigger markers only: the metrics-history
        # sampler polls this every tick, and copying the full ring per
        # tick would dwarf the cost of everything else it reads.
        self._triggers: Deque[Dict[str, Any]] = deque(maxlen=64)
        self._lock = threading.Lock()
        self._sequence = 0
        self._last_dump_at: Dict[str, float] = {}

    # -- the ring ------------------------------------------------------------------

    def record_span(self, span: Span) -> None:
        """Ring one finished root span (non-roots are cheap no-ops)."""
        if not span.is_root:
            return
        summary = summarize_span(span)
        with self._lock:
            self._ring.append(summary)

    def note(self, kind: str, **data: Any) -> None:
        """Ring one free-form event (engine error, status change, ...)."""
        event = {"kind": kind, "at": time.time()}
        event.update(data)
        with self._lock:
            self._ring.append(event)

    def events(self) -> List[Dict[str, Any]]:
        """The ring's events, oldest first (a copy)."""
        with self._lock:
            return list(self._ring)

    def triggers_since(self, sequence: int) -> List[Dict[str, Any]]:
        """Trigger markers newer than *sequence*, oldest first.

        A bounded (last 64) side-channel so pollers can pick up incident
        markers incrementally without copying the event ring.  Filtering
        by trigger sequence rather than wall clock keeps it immune to
        clock adjustments.
        """
        with self._lock:
            return [dict(t) for t in self._triggers if t["sequence"] > sequence]

    # -- dumping -------------------------------------------------------------------

    def trigger(
        self,
        reason: str,
        context: Optional[Dict[str, Any]] = None,
        path: Optional[str] = None,
    ) -> Optional[str]:
        """Record a trigger and (maybe) dump a bundle; returns the path.

        With *path* the bundle goes exactly there, cooldown-free.  With
        :attr:`directory` configured, a ``incident-<seq>-<reason>.json``
        file is written unless the same reason dumped within the
        cooldown.  Otherwise only the ring records the trigger and
        ``None`` is returned.
        """
        now = time.time()
        with self._lock:
            self.triggered += 1
            self._sequence += 1
            sequence = self._sequence
            self._ring.append({"kind": "trigger", "at": now, "reason": reason})
            self._triggers.append(
                {"at": now, "reason": reason, "sequence": sequence}
            )
            if path is None:
                if self.directory is None:
                    return None
                last = self._last_dump_at.get(reason)
                if last is not None and now - last < self.cooldown_seconds:
                    return None
                self._last_dump_at[reason] = now
                os.makedirs(self.directory, exist_ok=True)
                safe_reason = "".join(
                    c if c.isalnum() or c in "-_" else "-" for c in reason
                )
                path = os.path.join(
                    self.directory, f"incident-{sequence:04d}-{safe_reason}.json"
                )
            events = list(self._ring)
        bundle: Dict[str, Any] = {
            "reason": reason,
            "at": now,
            "sequence": sequence,
            "events": events,
        }
        if context:
            bundle["context"] = context
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        with self._lock:
            self.dumped += 1
        return path

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, "
            f"directory={self.directory!r}, events={len(self._ring)}, "
            f"triggered={self.triggered}, dumped={self.dumped})"
        )
