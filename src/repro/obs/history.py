"""Bounded metrics history: the time axis of the observability stack.

Every other observability surface — ``/metrics``, ``/health``,
``SHOW STATS``, the cost ledger — answers "what is true *now*?".  An
operator's questions are almost always about *trajectory*: is
throughput sagging, is shard lag growing, did WAL overhead creep up
before the page fired?  :class:`MetricsHistory` answers those by
sampling the registry on a fixed cadence into a bounded ring of
derived, JSON-ready series:

* **throughput** — records/sec, append events/sec, ingest windows/sec
  (windowed counter deltas);
* **latency** — maintain p50/p99 *of the last interval* via
  :class:`~repro.obs.metrics.HistogramWindow` (a lifetime p99 converges
  to a constant and stops saying anything);
* **freshness** — per-shard ``lag_batches``/``lag_seconds`` and queue
  depth from :meth:`~repro.parallel.engine.ShardedDatabase.shard_health`
  (cheap, lock-free);
* **durability** — WAL bytes/sec and windowed ``wal_append`` p99;
* **workers** — summed RSS/CPU gauges and the windowed IPC overhead
  fraction;
* **state** — the SLO health status per tick (OK/DEGRADED/FAILING, with
  a transitions track) and incident markers picked up incrementally
  from the :class:`~repro.obs.recorder.FlightRecorder`.

The sampler is strictly *pull*-based: a daemon thread owned by
:class:`~repro.obs.core.Observability` reads instruments that the hot
path already writes.  Nothing in the append/maintain path knows it
exists, so the zero-threads / zero-allocations / byte-identical
contract when observability is off holds by construction.

Three consumers: the ``/timeline`` JSON route and the dependency-free
``/dashboard`` page (:func:`render_dashboard`, inline HTML + SVG
sparklines, no third-party assets) on the metrics exporter, and
``SHOW TIMELINE [n]`` in the CLI (:meth:`MetricsHistory.format`,
unicode sparklines).  Incident bundles embed the trailing window as
``context.timeline`` — a flight-data recording instead of a point
snapshot.
"""

from __future__ import annotations

import html
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

from .metrics import HistogramWindow

#: Scalar series every sample carries (the ``series=`` vocabulary of
#: ``/timeline``); per-shard tracks travel separately under ``shards``.
SCALAR_SERIES = (
    "records_per_sec",
    "events_per_sec",
    "windows_per_sec",
    "maintain_p50_seconds",
    "maintain_p99_seconds",
    "maintain_events",
    "wal_bytes_per_sec",
    "wal_append_p99_seconds",
    "queue_depth",
    "worker_rss_bytes",
    "worker_cpu_seconds",
    "ipc_overhead_fraction",
)

#: Counter families read as windowed deltas each tick.
_WINDOWED_COUNTERS = (
    "chronicle_records_admitted_total",
    "shard_records_total",
    "append_events_total",
    "ingest_windows_total",
    "wal_bytes_total",
)

#: Trailing samples embedded into incident bundles (``context.timeline``).
INCIDENT_TIMELINE_SAMPLES = 180

_HEALTH_CHARS = {"OK": "O", "DEGRADED": "D", "FAILING": "F"}
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


class MetricsHistory:
    """A bounded ring of derived metric samples on a fixed cadence.

    Parameters
    ----------
    observability:
        The owning :class:`~repro.obs.core.Observability` — source of
        the registry, recorder, health evaluation, and (via weakref)
        the bound database.
    interval:
        Seconds between samples when the thread runs.
    capacity:
        Ring bound; the default 720 holds 12 minutes at 1s cadence.

    The sampler works threadless too: :meth:`sample_now` captures one
    sample synchronously (the CLI's ``SHOW TIMELINE`` path and the unit
    tests use this).  :meth:`start`/:meth:`stop` manage the daemon
    thread; both are idempotent and restart-safe.
    """

    def __init__(
        self, observability: Any, interval: float = 1.0, capacity: int = 720
    ) -> None:
        if not interval > 0:
            raise ValueError("history interval must be > 0 seconds")
        if capacity < 2:
            raise ValueError("history capacity must be >= 2 samples")
        self.observability = observability
        self.interval = float(interval)
        self.capacity = int(capacity)
        #: Sampler exceptions swallowed by the thread loop (diagnostic).
        self.sample_errors = 0
        self._samples: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._transitions: Deque[Dict[str, Any]] = deque(maxlen=64)
        # RLock: a FAILING transition inside a sample triggers
        # Observability.incident(), which re-enters timeline() to embed
        # the trailing window in the bundle.
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_at: Optional[float] = None
        self._last_counters: Dict[str, float] = {}
        self._last_health: Optional[str] = None
        self._seen_trigger = 0
        metrics = observability.metrics
        self._maintain = HistogramWindow(metrics, "view_maintain_seconds")
        self._wal_append = HistogramWindow(metrics, "wal_append_seconds")
        self._ipc_encode = HistogramWindow(metrics, "ipc_encode_seconds")
        self._ipc_decode = HistogramWindow(metrics, "ipc_decode_seconds")
        self._visibility = HistogramWindow(metrics, "ingest_visibility_seconds")

    # -- lifecycle -----------------------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        """Start the daemon sampler thread (error if already running)."""
        with self._lock:
            if self.running:
                from ..errors import ObservabilityError

                raise ObservabilityError("metrics history is already running")
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-history", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread; the ring stays readable."""
        thread = self._thread
        self._stop.set()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_now()
            except Exception:
                with self._lock:
                    self.sample_errors += 1

    # -- sampling ------------------------------------------------------------------

    def sample_now(self) -> Dict[str, Any]:
        """Capture one sample synchronously and ring it."""
        with self._lock:
            sample = self._sample()
            self._samples.append(sample)
            return sample

    def _counter_sum(self, name: str) -> float:
        total = 0.0
        for _, instrument in self.observability.metrics.series(name):
            total += instrument.value
        return total

    def _gauge_sum(self, name: str) -> Optional[float]:
        series = self.observability.metrics.series(name)
        if not series:
            return None
        return sum(instrument.value for _, instrument in series)

    def _sample(self) -> Dict[str, Any]:
        obs = self.observability
        now = time.time()
        elapsed = 0.0 if self._last_at is None else max(0.0, now - self._last_at)
        first = self._last_at is None
        self._last_at = now

        def rate(delta: float) -> float:
            return round(delta / elapsed, 3) if elapsed > 0 else 0.0

        totals = {name: self._counter_sum(name) for name in _WINDOWED_COUNTERS}
        deltas = {
            name: 0.0 if first else total - self._last_counters.get(name, 0.0)
            for name, total in totals.items()
        }
        self._last_counters = totals

        # Serial/thread engines count at chronicle admission; the
        # process executor counts shard-applied records instead.
        records = deltas["chronicle_records_admitted_total"]
        if records <= 0:
            records = deltas["shard_records_total"]

        maintain = self._maintain.delta()
        wal_append = self._wal_append.delta()
        encode = self._ipc_encode.delta()
        decode = self._ipc_decode.delta()
        visibility = self._visibility.delta()
        ipc_fraction: Optional[float] = None
        if (
            (encode is not None or decode is not None)
            and visibility is not None
            and visibility.sum > 0
        ):
            ipc_seconds = (encode.sum if encode else 0.0) + (
                decode.sum if decode else 0.0
            )
            ipc_fraction = round(ipc_seconds / visibility.sum, 4)

        queue_depth = 0.0
        shards: Dict[str, Dict[str, float]] = {}
        db = obs.database()
        probe = getattr(db, "shard_health", None) if db is not None else None
        if probe is not None:
            try:
                fleet = probe()
            except Exception:
                fleet = None
            if fleet is not None:
                queue_depth = float(fleet.queue_depth)
                for lag in fleet.shards:
                    shards[str(lag.shard)] = {
                        "lag_batches": float(lag.lag_batches),
                        "lag_seconds": round(float(lag.lag_seconds), 6),
                    }

        try:
            status: Optional[str] = obs.health().status
        except Exception:
            status = None
        if status is not None and self._last_health not in (None, status):
            self._transitions.append(
                {"at": now, "from": self._last_health, "to": status}
            )
        if status is not None:
            self._last_health = status

        markers = obs.recorder.triggers_since(self._seen_trigger)
        if markers:
            self._seen_trigger = markers[-1]["sequence"]

        return {
            "at": now,
            "interval_seconds": round(elapsed, 6),
            "records_per_sec": rate(records),
            "events_per_sec": rate(deltas["append_events_total"]),
            "windows_per_sec": rate(deltas["ingest_windows_total"]),
            "maintain_p50_seconds": (
                maintain.quantile(0.5) if maintain and maintain.count else None
            ),
            "maintain_p99_seconds": (
                maintain.quantile(0.99) if maintain and maintain.count else None
            ),
            "maintain_events": maintain.count if maintain else 0,
            "wal_bytes_per_sec": rate(deltas["wal_bytes_total"]),
            "wal_append_p99_seconds": (
                wal_append.quantile(0.99) if wal_append and wal_append.count else None
            ),
            "queue_depth": queue_depth,
            "worker_rss_bytes": self._gauge_sum("worker_rss_bytes"),
            "worker_cpu_seconds": self._gauge_sum("worker_cpu_seconds"),
            "ipc_overhead_fraction": ipc_fraction,
            "health": status,
            "shards": shards,
            "incidents": [
                {"at": m["at"], "reason": m["reason"]} for m in markers
            ],
        }

    # -- reads ---------------------------------------------------------------------

    def samples(
        self,
        window_seconds: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Ring contents oldest-first, optionally windowed/truncated.

        ``window_seconds`` is measured back from the newest sample (not
        the wall clock), so a paused sampler still returns its tail.
        """
        with self._lock:
            out = list(self._samples)
        if window_seconds is not None and out:
            cutoff = out[-1]["at"] - float(window_seconds)
            out = [s for s in out if s["at"] >= cutoff]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def timeline(
        self,
        window_seconds: Optional[float] = None,
        series: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The ring as column-oriented, JSON-ready bounded series.

        ``series`` restricts the scalar tracks (unknown names raise
        ``ValueError`` naming the vocabulary); ``at``, ``health``,
        ``shards``, ``incidents``, and ``transitions`` always travel.
        """
        if series:
            unknown = [name for name in series if name not in SCALAR_SERIES]
            if unknown:
                raise ValueError(
                    f"unknown timeline series {unknown}; "
                    f"choose from {list(SCALAR_SERIES)}"
                )
            names: Sequence[str] = list(series)
        else:
            names = SCALAR_SERIES
        samples = self.samples(window_seconds=window_seconds, limit=limit)
        with self._lock:
            transitions = list(self._transitions)
        oldest = samples[0]["at"] if samples else float("inf")
        shard_labels = sorted({label for s in samples for label in s["shards"]})
        return {
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "count": len(samples),
            "running": self.running,
            "at": [s["at"] for s in samples],
            "series": {name: [s[name] for s in samples] for name in names},
            "health": [s["health"] for s in samples],
            "shards": {
                label: {
                    "lag_batches": [
                        s["shards"].get(label, {}).get("lag_batches")
                        for s in samples
                    ],
                    "lag_seconds": [
                        s["shards"].get(label, {}).get("lag_seconds")
                        for s in samples
                    ],
                }
                for label in shard_labels
            },
            "incidents": [m for s in samples for m in s["incidents"]],
            "transitions": [t for t in transitions if t["at"] >= oldest],
        }

    # -- terminal rendering (SHOW TIMELINE) ----------------------------------------

    def format(self, n: int = 12) -> str:
        """A terminal rendering of the last *n* samples."""
        samples = self.samples(limit=max(1, n))
        if not samples:
            return "timeline: no samples yet"
        span = samples[-1]["at"] - samples[0]["at"]
        lines = [
            f"timeline: last {len(samples)} sample(s) over {span:.1f}s "
            f"(interval {self.interval:g}s, newest last)"
        ]
        rows = (
            ("records/s", "records_per_sec", _fmt_count),
            ("events/s", "events_per_sec", _fmt_count),
            ("maintain p99", "maintain_p99_seconds", _fmt_seconds),
            ("queue depth", "queue_depth", _fmt_count),
            ("wal B/s", "wal_bytes_per_sec", _fmt_count),
        )
        for label, key, fmt in rows:
            values = [s[key] for s in samples]
            if all(v in (None, 0, 0.0) for v in values) and key in (
                "wal_bytes_per_sec",
                "queue_depth",
            ):
                continue
            lines.append(
                f"  {label:<13} {_spark(values)}  last {fmt(values[-1])}"
            )
        lags = [
            max(
                (sh["lag_batches"] for sh in s["shards"].values()),
                default=None,
            )
            for s in samples
        ]
        if any(v is not None for v in lags):
            last = lags[-1]
            lines.append(
                f"  {'max shard lag':<13} {_spark(lags)}  last "
                f"{_fmt_count(last)} batch(es)"
            )
        track = "".join(
            _HEALTH_CHARS.get(s["health"], "·") for s in samples
        )
        lines.append(
            f"  {'health':<13} {track}  (O=OK D=DEGRADED F=FAILING ·=n/a)"
        )
        incidents = [m for s in samples for m in s["incidents"]]
        for marker in incidents[-5:]:
            stamp = time.strftime("%H:%M:%S", time.localtime(marker["at"]))
            lines.append(f"  incident {stamp}  {marker['reason']}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MetricsHistory(interval={self.interval:g}, "
            f"capacity={self.capacity}, samples={len(self._samples)}, "
            f"running={self.running})"
        )


# -- formatting helpers ------------------------------------------------------------


def _fmt_count(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:g}"


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value < 1.0:
        return f"{value * 1000:.2f}ms"
    return f"{value:.3f}s"


def _spark(values: Sequence[Optional[float]]) -> str:
    """Unicode sparkline; ``None`` samples render as ``·``."""
    present = [v for v in values if v is not None]
    if not present:
        return "·" * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for value in values:
        if value is None:
            out.append("·")
        elif span <= 0:
            out.append(_SPARK_BLOCKS[3])
        else:
            index = int((value - lo) / span * (len(_SPARK_BLOCKS) - 1) + 0.5)
            out.append(_SPARK_BLOCKS[index])
    return "".join(out)


# -- the /dashboard page -----------------------------------------------------------

#: Samples the dashboard renders (page weight, not ring bound).
DASHBOARD_SAMPLES = 240

#: Status palette (fixed, never themed): good / warning / critical.
_STATUS_COLORS = {"OK": "#0ca30c", "DEGRADED": "#fab219", "FAILING": "#d03b3b"}
_STATUS_ICONS = {"OK": "●", "DEGRADED": "◆", "FAILING": "▲"}

#: Sequential blue ramp (steps 100→700) for the shard-lag heat strip.
_LAG_RAMP = (
    "#cde2fb",
    "#9ec5f4",
    "#6da7ec",
    "#3987e5",
    "#256abf",
    "#184f95",
    "#0d366b",
)

_DASHBOARD_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --border: rgba(255,255,255,0.10);
  }
}
body.viz-root {
  margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; }
h1 { font-size: 18px; font-weight: 600; margin: 0; }
.muted { color: var(--muted); font-size: 12px; }
.badge { font-weight: 600; font-size: 13px; }
section { margin-top: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; min-width: 180px;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; margin: 2px 0 6px; }
.tile .unit { color: var(--muted); font-size: 12px; font-weight: 400; }
h2 { font-size: 13px; font-weight: 600; color: var(--text-secondary);
     margin: 0 0 8px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px;
}
.band { display: flex; height: 18px; border-radius: 3px; overflow: hidden; }
.band span { flex: 1 1 0; }
.band span + span { margin-left: 1px; }
.legend { margin-top: 6px; font-size: 12px; color: var(--text-secondary); }
.legend b { font-weight: 600; }
.heat { display: grid; grid-template-columns: max-content 1fr; gap: 4px 10px;
        align-items: center; }
.heat .shard { font-size: 12px; color: var(--text-secondary);
               font-variant-numeric: tabular-nums; }
.incidents { margin: 0; padding-left: 18px; }
.incidents li { margin: 2px 0; }
.incidents time { color: var(--text-secondary);
                  font-variant-numeric: tabular-nums; margin-right: 8px; }
footer { margin-top: 20px; font-size: 12px; color: var(--muted); }
svg .line { fill: none; stroke-width: 2; }
svg .area { opacity: 0.12; stroke: none; }
svg .base { stroke: var(--baseline); stroke-width: 1; }
"""


def _svg_sparkline(
    values: Sequence[Optional[float]],
    color: str,
    width: int = 220,
    height: int = 44,
    label: str = "",
) -> str:
    """One server-rendered SVG sparkline (2px line, baseline, area)."""
    points = [
        (i, v) for i, v in enumerate(values) if v is not None
    ]
    if len(values) < 2 or not points:
        return (
            f'<svg width="{width}" height="{height}" role="img">'
            f'<line class="base" x1="0" y1="{height - 1}" x2="{width}" '
            f'y2="{height - 1}"/></svg>'
        )
    lo = min(0.0, min(v for _, v in points))
    hi = max(v for _, v in points)
    span = hi - lo or 1.0
    pad = 3
    step = width / max(1, len(values) - 1)

    def xy(i: int, v: float) -> str:
        x = i * step
        y = pad + (height - 2 * pad) * (1 - (v - lo) / span)
        return f"{x:.1f},{y:.1f}"

    path = " ".join(xy(i, v) for i, v in points)
    first_x = points[0][0] * step
    last_x = points[-1][0] * step
    area = (
        f"{first_x:.1f},{height - 1} {path} {last_x:.1f},{height - 1}"
    )
    last = points[-1]
    lx, ly = xy(*last).split(",")
    title = html.escape(
        f"{label}: last {last[1]:g}, min {min(v for _, v in points):g}, "
        f"max {hi:g} over {len(points)} samples"
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f"<title>{title}</title>"
        f'<line class="base" x1="0" y1="{height - 1}" x2="{width}" '
        f'y2="{height - 1}"/>'
        f'<polygon class="area" fill="{color}" points="{area}"/>'
        f'<polyline class="line" stroke="{color}" points="{path}"/>'
        f'<circle cx="{lx}" cy="{ly}" r="3" fill="{color}"/>'
        f"</svg>"
    )


def _tile(label: str, value: str, unit: str, spark: str) -> str:
    return (
        '<div class="tile">'
        f'<div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(value)}'
        f' <span class="unit">{html.escape(unit)}</span></div>'
        f"{spark}</div>"
    )


def _health_band(samples: Sequence[Dict[str, Any]]) -> str:
    cells = []
    for sample in samples:
        status = sample["health"]
        color = _STATUS_COLORS.get(status, "var(--grid)")
        stamp = time.strftime("%H:%M:%S", time.localtime(sample["at"]))
        title = html.escape(f"{stamp} {status or 'n/a'}")
        cells.append(
            f'<span style="background:{color}" title="{title}"></span>'
        )
    legend = " &nbsp; ".join(
        f'<b style="color:{_STATUS_COLORS[s]}">{_STATUS_ICONS[s]}</b> {s}'
        for s in ("OK", "DEGRADED", "FAILING")
    )
    return (
        f'<div class="band">{"".join(cells)}</div>'
        f'<div class="legend">{legend}</div>'
    )


def _lag_heat(samples: Sequence[Dict[str, Any]]) -> str:
    labels = sorted({label for s in samples for label in s["shards"]})
    if not labels:
        return '<div class="muted">no shard fleet (serial engine)</div>'
    peak = max(
        (
            s["shards"][label]["lag_batches"]
            for s in samples
            for label in s["shards"]
        ),
        default=0.0,
    )
    rows = []
    for label in labels:
        cells = []
        for sample in samples:
            lag = sample["shards"].get(label, {}).get("lag_batches")
            if lag is None:
                color, text = "var(--grid)", "n/a"
            elif lag <= 0 or peak <= 0:
                color, text = _LAG_RAMP[0], "0"
            else:
                index = min(
                    len(_LAG_RAMP) - 1,
                    1 + int(lag / peak * (len(_LAG_RAMP) - 2)),
                )
                color, text = _LAG_RAMP[index], f"{lag:g}"
            stamp = time.strftime("%H:%M:%S", time.localtime(sample["at"]))
            title = html.escape(f"{stamp} shard {label}: {text} batch(es)")
            cells.append(
                f'<span style="background:{color}" title="{title}"></span>'
            )
        rows.append(
            f'<div class="shard">shard {html.escape(label)}</div>'
            f'<div class="band">{"".join(cells)}</div>'
        )
    return (
        f'<div class="heat">{"".join(rows)}</div>'
        '<div class="legend">lag in batches, light (caught up) → dark '
        f"(peak {peak:g})</div>"
    )


def _incident_list(samples: Sequence[Dict[str, Any]]) -> str:
    markers = [m for s in samples for m in s["incidents"]]
    if not markers:
        return '<div class="muted">no incidents in window</div>'
    items = []
    for marker in markers[-12:]:
        stamp = time.strftime("%H:%M:%S", time.localtime(marker["at"]))
        items.append(
            f"<li><time>{stamp}</time>"
            f"{html.escape(str(marker['reason']))}</li>"
        )
    return f'<ul class="incidents">{"".join(items)}</ul>'


def render_dashboard(observability: Any) -> str:
    """The single-page ``/dashboard`` HTML (no third-party assets)."""
    history = observability.history
    refresh = 5
    if history is not None:
        refresh = max(2, int(round(history.interval * 2)))
        samples = history.samples(limit=DASHBOARD_SAMPLES)
    else:
        samples = []

    if history is None:
        body = (
            '<section class="panel"><h2>metrics history is off</h2>'
            '<div class="muted">enable it with '
            "<code>DatabaseConfig(observe=True, history=HistoryConfig())"
            "</code> or <code>db.start_history()</code>.</div></section>"
        )
        status = None
    elif not samples:
        body = (
            '<section class="panel"><h2>warming up</h2>'
            '<div class="muted">no samples yet — the first lands within '
            f"{history.interval:g}s.</div></section>"
        )
        status = None
    else:
        last = samples[-1]
        status = last["health"]

        def col(key: str) -> List[Optional[float]]:
            return [s[key] for s in samples]

        p99 = last["maintain_p99_seconds"]
        lag_now = max(
            (sh["lag_batches"] for sh in last["shards"].values()), default=None
        )
        tiles = [
            _tile(
                "throughput",
                _fmt_count(last["records_per_sec"]),
                "records/s",
                _svg_sparkline(
                    col("records_per_sec"), "var(--series-1)",
                    label="records/s",
                ),
            ),
            _tile(
                "maintain p99",
                _fmt_seconds(p99),
                "per interval",
                _svg_sparkline(
                    col("maintain_p99_seconds"), "var(--series-2)",
                    label="maintain p99 (s)",
                ),
            ),
            _tile(
                "queue depth",
                _fmt_count(last["queue_depth"]),
                "window(s)",
                _svg_sparkline(
                    col("queue_depth"), "var(--series-1)", label="queue depth"
                ),
            ),
            _tile(
                "wal",
                _fmt_count(last["wal_bytes_per_sec"]),
                "bytes/s",
                _svg_sparkline(
                    col("wal_bytes_per_sec"), "var(--series-3)",
                    label="wal bytes/s",
                ),
            ),
        ]
        if lag_now is not None:
            lag_track = [
                max(
                    (sh["lag_batches"] for sh in s["shards"].values()),
                    default=None,
                )
                for s in samples
            ]
            tiles.append(
                _tile(
                    "max shard lag",
                    _fmt_count(lag_now),
                    "batch(es)",
                    _svg_sparkline(
                        lag_track, "var(--series-2)", label="max shard lag"
                    ),
                )
            )
        if last["ipc_overhead_fraction"] is not None:
            tiles.append(
                _tile(
                    "ipc overhead",
                    f"{last['ipc_overhead_fraction'] * 100:.1f}%",
                    "of visibility",
                    _svg_sparkline(
                        col("ipc_overhead_fraction"), "var(--series-3)",
                        label="ipc overhead fraction",
                    ),
                )
            )
        body = (
            f'<section class="tiles">{"".join(tiles)}</section>'
            '<section class="panel"><h2>health</h2>'
            f"{_health_band(samples)}</section>"
            '<section class="panel"><h2>per-shard lag</h2>'
            f"{_lag_heat(samples)}</section>"
            '<section class="panel"><h2>incidents</h2>'
            f"{_incident_list(samples)}</section>"
        )

    if status in _STATUS_COLORS:
        badge = (
            f'<span class="badge" style="color:{_STATUS_COLORS[status]}">'
            f"{_STATUS_ICONS[status]} {status}</span>"
        )
    else:
        badge = '<span class="badge muted">· no health signal</span>'
    stamp = time.strftime("%H:%M:%S")
    meta = (
        f"{len(samples)} sample(s)"
        + (f" · {history.interval:g}s interval" if history is not None else "")
        + f" · rendered {stamp}"
    )
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<meta http-equiv="refresh" content="{refresh}">
<title>chronicle operations</title>
<style>{_DASHBOARD_CSS}</style>
</head>
<body class="viz-root">
<header>
<h1>chronicle operations</h1>
{badge}
<span class="muted">{meta}</span>
<span class="muted" id="live"></span>
</header>
{body}
<footer>auto-refresh every {refresh}s · JSON at
 <a href="/timeline">/timeline</a> · scrape at <a href="/metrics">/metrics</a>
</footer>
<script>
(async () => {{
  const el = document.getElementById("live");
  try {{
    const r = await fetch("/timeline?limit=1");
    el.textContent = r.ok ? "· live" : "· timeline unavailable";
  }} catch (e) {{
    el.textContent = "· offline";
  }}
}})();
</script>
</body>
</html>
"""
