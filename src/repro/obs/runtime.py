"""The process-wide observability handle and its no-op fast path.

Instrumentation hooks are compiled into the hot paths of the library
(append admission, view routing, compiled plan steps, the interpreted
delta engine).  They must cost nothing when observability is off, so the
contract is deliberately primitive: a single module-level :data:`ACTIVE`
slot holding either ``None`` (disabled — the default) or the installed
:class:`~repro.obs.core.Observability` instance.  Every hook reduces to

.. code-block:: python

    obs = runtime.ACTIVE
    if obs is not None:
        ...  # record spans / metrics

— one module-attribute load and one identity test on the disabled path,
the cheapest guard Python offers (verified by the E12 before/after runs
recorded in ``docs/observability.md``).

Like :data:`~repro.complexity.counters.GLOBAL_COUNTERS`, the slot is
process-wide: installing observability for one
:class:`~repro.core.database.ChronicleDatabase` observes every database
in the process.  That is the right trade for a library whose counters
are already global; the caveat is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from contextlib import contextmanager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Observability

#: The installed observability instance, or ``None`` when disabled.
ACTIVE: Optional["Observability"] = None


def install(obs: "Observability") -> "Observability":
    """Make *obs* the process-wide active observability instance."""
    global ACTIVE
    ACTIVE = obs
    return obs


def uninstall(obs: Optional["Observability"] = None) -> None:
    """Clear the active instance.

    With an argument, clears only if *obs* is the one installed — so a
    database disabling its own handle cannot tear down another's.
    """
    global ACTIVE
    if obs is None or ACTIVE is obs:
        ACTIVE = None


def get() -> Optional["Observability"]:
    """The active observability instance, or ``None``."""
    return ACTIVE


@contextmanager
def installed(obs: "Observability") -> Iterator["Observability"]:
    """Temporarily install *obs* (tests and scoped measurements)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = obs
    try:
        yield obs
    finally:
        ACTIVE = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable observability (bulk preloads, setup code).

    Whatever instance was active is restored on exit; used by the
    conformance profiler so sweep preloads don't pay tracing overhead or
    pollute the measurement handle's metrics.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    try:
        yield
    finally:
        ACTIVE = previous
