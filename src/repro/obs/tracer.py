"""Span-based tracing for the append/maintenance pipeline.

One *trace* is the tree of spans produced by a single append event::

    append                      (ChronicleGroup.append_simultaneous)
    ├─ prefilter                (ViewRegistry candidate filtering)
    ├─ maintain view=v0         (one span per maintained view)
    │  ├─ delta op=Select       (compiled plan step / interpreter node)
    │  └─ delta op=GroupBySeq
    └─ maintain view=v1
       └─ ...

Each span records wall time (``perf_counter``), free-form attributes
(view name, engine, operator kind, delta row counts), and — the part
that makes the paper's cost theorems *observable* — a
:class:`~repro.complexity.counters.CostCounters` diff covering exactly
the span's dynamic extent, collected through the thread-local
:meth:`~repro.complexity.counters.CostCounters.scope` so concurrent
consumers cannot pollute it.  A parent span's counters include its
children's (scopes nest additively).

Completed root spans land in a bounded ring buffer
(:attr:`Tracer.capacity` most recent traces) and can be exported as
JSON-lines, one trace per line, for offline analysis.

The tracer has two faces: the :meth:`Tracer.span` context manager for
straight-line code, and the explicit :meth:`Tracer.start` /
:meth:`Tracer.finish` pair for hook sites where a ``with`` block would
contort the hot path.

Every span carries identity: a process-unique :attr:`Span.span_id`, the
:attr:`Span.trace_id` of the trace it belongs to (the root span's own
id), and the :attr:`Span.parent_id` of its enclosing span.  Within one
thread the ids flow through the thread-local stack; across threads the
producer captures :meth:`Tracer.current` and the consumer opens its
span with :meth:`Tracer.start_linked`, so e.g. a shard worker's
``shard_apply`` span carries the ``trace_id`` of the ``ingest`` that
produced its window even though it runs on a different thread.
"""

from __future__ import annotations

import io
import itertools
import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

from ..complexity.counters import GLOBAL_COUNTERS

import threading

#: Process-wide span-id source.  ``next()`` on an ``itertools.count`` is
#: a single C call, atomic under the GIL — no lock needed.
_SPAN_IDS = itertools.count(1)


class Span:
    """One timed, counter-scoped section of the pipeline."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "started_at",
        "duration",
        "counters",
        "span_id",
        "trace_id",
        "parent_id",
        "_t0",
        "_scope_cm",
        "_scope",
        "_is_root",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        #: Wall-clock timestamp (``time.time``) when the span started.
        self.started_at = time.time()
        #: Seconds of wall time (``perf_counter``), set at finish.
        self.duration: float = 0.0
        #: Non-zero CostCounters deltas over the span's extent.
        self.counters: Dict[str, int] = {}
        #: Process-unique id of this span.
        self.span_id: int = next(_SPAN_IDS)
        #: Id of the trace this span belongs to (the root span's id).
        self.trace_id: int = self.span_id
        #: Id of the enclosing span (``None`` for thread-local roots
        #: without a cross-thread link).
        self.parent_id: Optional[int] = None
        self._t0 = time.perf_counter()
        self._scope_cm = None
        self._scope = None
        self._is_root = False

    # -- structure helpers ---------------------------------------------------------

    @property
    def is_root(self) -> bool:
        """Whether this span is a trace root (no enclosing span)."""
        return self._is_root

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named *name* in this subtree."""
        return [span for span in self.walk() if span.name == name]

    # -- export --------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "started_at": self.started_at,
            "duration_us": round(self.duration * 1e6, 3),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def to_record(self) -> Dict[str, Any]:
        """A compact, id-free summary of this subtree for cross-process relay.

        Unlike :meth:`to_dict` this omits span/trace identity — ids are
        process-unique and meaningless across a process boundary; the
        receiving :meth:`Tracer.graft` mints fresh local ids under the
        adopting parent's trace.
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "started_at": self.started_at,
            "duration": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [child.to_record() for child in self.children]
        return out

    def format(self, indent: int = 0) -> str:
        """A human-readable one-line-per-span rendering of the subtree."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        counters = ", ".join(f"{k}={v}" for k, v in self.counters.items())
        line = "  " * indent + f"{self.name}"
        if attrs:
            line += f" [{attrs}]"
        line += f" {self.duration * 1e6:,.0f}us"
        if counters:
            line += f" ({counters})"
        lines = [line]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e6:.0f}us, "
            f"attrs={self.attrs}, children={len(self.children)})"
        )


class Tracer:
    """Builds span trees per append event and keeps the recent ones.

    Parameters
    ----------
    capacity:
        How many completed root spans (traces) the ring buffer retains.
    on_span_end:
        Callback invoked with every finished span (the auditor and the
        metrics bridge hang off this).
    """

    def __init__(
        self,
        capacity: int = 256,
        on_span_end: Optional[Callable[[Span], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self.on_span_end = on_span_end
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._completed = 0

    # -- span lifecycle ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the thread's current span."""
        span = Span(name, attrs)
        stack = self._stack()
        span._is_root = not stack
        if stack:
            parent = stack[-1]
            parent.children.append(span)
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        stack.append(span)
        cm = GLOBAL_COUNTERS.scope()
        span._scope = cm.__enter__()
        span._scope_cm = cm
        return span

    def start_linked(
        self, name: str, trace_id: int, parent_id: Optional[int], **attrs: Any
    ) -> Span:
        """Open a span linked to a trace context from *another* thread.

        A worker thread has an empty span stack, so a plain
        :meth:`start` would begin a brand-new trace.  This adopts the
        producer's context instead: the new span keeps its thread-local
        root status (it still enters the ring as its own trace tree)
        but carries the producer's ``trace_id`` and the producing
        span's id as ``parent_id``, so offline tools can stitch the
        cross-thread tree back together.  If the current thread already
        has an open span, ordinary nesting wins and the link arguments
        are ignored.
        """
        span = self.start(name, **attrs)
        if span._is_root:
            # Set before any child starts: children copy trace_id from
            # their parent at start().
            span.trace_id = trace_id
            span.parent_id = parent_id
        return span

    def graft(
        self, parent: Span, records: List[Dict[str, Any]], **attrs: Any
    ) -> List[Span]:
        """Adopt remote span records as finished children of *parent*.

        The cross-process face of :meth:`start_linked`: a worker process
        cannot link its spans live (it holds no reference to the parent
        tracer), so it ships compact :meth:`Span.to_record` summaries
        back with its window result and the parent grafts them here —
        each record becomes a real :class:`Span` with a fresh local id,
        *parent*'s ``trace_id``, and *parent* as ``parent_id``, so a
        ``shard_apply`` span gains its worker-side ``maintain`` children
        and the stitched tree exports through the normal ring/JSONL
        paths.  *attrs* (e.g. ``worker=3``) are stamped onto the
        top-level grafted spans only.  Grafted spans do not pass through
        ``on_span_end`` — their metrics arrive separately as relayed
        deltas.
        """
        grafted = []
        for record in records:
            span = self._graft_one(parent, record)
            for key, value in attrs.items():
                span.attrs.setdefault(key, value)
            grafted.append(span)
        return grafted

    def _graft_one(self, parent: Span, record: Dict[str, Any]) -> Span:
        span = Span(str(record.get("name", "?")), dict(record.get("attrs", {})))
        span.trace_id = parent.trace_id
        span.parent_id = parent.span_id
        span.started_at = float(record.get("started_at", span.started_at))
        span.duration = float(record.get("duration", 0.0))
        span.counters = dict(record.get("counters", {}))
        parent.children.append(span)
        for child in record.get("children", ()):
            self._graft_one(span, child)
        return span

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def finish(self, span: Span) -> Span:
        """Close *span*: stamp duration and counters, ring roots."""
        span.duration = time.perf_counter() - span._t0
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: mis-nested finish
            stack.remove(span)
        cm, scoped = span._scope_cm, span._scope
        span._scope_cm = span._scope = None
        if cm is not None:
            cm.__exit__(None, None, None)
            span.counters = {k: v for k, v in scoped.counts.items() if v}
        if span._is_root:
            self._ring.append(span)
            self._completed += 1
        callback = self.on_span_end
        if callback is not None:
            callback(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context-manager face of :meth:`start` / :meth:`finish`."""
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    # -- trace access ----------------------------------------------------------------

    @property
    def completed_count(self) -> int:
        """Lifetime number of completed root spans (ring-independent)."""
        return self._completed

    def traces(self, n: Optional[int] = None) -> List[Span]:
        """The most recent *n* traces, oldest first (all when ``None``)."""
        items = list(self._ring)
        if n is None or n >= len(items):
            return items
        return items[len(items) - n :]

    def last(self) -> Optional[Span]:
        """The most recent completed trace, if any."""
        return self._ring[-1] if self._ring else None

    def clear(self) -> None:
        self._ring.clear()

    # -- export -----------------------------------------------------------------------

    def to_jsonl(self, n: Optional[int] = None) -> str:
        """The recent traces as JSON-lines text (one trace per line)."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in self.traces(n)
        )

    def export_jsonl(self, destination: Union[str, io.TextIOBase]) -> int:
        """Write the ring's traces as JSON-lines; returns traces written.

        *destination* is a path or an open text file object.
        """
        text = self.to_jsonl()
        count = len(self._ring)
        if isinstance(destination, str):
            with open(destination, "w") as handle:
                handle.write(text)
        else:
            destination.write(text)
        return count
