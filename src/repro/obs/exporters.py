"""Live exporters: HTTP metrics endpoint, JSONL span streams, flame trees.

Three ways out of the process for the observability layer's data, all
stdlib-only:

* :class:`MetricsServer` — a tiny :mod:`http.server` daemon exposing

  - ``/metrics`` — the Prometheus text exposition format
    (``text/plain; version=0.0.4``), straight from
    :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`;
  - ``/certificates`` — the conformance certificates
    (:mod:`repro.obs.conformance`) as JSON;
  - ``/costs`` — the live :class:`~repro.obs.costmodel.CostLedger`
    (certificates stamped) as JSON, loadable with
    :meth:`CostLedger.from_dict <repro.obs.costmodel.CostLedger
    .from_dict>`;
  - ``/snapshot`` — the full :meth:`~repro.obs.core.Observability
    .snapshot` as JSON;
  - ``/health`` — the :class:`~repro.obs.health.HealthReport` as JSON
    (status 200 for ``OK``/``DEGRADED``, 503 for ``FAILING`` — load
    balancers and probes key off the status code alone);
  - ``/timeline`` — the bounded :meth:`~repro.obs.history
    .MetricsHistory.timeline` series as JSON (``?window=`` seconds,
    ``?series=`` comma-separated names, ``?limit=`` samples; 404 until
    the history sampler exists);
  - ``/dashboard`` — the dependency-free single-page operations
    dashboard (:func:`~repro.obs.history.render_dashboard`).

  Routes live in the module-level :data:`ROUTES` registry — a new
  endpoint is one ``@route("/path")`` function, not another branch in
  the handler.  Bind port 0 for an ephemeral port (tests do); the
  bound port is available as :attr:`MetricsServer.port` after
  :meth:`start`.

* :class:`JsonlSpanSink` — streams every completed trace (root span
  tree) to a JSON-lines file as it finishes, with size-based rotation
  (``spans.jsonl`` → ``spans.jsonl.1`` → …).  Attach with
  :meth:`~repro.obs.core.Observability.add_span_listener`; unlike
  :meth:`~repro.obs.tracer.Tracer.export_jsonl` this is not bounded by
  the ring buffer — it sees every trace, live.

* :func:`attribution_tree` / :func:`format_attribution` — a flame-style
  cost-attribution tree: spans from many traces aggregated by position
  (``append → maintain view=v0 → delta op=Select``), each node carrying
  total wall time and summed cost counters, rendered as an indented
  text tree with percent-of-root annotations.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs

from ..errors import ObservabilityError
from .tracer import Span

#: Attributes that identify a span within its parent (other attrs —
#: row counts, skip counts — are measurements, not identity).
_IDENTITY_ATTRS = (
    "view",
    "operator",
    "engine",
    "group",
    "chronicle",
    "shard",
    "worker",
)


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------

#: A route returns ``(status, content_type, body)`` for one GET.
Route = Callable[[Any, Dict[str, str]], Tuple[int, str, bytes]]

#: The exporter's route table: normalized path -> handler.  New
#: endpoints register themselves with :func:`route`; the request
#: handler is one dict hit, never a growing if/elif chain.
ROUTES: Dict[str, Route] = {}


def route(path: str) -> Callable[[Route], Route]:
    """Register *path* in :data:`ROUTES` (module-import time)."""

    def register(func: Route) -> Route:
        ROUTES[path] = func
        return func

    return register


def _json_reply(payload: Any, status: int = 200) -> Tuple[int, str, bytes]:
    body = json.dumps(payload, sort_keys=True, indent=2, default=str).encode(
        "utf-8"
    )
    return status, "application/json", body


@route("/metrics")
def _metrics_route(obs: Any, params: Dict[str, str]) -> Tuple[int, str, bytes]:
    body = obs.metrics.to_prometheus().encode("utf-8")
    return 200, "text/plain; version=0.0.4; charset=utf-8", body


@route("/certificates")
def _certificates_route(
    obs: Any, params: Dict[str, str]
) -> Tuple[int, str, bytes]:
    return _json_reply(obs.certificates)


@route("/snapshot")
def _snapshot_route(obs: Any, params: Dict[str, str]) -> Tuple[int, str, bytes]:
    return _json_reply(obs.snapshot())


@route("/costs")
def _costs_route(obs: Any, params: Dict[str, str]) -> Tuple[int, str, bytes]:
    return _json_reply(obs.cost_snapshot())


@route("/health")
def _health_route(obs: Any, params: Dict[str, str]) -> Tuple[int, str, bytes]:
    try:
        report = obs.health()
        payload = report.as_dict()
        status = 503 if report.status == "FAILING" else 200
    except Exception as exc:
        # A probe endpoint must answer even when evaluation breaks —
        # an unanswerable /health reads as down anyway.
        payload = {"status": "FAILING", "error": repr(exc)}
        status = 503
    return _json_reply(payload, status)


@route("/timeline")
def _timeline_route(obs: Any, params: Dict[str, str]) -> Tuple[int, str, bytes]:
    history = obs.history
    if history is None:
        return _json_reply(
            {"error": "metrics history is not enabled", "count": 0}, 404
        )
    try:
        window = float(params["window"]) if "window" in params else None
        limit = int(params["limit"]) if "limit" in params else None
    except ValueError as exc:
        return _json_reply({"error": f"bad query parameter: {exc}"}, 400)
    series = None
    if "series" in params:
        series = [name for name in params["series"].split(",") if name]
    try:
        payload = history.timeline(
            window_seconds=window, series=series, limit=limit
        )
    except ValueError as exc:
        return _json_reply({"error": str(exc)}, 400)
    return _json_reply(payload)


@route("/dashboard")
def _dashboard_route(
    obs: Any, params: Dict[str, str]
) -> Tuple[int, str, bytes]:
    from .history import render_dashboard

    body = render_dashboard(obs).encode("utf-8")
    return 200, "text/html; charset=utf-8", body


class _MetricsHandler(BaseHTTPRequestHandler):
    """Routes GETs to the owning server's observability handle."""

    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        handler = ROUTES.get(path)
        if handler is None:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")
            return
        params = {
            key: values[-1]
            for key, values in parse_qs(query, keep_blank_values=True).items()
        }
        try:
            status, content_type, body = handler(
                self.server.observability, params
            )
        except Exception as exc:
            # A broken route answers 500; it must never hang the scrape
            # loop or kill the serving thread.
            status, content_type, body = _json_reply({"error": repr(exc)}, 500)
        self._reply(status, content_type, body)

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes every few seconds would otherwise spam stderr.
        pass


class MetricsServer(ThreadingHTTPServer):
    """A daemon-threaded HTTP server over one observability handle.

    Usage::

        server = MetricsServer(obs, port=9464).start()
        ...                       # curl localhost:9464/metrics
        server.stop()

    The listening socket binds in ``__init__`` (so :attr:`port` is real
    immediately, even with ``port=0``); :meth:`start` launches the
    serving thread.
    """

    daemon_threads = True

    def __init__(
        self, observability: Any, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.observability = observability
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _MetricsHandler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise ObservabilityError("metrics server already started")
        self._thread = threading.Thread(
            target=self.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self.shutdown()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.server_close()


# ---------------------------------------------------------------------------
# JSONL span streaming
# ---------------------------------------------------------------------------


class JsonlSpanSink:
    """Streams completed traces to a rotating JSON-lines file.

    A span listener (for :meth:`~repro.obs.core.Observability
    .add_span_listener`): called with every finished span, it writes the
    **root** spans — whole trace trees — one JSON object per line.  When
    the current file would exceed *max_bytes* it is rotated aside
    (``path`` → ``path.1`` → ``path.2`` …, oldest dropped beyond
    *max_files* rotated files), so a long-running process keeps a
    bounded window of recent traces on disk.
    """

    def __init__(
        self, path: str, max_bytes: int = 1_000_000, max_files: int = 3
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if max_files < 0:
            raise ValueError("max_files must be >= 0")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.written = 0  # traces written over the sink's lifetime
        self.rotations = 0
        self._lock = threading.Lock()
        self._closed = False
        self._size = os.path.getsize(path) if os.path.exists(path) else 0
        self._handle = open(path, "a")

    @property
    def closed(self) -> bool:
        return self._closed

    def __call__(self, span: Span) -> None:
        if not span.is_root:
            return
        line = json.dumps(span.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            if self._closed:
                return
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)
            self.written += 1

    def _rotate(self) -> None:
        self._handle.close()
        # Shift path.N-1 → path.N from the oldest down, then path → path.1.
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for n in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{n}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{n + 1}")
        if self.max_files:
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._handle = open(self.path, "a")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        """Stop writing and release the file handle (idempotent).

        A closed sink left attached as a span listener becomes a no-op;
        it never raises into the maintenance path.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not self._handle.closed:
                self._handle.close()


# ---------------------------------------------------------------------------
# Flame-style cost attribution
# ---------------------------------------------------------------------------


class AttributionNode:
    """Aggregate of every span sharing one position in the trace tree."""

    __slots__ = ("label", "count", "seconds", "counters", "children")

    def __init__(self, label: str) -> None:
        self.label = label
        self.count = 0
        self.seconds = 0.0
        self.counters: Dict[str, int] = {}
        self.children: Dict[str, "AttributionNode"] = {}

    def add(self, span: Span) -> None:
        self.count += 1
        self.seconds += span.duration
        for event, amount in span.counters.items():
            self.counters[event] = self.counters.get(event, 0) + amount

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "label": self.label,
            "count": self.count,
            "seconds": self.seconds,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [
                child.to_dict() for child in self.children.values()
            ]
        return out


def _span_label(span: Span) -> str:
    parts = [span.name]
    for attr in _IDENTITY_ATTRS:
        value = span.attrs.get(attr)
        if value is not None:
            parts.append(f"{attr}={value}")
    return " ".join(parts)


def attribution_tree(traces: Sequence[Span]) -> AttributionNode:
    """Aggregate many traces into one position-keyed cost tree.

    Spans merge when their path of (name + identity attrs) labels from
    the root matches — all ``maintain view=v0`` spans across all traces
    become one node, its counters and wall time summed.  Pass
    ``tracer.traces()`` (or any list of root spans).
    """
    root = AttributionNode("total")
    for trace in traces:
        _merge(root, trace)
    return root


def _merge(parent: AttributionNode, span: Span) -> None:
    label = _span_label(span)
    node = parent.children.get(label)
    if node is None:
        node = parent.children[label] = AttributionNode(label)
    node.add(span)
    for child in span.children:
        _merge(node, child)


def format_attribution(
    traces: Sequence[Span], counter: Optional[str] = None
) -> str:
    """Render the attribution tree as indented text, heaviest first.

    Each line shows the position label, its share of the root's cost
    (wall time by default, or one counter event via *counter*), the
    absolute amount, and the span count — a text flame graph::

        append group=default              100.0%  12,340us  n=100
          maintain view=balance engine=compiled   62.1% ...
            delta operator=Select engine=compiled ...

    A parent's cost includes its children's (scopes nest additively),
    so sibling percentages sum to at most their parent's.
    """
    root = attribution_tree(traces)
    if not root.children:
        return "(no traces)"

    def cost(node: AttributionNode) -> float:
        if counter is None:
            return node.seconds
        return float(node.counters.get(counter, 0))

    total = sum(cost(child) for child in root.children.values()) or 1.0
    unit = counter if counter is not None else "us"
    lines: List[str] = []

    def render(node: AttributionNode, indent: int) -> None:
        amount = cost(node)
        value = amount * 1e6 if counter is None else amount
        lines.append(
            "  " * indent
            + f"{node.label}  {100.0 * amount / total:.1f}%  "
            + f"{value:,.0f}{unit}  n={node.count}"
        )
        for child in sorted(node.children.values(), key=cost, reverse=True):
            render(child, indent + 1)

    for child in sorted(root.children.values(), key=cost, reverse=True):
        render(child, 0)
    return "\n".join(lines)
