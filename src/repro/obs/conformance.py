"""Empirical IM-class conformance: certify the paper's cost claims live.

:mod:`repro.algebra.classify` *asserts* a view's incremental-maintenance
class from its operator tree (Theorem 4.5); the observability tracer
*records* what each append actually cost.  This module closes the loop:
it drives controlled scaling sweeps against a registered view — growing
the chronicle (|C|), the referenced relations (|R|), and the update
batch size (u) — measures the view's per-append ``maintain``-span cost
through the tracer's thread-local
:meth:`~repro.complexity.counters.CostCounters.scope` diffs, fits the
measured curves with :mod:`repro.complexity.fitting`, and emits a
**conformance certificate**: the claimed class next to the empirically
fitted one, with slope and R², and a pass/fail verdict per sweep.

The headline check is the empirical twin of the auditor's
``chronicle_read == 0`` rule: *no* view's per-append cost may grow with
|C| (Theorem 4.2's independence claim).  A view that violates it — like
the deliberately planted chronicle-product expression
:func:`certify_expression` exists to measure — is flagged
non-conformant even though its wall-clock might look fine at small
scale.

Cost measure
------------
"Work" is the sum of all cost-counter events **except** ``index_probe``
and ``index_lookup``: the paper's complexity classes are stated modulo
the O(log |V|) locate step, and probes legitimately grow with the
swept-up view state.  Probes are fitted separately where the class
bounds them (IM-Constant forbids growth; IM-log(R) allows log growth in
|R|).  The measures themselves (``span_work`` / ``span_probes``) live in
:mod:`repro.obs.costmodel` — shared with the live cost ledger — and are
re-exported here.

Certificates are JSON-ready (:meth:`ConformanceCertificate.to_dict`)
and are published on the installed observability handle's
``certificates`` dict, where the ``/certificates`` HTTP route
(:mod:`repro.obs.exporters`) serves them.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..algebra.classify import IMClass, Language, classify
from ..algebra.delta_engine import propagate
from ..complexity.counters import GLOBAL_COUNTERS
from ..complexity.fitting import classify_growth, median
from ..core.delta import Delta
from ..errors import ConformanceError
from ..relational.schema import Schema
from . import runtime
from .core import Observability
from .costmodel import span_probes, span_work
from .tracer import Span

__all__ = [
    "ConformanceCertificate",
    "ConformanceProfiler",
    "SweepVerdict",
    "certify_expression",
    "schema_record_factory",
    "span_probes",
    "span_work",
]

RecordFactory = Callable[[int], Dict[str, Any]]

#: Default sweep sizes (appended records / relation rows / batch sizes).
DEFAULT_C_SIZES: Tuple[int, ...] = (256, 1_024, 4_096)
DEFAULT_R_SIZES: Tuple[int, ...] = (256, 1_024, 4_096)
DEFAULT_U_SIZES: Tuple[int, ...] = (1, 4, 16)

#: Acceptable fitted models per sweep, keyed by (parameter, metric,
#: claimed class).  ``None`` means the class places no bound (the sweep
#: is still recorded, and always passes).
_R_WORK_EXPECTED = {
    IMClass.CONSTANT: ("constant",),
    IMClass.LOG_R: ("constant",),
    IMClass.POLY_R: None,
    IMClass.POLY_C: None,
}
_R_PROBE_EXPECTED = {
    IMClass.CONSTANT: ("constant",),
    IMClass.LOG_R: ("constant", "log"),
    IMClass.POLY_R: None,
    IMClass.POLY_C: None,
}
#: Per-event cost may grow at most linearly in the batch size u.
_U_EXPECTED = ("constant", "log", "linear")


def schema_record_factory(
    schema: Schema, keyspace: int = 64, unique_ints: bool = False
) -> RecordFactory:
    """A default record synthesizer for a chronicle or relation schema.

    INT attributes cycle through ``keyspace`` values (or count up when
    *unique_ints* — relation keys must be unique), STR attributes cycle
    a small alphabet, FLOAT/BOOL follow suit.  Good enough for sweeps;
    pass an explicit factory (e.g. a :mod:`repro.workloads` generator)
    when the view's predicates need realistic records.
    """
    fields: List[Tuple[str, str]] = [
        (attr.name, attr.domain.name)
        for attr in schema
        if attr.name != schema.sequence_attribute
    ]

    def factory(index: int) -> Dict[str, Any]:
        record: Dict[str, Any] = {}
        for name, domain in fields:
            if domain == "INT" or domain == "SEQ":
                record[name] = index if unique_ints else index % keyspace
            elif domain == "FLOAT":
                record[name] = float(index % keyspace)
            elif domain == "BOOL":
                record[name] = bool(index % 2)
            else:  # STR and anything exotic
                record[name] = f"s{index % 8}"
        return record

    return factory


class SweepVerdict:
    """One fitted scaling curve and its pass/fail outcome."""

    __slots__ = (
        "parameter",
        "metric",
        "xs",
        "ys",
        "seconds",
        "model",
        "slope",
        "r_squared",
        "expected",
        "passed",
    )

    def __init__(
        self,
        parameter: str,
        metric: str,
        xs: Sequence[float],
        ys: Sequence[float],
        seconds: Sequence[float],
        expected: Optional[Tuple[str, ...]],
    ) -> None:
        self.parameter = parameter
        self.metric = metric
        self.xs = list(xs)
        self.ys = list(ys)
        self.seconds = list(seconds)
        growth = classify_growth(xs, ys)
        self.model = growth.model
        self.slope = growth.fit.slope
        self.r_squared = growth.fit.r_squared
        self.expected = tuple(expected) if expected is not None else None
        self.passed = self.expected is None or self.model in self.expected

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parameter": self.parameter,
            "metric": self.metric,
            "xs": self.xs,
            "ys": self.ys,
            "seconds": self.seconds,
            "model": self.model,
            "slope": self.slope,
            "r_squared": self.r_squared,
            "expected": list(self.expected) if self.expected is not None else None,
            "passed": self.passed,
        }

    def describe(self) -> str:
        expected = (
            "unconstrained"
            if self.expected is None
            else "expected {" + ", ".join(self.expected) + "}"
        )
        return (
            f"{self.parameter} {self.metric}: fitted {self.model} "
            f"(slope {self.slope:.4g}, R²={self.r_squared:.3f}) {expected} "
            f"→ {'PASS' if self.passed else 'FAIL'}"
        )

    def __repr__(self) -> str:
        return f"SweepVerdict({self.describe()})"


class ConformanceCertificate:
    """Claimed vs measured complexity class for one view."""

    __slots__ = ("view", "language", "claimed", "engine", "sweeps", "samples")

    def __init__(
        self,
        view: str,
        language: Language,
        claimed: IMClass,
        engine: str,
        sweeps: Sequence[SweepVerdict],
        samples: int,
    ) -> None:
        self.view = view
        self.language = language
        self.claimed = claimed
        self.engine = engine
        self.sweeps = list(sweeps)
        self.samples = samples

    @property
    def conformant(self) -> bool:
        return all(sweep.passed for sweep in self.sweeps)

    def failures(self) -> List[SweepVerdict]:
        return [sweep for sweep in self.sweeps if not sweep.passed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "view": self.view,
            "language": self.language.value,
            "claimed_class": self.claimed.value,
            "engine": self.engine,
            "samples": self.samples,
            "sweeps": [sweep.to_dict() for sweep in self.sweeps],
            "conformant": self.conformant,
        }

    def format(self) -> str:
        lines = [
            f"conformance certificate: view {self.view!r}",
            f"  claimed: {self.language.value} → {self.claimed.value} "
            f"(engine {self.engine}, median of {self.samples} samples/point)",
        ]
        for sweep in self.sweeps:
            lines.append(f"  {sweep.describe()}")
        lines.append(
            f"  verdict: {'CONFORMANT' if self.conformant else 'NON-CONFORMANT'}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ConformanceCertificate({self.view!r}, {self.claimed.value}, "
            f"{'conformant' if self.conformant else 'NON-CONFORMANT'})"
        )


class ConformanceProfiler:
    """Runs scaling sweeps against a database's registered views.

    Parameters
    ----------
    database:
        The :class:`~repro.core.database.ChronicleDatabase` owning the
        views.  Sweeps append real records through the full maintenance
        pipeline — run the profiler against a scratch database, not a
        production one (the appended drive records stay in the views).
    samples:
        Measured appends per sweep point; the median is fitted, so a
        stray expensive append cannot tilt the curve.
    observability:
        Measurement handle.  Defaults to a private view-level tracer
        (``audit="off"``) that is installed only around the measured
        appends, so profiling neither pollutes the user's metrics nor
        inherits a disabled/absent handle.
    """

    def __init__(
        self,
        database: Any,
        samples: int = 5,
        observability: Optional[Observability] = None,
    ) -> None:
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.db = database
        self.samples = samples
        self._obs = (
            observability
            if observability is not None
            else Observability(trace=True, trace_operators=False, audit="off")
        )
        self._next_record = 0

    # -- public API ----------------------------------------------------------------

    def certify(
        self,
        name: str,
        chronicle: Optional[str] = None,
        record_factory: Optional[RecordFactory] = None,
        relation_factories: Optional[Dict[str, RecordFactory]] = None,
        c_sizes: Sequence[int] = DEFAULT_C_SIZES,
        r_sizes: Optional[Sequence[int]] = None,
        u_sizes: Optional[Sequence[int]] = DEFAULT_U_SIZES,
    ) -> ConformanceCertificate:
        """Certify one registered view; returns (and publishes) the result.

        *chronicle* selects the driver chronicle (default: the first one
        the view depends on); *record_factory* produces its drive
        records (default: synthesized from the schema — must pass the
        view's prefilter, or the sweep raises
        :class:`~repro.errors.ConformanceError`).  ``r_sizes`` defaults
        to :data:`DEFAULT_R_SIZES` when the view references relations
        and is skipped otherwise; pass ``u_sizes=None`` to skip the
        batch-size sweep.
        """
        view = self.db.view(name)
        driver = chronicle if chronicle is not None else view.chronicle_names()[0]
        driver_chronicle = self.db.chronicle(driver)
        factory = (
            record_factory
            if record_factory is not None
            else schema_record_factory(driver_chronicle.schema)
        )
        engine = "compiled" if self.db.registry.compile else "interpreted"
        sweeps: List[SweepVerdict] = [
            self._sweep_chronicle(view, driver, driver_chronicle, factory, c_sizes)
        ]
        relations = self._relations_of(view)
        if relations:
            if r_sizes is None:
                r_sizes = DEFAULT_R_SIZES
            sweeps.extend(
                self._sweep_relations(
                    view, driver, factory, relations, relation_factories or {}, r_sizes
                )
            )
        if u_sizes is not None:
            sweeps.append(self._sweep_batch(view, driver, factory, u_sizes))
        certificate = ConformanceCertificate(
            view=name,
            language=view.language,
            claimed=view.im_class,
            engine=engine,
            sweeps=sweeps,
            samples=self.samples,
        )
        self._publish(certificate)
        return certificate

    def certify_all(self, **kwargs: Any) -> Dict[str, ConformanceCertificate]:
        """Certify every registered persistent view (shared kwargs)."""
        return {
            view.name: self.certify(view.name, **kwargs)
            for view in list(self.db.registry.views())
        }

    # -- sweep drivers -------------------------------------------------------------

    @staticmethod
    def _relations_of(view: Any) -> List[Any]:
        """The distinct relations the view's expression references."""
        return list({r.name: r for r in view.expression.relations()}.values())

    def _sweep_chronicle(
        self,
        view: Any,
        driver: str,
        driver_chronicle: Any,
        factory: RecordFactory,
        sizes: Sequence[int],
    ) -> SweepVerdict:
        xs: List[float] = []
        works: List[float] = []
        seconds: List[float] = []
        for size in sizes:
            self._grow_chronicle(driver, driver_chronicle, factory, size)
            work, _, secs = self._measure(view, driver, factory, batch=1)
            xs.append(float(max(size, driver_chronicle.appended_count)))
            works.append(work)
            seconds.append(secs)
        return SweepVerdict("|C|", "work", xs, works, seconds, ("constant",))

    def _sweep_relations(
        self,
        view: Any,
        driver: str,
        factory: RecordFactory,
        relations: List[Any],
        relation_factories: Dict[str, RecordFactory],
        sizes: Sequence[int],
    ) -> List[SweepVerdict]:
        xs: List[float] = []
        works: List[float] = []
        probes: List[float] = []
        seconds: List[float] = []
        for size in sizes:
            for relation in relations:
                grow = relation_factories.get(
                    relation.name,
                    schema_record_factory(relation.schema, unique_ints=True),
                )
                self._grow_relation(relation, grow, size)
            work, probe, secs = self._measure(view, driver, factory, batch=1)
            xs.append(float(size))
            works.append(work)
            probes.append(probe)
            seconds.append(secs)
        claimed = view.im_class
        return [
            SweepVerdict("|R|", "work", xs, works, seconds, _R_WORK_EXPECTED[claimed]),
            SweepVerdict(
                "|R|", "probes", xs, probes, seconds, _R_PROBE_EXPECTED[claimed]
            ),
        ]

    def _sweep_batch(
        self, view: Any, driver: str, factory: RecordFactory, sizes: Sequence[int]
    ) -> SweepVerdict:
        xs: List[float] = []
        works: List[float] = []
        seconds: List[float] = []
        for size in sizes:
            work, _, secs = self._measure(view, driver, factory, batch=size)
            xs.append(float(size))
            works.append(work)
            seconds.append(secs)
        return SweepVerdict("u", "work", xs, works, seconds, _U_EXPECTED)

    # -- measurement mechanics -----------------------------------------------------

    def _records(self, factory: RecordFactory, count: int) -> List[Dict[str, Any]]:
        start = self._next_record
        self._next_record += count
        return [factory(start + i) for i in range(count)]

    def _grow_chronicle(
        self, driver: str, driver_chronicle: Any, factory: RecordFactory, size: int
    ) -> None:
        """Append drive records until the chronicle has seen *size* of them.

        Preloading runs with observability suspended and counters off —
        it is setup, not measurement — but every record still flows
        through full view maintenance, so the views' states track the
        stream honestly.
        """
        missing = size - driver_chronicle.appended_count
        if missing <= 0:
            return
        with runtime.suspended(), GLOBAL_COUNTERS.disabled():
            for record in self._records(factory, missing):
                self.db.append(driver, record)

    def _grow_relation(self, relation: Any, factory: RecordFactory, size: int) -> None:
        with runtime.suspended(), GLOBAL_COUNTERS.disabled():
            while len(relation) < size:
                relation.insert(factory(len(relation)))

    def _measure(
        self, view: Any, driver: str, factory: RecordFactory, batch: int
    ) -> Tuple[float, float, float]:
        """Median (work, probes, seconds) of the view's maintain span."""
        works: List[float] = []
        probes: List[float] = []
        seconds: List[float] = []
        with runtime.installed(self._obs):
            # One unmeasured warm-up append so first-touch effects (new
            # group rows, lazy plan compilation) don't skew the samples.
            self.db.append(driver, self._records(factory, batch))
            for _ in range(self.samples):
                self.db.append(driver, self._records(factory, batch))
                span = self._maintain_span(view.name)
                works.append(float(span_work(span.counters)))
                probes.append(float(span_probes(span.counters)))
                seconds.append(span.duration)
        return median(works), median(probes), median(seconds)

    def _maintain_span(self, view_name: str) -> Span:
        trace = self._obs.tracer.last()
        if trace is not None:
            for span in trace.find("maintain"):
                if span.attrs.get("view") == view_name:
                    return span
        raise ConformanceError(
            f"no maintenance span for view {view_name!r} in the last append "
            f"trace — the drive records may not pass the view's prefilter "
            f"(supply record_factory), or the view does not depend on the "
            f"driver chronicle"
        )

    def _publish(self, certificate: ConformanceCertificate) -> None:
        """Publish to the database's handle (and the active one, if other)."""
        targets = []
        db_obs = getattr(self.db, "observability", None)
        if db_obs is not None:
            targets.append(db_obs)
        active = runtime.get()
        if active is not None and active not in targets:
            targets.append(active)
        for obs in targets:
            obs.certificates[certificate.view] = certificate.to_dict()


def certify_expression(
    expression: Any,
    group: Any,
    driver: Any,
    grow: Optional[Any] = None,
    record_factory: Optional[RecordFactory] = None,
    grow_factory: Optional[RecordFactory] = None,
    sizes: Sequence[int] = DEFAULT_C_SIZES,
    samples: int = 3,
    allow_chronicle_access: bool = True,
    name: Optional[str] = None,
) -> ConformanceCertificate:
    """Certify a raw operator tree's |C|-independence (no registration).

    Expressions outside CA — :class:`~repro.algebra.ast.ChronicleProduct`
    and friends — cannot become :class:`PersistentView`\\ s (the
    constructor refuses them, Theorem 4.3), so the registry path above
    can never measure them.  This function drives their delta step
    directly: *grow* (default: *driver*) is the chronicle whose stored
    history is swept, *driver* receives the per-sample append whose delta
    is propagated through *expression* under a thread-local counter
    scope.  The |C| sweep's expectation is always ``constant`` — the
    paper's contract — so a planted C×C view comes back NON-CONFORMANT
    with a fitted linear (or worse) model, the empirical face of
    Theorem 4.3(2).
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    grow = grow if grow is not None else driver
    record_factory = (
        record_factory
        if record_factory is not None
        else schema_record_factory(driver.schema)
    )
    grow_factory = (
        grow_factory if grow_factory is not None else schema_record_factory(grow.schema)
    )
    classification = classify(expression)
    next_record = [0]

    def _next(factory: RecordFactory) -> Dict[str, Any]:
        next_record[0] += 1
        return factory(next_record[0])

    xs: List[float] = []
    works: List[float] = []
    seconds: List[float] = []
    for size in sizes:
        with GLOBAL_COUNTERS.disabled():
            while grow.appended_count < size:
                group.append(grow, _next(grow_factory))
        sample_works: List[float] = []
        sample_seconds: List[float] = []
        for _ in range(samples):
            rows = group.append(driver, _next(record_factory))
            deltas = {driver.name: Delta(driver.schema, rows)}
            start = time.perf_counter()
            with GLOBAL_COUNTERS.scope() as cost:
                propagate(
                    expression, deltas, allow_chronicle_access=allow_chronicle_access
                )
            sample_seconds.append(time.perf_counter() - start)
            sample_works.append(float(span_work(cost.counts)))
        xs.append(float(grow.appended_count))
        works.append(median(sample_works))
        seconds.append(median(sample_seconds))
    sweep = SweepVerdict("|C|", "work", xs, works, seconds, ("constant",))
    return ConformanceCertificate(
        view=name if name is not None else f"<{type(expression).__name__}>",
        language=classification.language,
        claimed=classification.im_class,
        engine="interpreted",
        sweeps=[sweep],
        samples=samples,
    )
