"""Selection predicates.

Definition 4.1 allows selection predicates of the form ``A θ B`` or
``A θ k`` (attribute–attribute or attribute–constant comparisons) and
disjunctions of such terms.  We implement that language exactly, plus
conjunction and negation for the *general* relational-algebra baseline —
the chronicle-algebra validator (:mod:`repro.algebra.validate`) rejects
predicates that fall outside the Definition 4.1 fragment.

Predicates are small immutable ASTs with:

* ``evaluate(row)`` / ``evaluate2(left, right)`` — truth value on a row;
* ``attributes()`` — the set of attribute names referenced;
* ``is_ca_predicate()`` — membership in the Definition 4.1 fragment.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, FrozenSet, Iterable, Tuple

from ..errors import AlgebraError
from .tuples import Row

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Comparison operator names admitted by Definition 4.1.
COMPARISON_OPS: Tuple[str, ...] = tuple(_OPS)


def _flip(op: str) -> str:
    """The operator obtained by swapping comparison operands."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


class Predicate:
    """Abstract base of the predicate AST."""

    __slots__ = ()

    def evaluate(self, row: Row) -> bool:
        """Truth value of the predicate on *row*."""
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """Attribute names the predicate references."""
        raise NotImplementedError

    def is_ca_predicate(self) -> bool:
        """Whether the predicate lies in the Definition 4.1 fragment.

        The fragment is: atomic comparisons ``A θ B`` / ``A θ k``, and
        disjunctions of such terms.
        """
        raise NotImplementedError

    # Convenient composition ------------------------------------------------

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Comparison(Predicate):
    """An atomic comparison ``A θ B`` or ``A θ k``.

    Parameters
    ----------
    attr:
        Left-hand attribute name.
    op:
        One of ``= != < <= > >=``.
    rhs:
        Either another attribute name (when *rhs_is_attr*) or a constant.
    rhs_is_attr:
        Disambiguates string constants from attribute references.
    """

    __slots__ = ("attr", "op", "rhs", "rhs_is_attr", "_fn")

    def __init__(self, attr: str, op: str, rhs: Any, rhs_is_attr: bool = False) -> None:
        if op not in _OPS:
            raise AlgebraError(f"unknown comparison operator {op!r}")
        self.attr = attr
        self.op = op
        self.rhs = rhs
        self.rhs_is_attr = rhs_is_attr
        self._fn = _OPS[op]

    def evaluate(self, row: Row) -> bool:
        left = row[self.attr]
        right = row[self.rhs] if self.rhs_is_attr else self.rhs
        if left is None or right is None:
            return False  # SQL-style: comparisons with NULL are not true
        return self._fn(left, right)

    def attributes(self) -> FrozenSet[str]:
        names = {self.attr}
        if self.rhs_is_attr:
            names.add(self.rhs)
        return frozenset(names)

    def is_ca_predicate(self) -> bool:
        return True

    def flipped(self) -> "Comparison":
        """``A θ B`` rewritten as ``B θ' A`` (attribute–attribute only)."""
        if not self.rhs_is_attr:
            raise AlgebraError("cannot flip an attribute-constant comparison")
        return Comparison(self.rhs, _flip(self.op), self.attr, rhs_is_attr=True)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comparison):
            return NotImplemented
        return (
            self.attr == other.attr
            and self.op == other.op
            and self.rhs == other.rhs
            and self.rhs_is_attr == other.rhs_is_attr
        )

    def __hash__(self) -> int:
        return hash((self.attr, self.op, self.rhs, self.rhs_is_attr))

    def __repr__(self) -> str:
        rhs = self.rhs if self.rhs_is_attr else repr(self.rhs)
        return f"({self.attr} {self.op} {rhs})"


class Or(Predicate):
    """Disjunction of sub-predicates (allowed inside CA predicates)."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Predicate) -> None:
        if not terms:
            raise AlgebraError("OR requires at least one term")
        flattened = []
        for term in terms:
            if isinstance(term, Or):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        self.terms: Tuple[Predicate, ...] = tuple(flattened)

    def evaluate(self, row: Row) -> bool:
        return any(term.evaluate(row) for term in self.terms)

    def attributes(self) -> FrozenSet[str]:
        names: set = set()
        for term in self.terms:
            names |= term.attributes()
        return frozenset(names)

    def is_ca_predicate(self) -> bool:
        return all(isinstance(t, Comparison) for t in self.terms)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.terms)) + ")"


class And(Predicate):
    """Conjunction — *outside* the strict Definition 4.1 fragment.

    Note that a conjunction of CA-admissible selections is expressible in
    CA as a cascade of selections, so the validator treats top-level ANDs
    as syntactic sugar while still reporting ``is_ca_predicate() == False``
    for nested uses that cannot be unfolded.
    """

    __slots__ = ("terms",)

    def __init__(self, *terms: Predicate) -> None:
        if not terms:
            raise AlgebraError("AND requires at least one term")
        flattened = []
        for term in terms:
            if isinstance(term, And):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        self.terms: Tuple[Predicate, ...] = tuple(flattened)

    def evaluate(self, row: Row) -> bool:
        return all(term.evaluate(row) for term in self.terms)

    def attributes(self) -> FrozenSet[str]:
        names: set = set()
        for term in self.terms:
            names |= term.attributes()
        return frozenset(names)

    def is_ca_predicate(self) -> bool:
        return False

    def unfold(self) -> Tuple[Predicate, ...]:
        """The conjuncts, each usable as a separate cascaded selection."""
        return self.terms

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.terms)) + ")"


class Not(Predicate):
    """Negation — general-RA only, never CA-admissible."""

    __slots__ = ("term",)

    def __init__(self, term: Predicate) -> None:
        self.term = term

    def evaluate(self, row: Row) -> bool:
        return not self.term.evaluate(row)

    def attributes(self) -> FrozenSet[str]:
        return self.term.attributes()

    def is_ca_predicate(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"(NOT {self.term!r})"


class TruePredicate(Predicate):
    """The always-true predicate (identity selection)."""

    __slots__ = ()

    def evaluate(self, row: Row) -> bool:
        return True

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def is_ca_predicate(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


TRUE = TruePredicate()


# -- convenience constructors ----------------------------------------------------


def attr_eq(attr: str, value: Any) -> Comparison:
    """``attr = value`` (constant comparison)."""
    return Comparison(attr, "=", value)


def attr_cmp(attr: str, op: str, value: Any) -> Comparison:
    """``attr op value`` (constant comparison)."""
    return Comparison(attr, op, value)


def attrs_cmp(left: str, op: str, right: str) -> Comparison:
    """``left op right`` (attribute–attribute comparison)."""
    return Comparison(left, op, right, rhs_is_attr=True)


def disjunction(terms: Iterable[Predicate]) -> Predicate:
    """OR together *terms*; a single term passes through unchanged."""
    terms = list(terms)
    if len(terms) == 1:
        return terms[0]
    return Or(*terms)


def conjunction(terms: Iterable[Predicate]) -> Predicate:
    """AND together *terms*; a single term passes through unchanged."""
    terms = list(terms)
    if len(terms) == 1:
        return terms[0]
    return And(*terms)
