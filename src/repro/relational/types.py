"""Typed value domains for relation and chronicle attributes.

The chronicle model is built on top of the relational model (Section 1 of
the paper), so we need ordinary typed attributes plus one distinguished
domain: the *sequencing* domain, an "infinite ordered domain" from which
chronicle sequence numbers are drawn (Section 2.1).

Domains are small singletons; attribute declarations reference them by
object or by name (``"INT"``).  Each domain knows how to validate and
coerce Python values.  ``NULL`` is represented by ``None`` and is accepted
only by attributes declared nullable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import TypeMismatchError


class Domain:
    """A value domain (attribute type).

    Parameters
    ----------
    name:
        Canonical upper-case name used in schemas and the query language.
    pytypes:
        Python types whose instances belong to the domain.
    ordered:
        Whether comparison predicates (``<`` etc.) are meaningful.
    """

    __slots__ = ("name", "pytypes", "ordered")

    def __init__(self, name: str, pytypes: Tuple[type, ...], ordered: bool = True) -> None:
        self.name = name
        self.pytypes = pytypes
        self.ordered = ordered

    def contains(self, value: Any) -> bool:
        """Return ``True`` when *value* is a member of this domain."""
        if isinstance(value, bool):
            # bool is a subclass of int; keep BOOL and INT disjoint.
            return bool in self.pytypes
        return isinstance(value, self.pytypes)

    def coerce(self, value: Any) -> Any:
        """Coerce *value* into the domain, raising on impossible coercions.

        Coercion is deliberately conservative: ints widen to floats for a
        FLOAT attribute, everything else must already belong.
        """
        if self.contains(value):
            return value
        if self is FLOAT and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self is SEQ and isinstance(value, int) and not isinstance(value, bool):
            return value
        raise TypeMismatchError(
            f"value {value!r} of type {type(value).__name__} does not belong "
            f"to domain {self.name}"
        )

    def __repr__(self) -> str:
        return f"Domain({self.name})"

    def __str__(self) -> str:
        return self.name


INT = Domain("INT", (int,))
FLOAT = Domain("FLOAT", (float, int))
STR = Domain("STR", (str,))
BOOL = Domain("BOOL", (bool,), ordered=False)
#: The sequencing domain: an infinite ordered domain of sequence numbers.
SEQ = Domain("SEQ", (int,))

_BY_NAME: Dict[str, Domain] = {d.name: d for d in (INT, FLOAT, STR, BOOL, SEQ)}


def domain_by_name(name: str) -> Domain:
    """Look up a domain by its canonical (case-insensitive) name."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise TypeMismatchError(f"unknown domain name {name!r}") from None


def resolve_domain(spec: "Domain | str") -> Domain:
    """Accept either a :class:`Domain` or its name and return the domain."""
    if isinstance(spec, Domain):
        return spec
    if isinstance(spec, str):
        return domain_by_name(spec)
    raise TypeMismatchError(f"cannot interpret {spec!r} as a domain")


def check_value(domain: Domain, value: Any, nullable: bool = False) -> Any:
    """Validate and coerce *value* for an attribute of *domain*.

    ``None`` passes through only when *nullable* is true.
    """
    if value is None:
        if nullable:
            return None
        raise TypeMismatchError(f"NULL not allowed for non-nullable {domain.name} attribute")
    return domain.coerce(value)


def common_domain(left: Domain, right: Domain) -> Optional[Domain]:
    """Return the domain two comparable attributes share, if any.

    INT and FLOAT are mutually comparable (numeric); SEQ compares with INT
    because sequence numbers are integers drawn from an ordered domain.
    """
    if left is right:
        return left
    numeric = {INT, FLOAT, SEQ}
    if left in numeric and right in numeric:
        return FLOAT if FLOAT in (left, right) else INT
    return None
