"""Mutable relations with key enforcement and secondary indexes.

Relations in the chronicle model are ordinary relations (Section 2.1):
fully stored, updatable (insert/delete/modify), and joined with chronicles
through the implicit temporal join.  This module provides the storage-and-
index layer; temporal versioning is layered on in
:mod:`repro.relational.versioned`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..complexity.counters import GLOBAL_COUNTERS
from ..errors import IntegrityError, KeyViolationError, UnknownAttributeError
from ..storage.btree import BPlusTree
from ..storage.hash_index import HashIndex
from .predicate import Predicate
from .schema import Schema
from .tuples import Row

RowLike = Union[Row, Mapping[str, Any], Sequence[Any]]


def _as_row(schema: Schema, value: RowLike) -> Row:
    """Coerce mappings/sequences into a schema-validated :class:`Row`."""
    if isinstance(value, Row):
        if value.schema is schema or value.schema.compatible_with(schema):
            return value if value.schema is schema else value.rebind(schema)
        return Row(schema, value.values)
    if isinstance(value, Mapping):
        return Row.from_mapping(schema, value)
    return Row(schema, value)


class Relation:
    """A stored, mutable relation.

    Rows are kept in insertion order in a slot list; deletion leaves
    tombstones that are skipped on scan and compacted opportunistically.
    A unique index enforces the schema's key; additional secondary indexes
    (hash or B+-tree) can be attached per attribute list.

    Parameters
    ----------
    name:
        Relation name (used in error messages and the database catalog).
    schema:
        The relation's schema.  When the schema declares a key, a unique
        hash index over it is created automatically.
    """

    __slots__ = (
        "name",
        "schema",
        "_slots",
        "_count",
        "_key_index",
        "_key_positions",
        "_indexes",
        "_tombstones",
    )

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._slots: List[Optional[Row]] = []
        self._count = 0
        self._tombstones = 0
        self._indexes: Dict[Tuple[str, ...], Union[HashIndex, BPlusTree]] = {}
        self._key_index: Optional[HashIndex] = None
        self._key_positions: Optional[Tuple[int, ...]] = None
        if schema.key is not None:
            self._key_index = HashIndex(unique=True)
            self._key_positions = schema.positions(schema.key)

    # -- key helpers -----------------------------------------------------------------

    def _key_of(self, row: Row) -> Optional[Tuple[Any, ...]]:
        if self._key_positions is None:
            return None
        values = row.values
        return tuple(values[p] for p in self._key_positions)

    def _index_key(self, attrs: Tuple[str, ...], row: Row) -> Any:
        if len(attrs) == 1:
            return row[attrs[0]]
        return tuple(row[name] for name in attrs)

    # -- mutation ----------------------------------------------------------------------

    def insert(self, value: RowLike) -> Row:
        """Insert one row; returns the stored :class:`Row`."""
        row = _as_row(self.schema, value)
        key = self._key_of(row)
        if self._key_index is not None:
            if self._key_index.contains(key):
                raise KeyViolationError(
                    f"relation {self.name!r}: duplicate key {key!r}"
                )
        slot = len(self._slots)
        self._slots.append(row)
        self._count += 1
        if self._key_index is not None:
            self._key_index.insert(key, slot)
        for attrs, index in self._indexes.items():
            index.insert(self._index_key(attrs, row), slot)
        return row

    def insert_many(self, values: Iterable[RowLike]) -> List[Row]:
        """Insert several rows; returns the stored rows."""
        return [self.insert(value) for value in values]

    def delete_where(self, predicate: Predicate) -> int:
        """Delete every row satisfying *predicate*; returns count deleted."""
        deleted = 0
        for slot, row in enumerate(self._slots):
            if row is not None and predicate.evaluate(row):
                self._delete_slot(slot)
                deleted += 1
        self._maybe_compact()
        return deleted

    def delete_key(self, key: Sequence[Any]) -> bool:
        """Delete the row with the given primary-key value."""
        if self._key_index is None:
            raise IntegrityError(f"relation {self.name!r} has no key")
        slot = self._key_index.get(tuple(key))
        if slot is None:
            return False
        self._delete_slot(slot)
        self._maybe_compact()
        return True

    def _delete_slot(self, slot: int) -> None:
        row = self._slots[slot]
        if row is None:
            return
        self._slots[slot] = None
        self._count -= 1
        self._tombstones += 1
        if self._key_index is not None:
            self._key_index.remove(self._key_of(row))
        for attrs, index in self._indexes.items():
            index.remove(self._index_key(attrs, row), slot)

    def _maybe_compact(self) -> None:
        if self._tombstones <= max(32, self._count):
            return
        live = [row for row in self._slots if row is not None]
        self._slots = []
        self._count = 0
        self._tombstones = 0
        if self._key_index is not None:
            self._key_index.clear()
        for index in self._indexes.values():
            index.clear()
        for row in live:
            self.insert(row)

    def update_where(self, predicate: Predicate, **changes: Any) -> int:
        """Set the given attributes on every row matching *predicate*."""
        updated = 0
        for slot, row in enumerate(self._slots):
            if row is not None and predicate.evaluate(row):
                self._replace_slot(slot, row.replace(**changes))
                updated += 1
        return updated

    def update_key(self, key: Sequence[Any], **changes: Any) -> bool:
        """Update the row with the given primary-key value."""
        if self._key_index is None:
            raise IntegrityError(f"relation {self.name!r} has no key")
        slot = self._key_index.get(tuple(key))
        if slot is None:
            return False
        row = self._slots[slot]
        assert row is not None
        self._replace_slot(slot, row.replace(**changes))
        return True

    def replace_key(self, key: Sequence[Any], row: Row) -> bool:
        """Replace the row stored at *key* with an already-built *row*.

        The caller supplies the complete replacement row (carrying the
        same key values).  Skips the per-attribute rebuild and
        re-validation of :meth:`update_key` — the persistent-view fold
        path constructs the full new row anyway, so rebuilding it from
        keyword changes is pure overhead there.
        """
        if self._key_index is None:
            raise IntegrityError(f"relation {self.name!r} has no key")
        key = tuple(key)
        slot = self._key_index.get(key)
        if slot is None:
            return False
        if not self._indexes and self._key_of(row) == key:
            # Key unchanged and no secondary indexes to maintain: swap the
            # slot directly (the common case on the view fold path).
            self._slots[slot] = row
            return True
        self._replace_slot(slot, row)
        return True

    def _replace_slot(self, slot: int, new_row: Row) -> None:
        old_row = self._slots[slot]
        assert old_row is not None
        new_key = self._key_of(new_row)
        old_key = self._key_of(old_row)
        if self._key_index is not None and new_key != old_key:
            existing = self._key_index.get(new_key)
            if existing is not None and existing != slot:
                raise KeyViolationError(
                    f"relation {self.name!r}: update duplicates key {new_key!r}"
                )
            self._key_index.remove(old_key)
            self._key_index.insert(new_key, slot)
        for attrs, index in self._indexes.items():
            old_value = self._index_key(attrs, old_row)
            new_value = self._index_key(attrs, new_row)
            if old_value != new_value:
                index.remove(old_value, slot)
                index.insert(new_value, slot)
        self._slots[slot] = new_row

    def clear(self) -> None:
        """Remove every row."""
        self._slots = []
        self._count = 0
        self._tombstones = 0
        if self._key_index is not None:
            self._key_index.clear()
        for index in self._indexes.values():
            index.clear()

    # -- indexes -----------------------------------------------------------------------

    def create_index(
        self, attrs: Sequence[str], ordered: bool = False, unique: bool = False
    ) -> None:
        """Attach a secondary index over *attrs*.

        *ordered* selects a B+-tree (range scans, O(log) probes) over a
        hash index; *unique* additionally enforces — and advertises to the
        key-join validator — that at most one row carries each value.
        """
        for name in attrs:
            if name not in self.schema:
                raise UnknownAttributeError(f"cannot index unknown attribute {name!r}")
        key = tuple(attrs)
        if key in self._indexes:
            return
        index: Union[HashIndex, BPlusTree]
        index = BPlusTree(unique=unique) if ordered else HashIndex(unique=unique)
        for slot, row in enumerate(self._slots):
            if row is not None:
                index.insert(self._index_key(key, row), slot)
        self._indexes[key] = index

    def has_index(self, attrs: Sequence[str]) -> bool:
        """Whether a secondary index over *attrs* exists."""
        return tuple(attrs) in self._indexes

    def has_unique_index(self, attrs: Sequence[str]) -> bool:
        """Whether *attrs* are covered by a uniqueness guarantee.

        True for the primary key and for any unique secondary index —
        the "at most a constant number of matches" guarantee Definition
        4.2 requires of CA-join expressions.
        """
        key = tuple(attrs)
        if self.schema.key is not None and set(self.schema.key) <= set(key):
            return True
        index = self._indexes.get(key)
        return index is not None and index.unique

    # -- lookup -------------------------------------------------------------------------

    def lookup_key(self, key: Sequence[Any]) -> Optional[Row]:
        """The row with the given primary-key value, if any."""
        if self._key_index is None:
            raise IntegrityError(f"relation {self.name!r} has no key")
        slot = self._key_index.get(tuple(key))
        if slot is None:
            return None
        return self._slots[slot]

    def lookup(self, attrs: Sequence[str], value: Any) -> List[Row]:
        """Rows whose *attrs* equal *value*, via index when available.

        *value* is a scalar for single-attribute lookups, else a tuple.
        Falls back to a scan (charging ``tuple_op`` per row) without an
        index — the cost model makes the difference visible.
        """
        key = tuple(attrs)
        if self.schema.key == key and self._key_index is not None:
            row = self.lookup_key(value if isinstance(value, tuple) else (value,))
            return [row] if row is not None else []
        index = self._indexes.get(key)
        if index is not None:
            rows = []
            for slot in index.get_all(value):
                row = self._slots[slot]
                if row is not None:
                    rows.append(row)
            return rows
        matches = []
        for row in self.rows():
            GLOBAL_COUNTERS.count("tuple_op")
            if self._index_key(key, row) == value:
                matches.append(row)
        return matches

    def select(self, predicate: Predicate) -> List[Row]:
        """Rows satisfying *predicate* (always a scan)."""
        return [row for row in self.rows() if predicate.evaluate(row)]

    # -- iteration -----------------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """Iterate live rows in insertion order."""
        for row in self._slots:
            if row is not None:
                yield row

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __len__(self) -> int:
        return self._count

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, Row):
            return False
        return any(row == value for row in self.rows())

    def to_set(self) -> frozenset:
        """The relation's rows as a frozenset (testing convenience)."""
        return frozenset(self.rows())

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {self._count} rows, schema={self.schema!r})"
