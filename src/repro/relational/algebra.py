"""Full relational algebra evaluator.

This is the *general* relational algebra extended with grouping and
aggregation — the language Proposition 3.1 shows to be IM-C^k (maintenance
may require arbitrary access to the chronicle).  In this repository it has
two jobs:

* **the baseline**: :mod:`repro.baselines.recompute` re-evaluates views
  from scratch with it, exhibiting the cost the chronicle algebra avoids;
* **the oracle**: tests compare incremental maintenance results against
  batch evaluation over the fully stored chronicle.

Evaluation is set-semantics over immutable :class:`Table` values (schema +
deduplicated row tuple).  Every produced row charges one ``tuple_op`` so
the cost model sees the work.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from ..aggregates.base import AggregateSpec
from ..complexity.counters import GLOBAL_COUNTERS
from ..errors import SchemaError
from .predicate import Predicate
from .schema import Attribute, Schema
from .tuples import Row


class Table:
    """An immutable evaluation result: a schema plus deduplicated rows."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: Iterable[Row], dedup: bool = True) -> None:
        self.schema = schema
        if dedup:
            seen = set()
            unique: List[Row] = []
            for row in rows:
                if row.values not in seen:
                    seen.add(row.values)
                    unique.append(row)
            self.rows: Tuple[Row, ...] = tuple(unique)
        else:
            self.rows = tuple(rows)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Row]) -> "Table":
        return cls(schema, rows)

    @classmethod
    def from_relation(cls, relation: Any) -> "Table":
        """Build from anything exposing ``schema`` and row iteration."""
        return cls(relation.schema, list(relation))

    def to_set(self) -> frozenset:
        return frozenset(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.to_set() == other.to_set()

    def __hash__(self) -> int:
        return hash(self.to_set())

    def __repr__(self) -> str:
        return f"Table({len(self.rows)} rows, {self.schema!r})"


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


def select(table: Table, predicate: Predicate) -> Table:
    """σ_p — rows of *table* satisfying *predicate*."""
    rows = []
    for row in table.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        if predicate.evaluate(row):
            rows.append(row)
    return Table(table.schema, rows, dedup=False)


def project(table: Table, names: Sequence[str]) -> Table:
    """π — projection onto *names* with duplicate elimination."""
    schema = table.schema.project(names)
    rows = []
    for row in table.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        rows.append(row.project(names, schema))
    return Table(schema, rows)


def rename(table: Table, mapping: Dict[str, str]) -> Table:
    """ρ — rename attributes per *mapping*."""
    schema = table.schema.rename(mapping)
    rows = [row.rebind(schema) for row in table.rows]
    return Table(schema, rows, dedup=False)


def product(left: Table, right: Table) -> Table:
    """× — cartesian product (right-hand clashes prefixed ``r_``)."""
    schema = left.schema.concat(right.schema)
    rows = []
    for lrow in left.rows:
        for rrow in right.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(Row(schema, lrow.values + rrow.values, validate=False))
    return Table(schema, rows)


def theta_join(left: Table, right: Table, predicate: Predicate) -> Table:
    """⋈_p — product filtered by *predicate* over the combined schema."""
    schema = left.schema.concat(right.schema)
    rows = []
    for lrow in left.rows:
        for rrow in right.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            combined = Row(schema, lrow.values + rrow.values, validate=False)
            if predicate.evaluate(combined):
                rows.append(combined)
    return Table(schema, rows)


def equi_join(
    left: Table,
    right: Table,
    pairs: Sequence[Tuple[str, str]],
    project_right_keys: bool = True,
) -> Table:
    """Hash equi-join on attribute *pairs* ``(left_attr, right_attr)``.

    With *project_right_keys*, the right-hand join attributes are removed
    from the output (natural-join style), matching the paper's convention
    for the sequence-number equijoin where "one of the sequencing
    attributes is projected out from the result".
    """
    if not pairs:
        raise SchemaError("equi_join requires at least one attribute pair")
    right_key_names = [r for _, r in pairs]
    right_kept = [n for n in right.schema.names if not (project_right_keys and n in right_key_names)]
    out_schema = left.schema.concat(right.schema.project(right_kept))
    buckets: Dict[Tuple[Any, ...], List[Row]] = {}
    right_positions = right.schema.positions(right_key_names)
    for rrow in right.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        buckets.setdefault(tuple(rrow.values[p] for p in right_positions), []).append(rrow)
    left_positions = left.schema.positions([l for l, _ in pairs])
    kept_positions = right.schema.positions(right_kept)
    rows = []
    for lrow in left.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        key = tuple(lrow.values[p] for p in left_positions)
        for rrow in buckets.get(key, ()):
            GLOBAL_COUNTERS.count("tuple_op")
            values = lrow.values + tuple(rrow.values[p] for p in kept_positions)
            rows.append(Row(out_schema, values, validate=False))
    return Table(out_schema, rows)


def union(left: Table, right: Table) -> Table:
    """∪ — set union of compatible tables."""
    left.schema.require_compatible(right.schema, "union")
    GLOBAL_COUNTERS.count("tuple_op", len(left.rows) + len(right.rows))
    return Table(left.schema, list(left.rows) + [r.rebind(left.schema) for r in right.rows])


def difference(left: Table, right: Table) -> Table:
    """− — set difference of compatible tables."""
    left.schema.require_compatible(right.schema, "difference")
    removed = {row.values for row in right.rows}
    rows = []
    for row in left.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        if row.values not in removed:
            rows.append(row)
    return Table(left.schema, rows, dedup=False)


def intersection(left: Table, right: Table) -> Table:
    """∩ — set intersection of compatible tables."""
    left.schema.require_compatible(right.schema, "intersection")
    keep = {row.values for row in right.rows}
    rows = [row for row in left.rows if row.values in keep]
    GLOBAL_COUNTERS.count("tuple_op", len(left.rows))
    return Table(left.schema, rows, dedup=False)


def group_by(
    table: Table,
    grouping: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """GROUPBY(R, GL, AL) in the syntax of [MPR90].

    The result schema is the grouping attributes followed by one attribute
    per aggregation function.  An empty *grouping* produces the single
    global group (even over an empty input, per SQL aggregate semantics).
    """
    group_attrs = [table.schema.attribute(name) for name in grouping]
    agg_attrs = []
    for s in aggregates:
        input_domain = (
            table.schema.attribute(s.attribute).domain if s.attribute is not None else None
        )
        agg_attrs.append(
            Attribute(s.output, s.function.output_domain(input_domain), nullable=True)
        )
    out_schema = Schema(group_attrs + agg_attrs)
    positions = table.schema.positions(grouping)
    states: Dict[Tuple[Any, ...], List[Any]] = {}
    order: List[Tuple[Any, ...]] = []
    for row in table.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        key = tuple(row.values[p] for p in positions)
        if key not in states:
            states[key] = [s.function.initial() for s in aggregates]
            order.append(key)
        accumulators = states[key]
        for i, spec in enumerate(aggregates):
            GLOBAL_COUNTERS.count("aggregate_step")
            accumulators[i] = spec.function.step(accumulators[i], spec.argument(row))
    if not grouping and not order:
        order.append(())
        states[()] = [s.function.initial() for s in aggregates]
    rows = []
    for key in order:
        finals = tuple(
            spec.function.finalize(state)
            for spec, state in zip(aggregates, states[key])
        )
        rows.append(Row(out_schema, key + finals, validate=False))
    return Table(out_schema, rows, dedup=False)


def distinct(table: Table) -> Table:
    """Explicit duplicate elimination (tables are already sets; no-op)."""
    return Table(table.schema, table.rows)


def extend(table: Table, name: str, domain: Any, fn: Callable[[Row], Any],
           nullable: bool = True) -> Table:
    """Append a computed attribute (generalized projection helper)."""
    schema = Schema(
        list(table.schema.attributes) + [Attribute(name, domain, nullable)],
        sequence_attribute=table.schema.sequence_attribute,
    )
    rows = []
    for row in table.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        rows.append(Row(schema, row.values + (fn(row),), validate=False))
    return Table(schema, rows, dedup=False)
