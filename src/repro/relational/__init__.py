"""Relational substrate: schemas, rows, predicates, relations, algebra."""

from .predicate import (
    TRUE,
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    attr_cmp,
    attr_eq,
    attrs_cmp,
    conjunction,
    disjunction,
)
from .relation import Relation
from .schema import Attribute, Schema
from .tuples import Row
from .types import BOOL, FLOAT, INT, SEQ, STR, Domain
from .versioned import VersionedRelation

__all__ = [
    "Attribute",
    "Schema",
    "Row",
    "Relation",
    "VersionedRelation",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TRUE",
    "attr_eq",
    "attr_cmp",
    "attrs_cmp",
    "disjunction",
    "conjunction",
    "Domain",
    "INT",
    "FLOAT",
    "STR",
    "BOOL",
    "SEQ",
]
