"""Immutable rows bound to a schema.

A :class:`Row` is the tuple representation used throughout the library:
by relations, chronicles, deltas, and materialized views.  Rows are
immutable and hashable so that set-based algebra (union, difference,
duplicate elimination) works directly on them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from ..errors import SchemaError, UnknownAttributeError
from .schema import Schema


class Row:
    """An immutable, schema-typed tuple.

    Rows compare and hash by *values only*; two rows with equal values but
    different (compatible) schemas are equal, which is exactly what set
    semantics for union/difference requires.

    Parameters
    ----------
    schema:
        The schema the values conform to.
    values:
        Positional values; validated and coerced against the schema.
    validate:
        Skip validation when the caller guarantees well-typed values
        (used on hot paths that re-shape already-validated rows).
    """

    __slots__ = ("schema", "values")

    def __init__(self, schema: Schema, values: Sequence[Any], validate: bool = True) -> None:
        self.schema = schema
        if validate:
            self.values: Tuple[Any, ...] = schema.check_values(values)
        else:
            self.values = tuple(values)

    @classmethod
    def from_mapping(cls, schema: Schema, mapping: Mapping[str, Any]) -> "Row":
        """Build a row from an attribute-name → value mapping."""
        names_set = schema.names_set
        extra = [name for name in mapping if name not in names_set]
        if extra:
            raise UnknownAttributeError(
                f"values supplied for unknown attributes {sorted(extra)}"
            )
        try:
            values = [mapping[name] for name in schema.names]
        except KeyError as exc:
            raise SchemaError(f"missing value for attribute {exc.args[0]!r}") from None
        return cls(schema, values)

    @classmethod
    def unchecked(cls, schema: Schema, values: Tuple[Any, ...]) -> "Row":
        """Fast constructor for already-validated value tuples.

        Skips argument normalization entirely: *values* must be a tuple
        whose elements already conform to *schema* — e.g. values taken
        from rows that went through the checked path, reshaped by
        position.  The fused maintenance pipelines
        (:mod:`repro.algebra.plan`) and the batched append fast path
        (:meth:`repro.core.chronicle.Chronicle._admit_batch`) build all
        their rows this way.
        """
        row = object.__new__(cls)
        row.schema = schema
        row.values = values
        return row

    # -- access -----------------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self.values[self.schema.position(name)]

    def get(self, name: str, default: Any = None) -> Any:
        """Value of attribute *name*, or *default* when absent."""
        if name in self.schema:
            return self.values[self.schema.position(name)]
        return default

    def at(self, position: int) -> Any:
        """Value at a positional index (no name lookup)."""
        return self.values[position]

    def as_dict(self) -> Dict[str, Any]:
        """Materialize the row as a plain ``dict``."""
        return dict(zip(self.schema.names, self.values))

    @property
    def sequence_number(self) -> Any:
        """The row's sequence number (rows of chronicle-typed schemas only)."""
        seq = self.schema.sequence_attribute
        if seq is None:
            raise SchemaError("row schema has no sequencing attribute")
        return self.values[self.schema.position(seq)]

    # -- reshaping ----------------------------------------------------------------

    def project(self, names: Sequence[str], schema: Schema = None) -> "Row":
        """Project onto *names*; pass the precomputed *schema* on hot paths."""
        if schema is None:
            schema = self.schema.project(names)
        positions = self.schema.positions(names)
        return Row(schema, tuple(self.values[p] for p in positions), validate=False)

    def concat(self, other: "Row", schema: Schema) -> "Row":
        """Concatenate with *other* under the given combined schema."""
        return Row(schema, self.values + other.values, validate=False)

    def replace(self, **updates: Any) -> "Row":
        """A copy of the row with the named attributes replaced."""
        values = list(self.values)
        for name, value in updates.items():
            values[self.schema.position(name)] = value
        return Row(self.schema, values)

    def rebind(self, schema: Schema) -> "Row":
        """The same values under a different (compatible) schema."""
        if len(schema) != len(self.values):
            raise SchemaError(
                f"cannot rebind {len(self.values)}-ary row to {len(schema)}-ary schema"
            )
        return Row(schema, self.values, validate=False)

    # -- dunder --------------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.values == other.values
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.schema.names, self.values)
        )
        return f"Row({inner})"
