"""Temporally versioned relations and the proactive-update rule.

Section 2.3 of the paper: each relation conceptually has one temporal
version per update, and any chronicle–relation join is an implicit
temporal join — a chronicle tuple with sequence number *s* joins the
version of the relation associated with *s*.  Updates must be
*proactive*: they may only affect versions for sequence numbers not yet
seen, because retroactive updates would require reprocessing chronicle
history that may no longer be stored.

:class:`VersionedRelation` wraps a current :class:`~.relation.Relation`
and

* polices proactivity against a *watermark* (the highest sequence number
  the owning chronicle group has issued);
* optionally records an operation log so tests and audit queries can
  reconstruct the version ``as_of`` any sequence number — the paper notes
  versions "do not need to be stored" for maintenance, and indeed the
  maintenance path never reads the log.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import RetroactiveUpdateError
from .predicate import Predicate
from .relation import Relation, RowLike
from .schema import Schema
from .tuples import Row

#: Operation kinds recorded in the version log.
_INSERT, _DELETE, _UPDATE = "insert", "delete", "update"


class VersionedRelation:
    """A relation with proactive-update enforcement and optional history.

    Parameters
    ----------
    name, schema:
        Passed through to the underlying :class:`Relation`.
    watermark:
        Zero-argument callable returning the highest sequence number seen
        so far by the owning chronicle group (``-1`` before any append).
        Updates are proactive exactly when they take effect strictly
        after this watermark.
    keep_history:
        Record an operation log enabling :meth:`as_of` reconstruction.
    """

    __slots__ = ("current", "_watermark", "keep_history", "_log")

    def __init__(
        self,
        name: str,
        schema: Schema,
        watermark: Optional[Callable[[], int]] = None,
        keep_history: bool = True,
    ) -> None:
        self.current = Relation(name, schema)
        self._watermark = watermark if watermark is not None else (lambda: -1)
        self.keep_history = keep_history
        # (effective_from_sn, op, payload) — payload depends on op
        self._log: List[Tuple[int, str, Any]] = []

    # -- identity passthrough -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.current.name

    @property
    def schema(self) -> Schema:
        return self.current.schema

    def bind_watermark(self, watermark: Callable[[], int]) -> None:
        """Re-bind the proactivity watermark (used by database wiring)."""
        self._watermark = watermark

    def _effective_from(self, effective_from: Optional[int]) -> int:
        """Resolve and police the effective-from sequence number."""
        floor = self._watermark() + 1
        if effective_from is None:
            return floor
        if effective_from < floor:
            raise RetroactiveUpdateError(
                f"relation {self.name!r}: update effective from sequence "
                f"{effective_from} would be retroactive (watermark "
                f"{floor - 1}); the chronicle model permits only proactive "
                f"updates"
            )
        return effective_from

    # -- mutation (proactive) ----------------------------------------------------------

    def insert(self, value: RowLike, effective_from: Optional[int] = None) -> Row:
        """Proactively insert a row, effective for future sequence numbers."""
        effective = self._effective_from(effective_from)
        row = self.current.insert(value)
        if self.keep_history:
            self._log.append((effective, _INSERT, row))
        return row

    def insert_many(self, values: Sequence[RowLike], effective_from: Optional[int] = None) -> List[Row]:
        """Proactively insert several rows."""
        return [self.insert(value, effective_from) for value in values]

    def delete_key(self, key: Sequence[Any], effective_from: Optional[int] = None) -> bool:
        """Proactively delete the row with the given key."""
        effective = self._effective_from(effective_from)
        row = self.current.lookup_key(key)
        deleted = self.current.delete_key(key)
        if deleted and self.keep_history:
            self._log.append((effective, _DELETE, row))
        return deleted

    def update_key(self, key: Sequence[Any], effective_from: Optional[int] = None, **changes: Any) -> bool:
        """Proactively update the row with the given key."""
        effective = self._effective_from(effective_from)
        before = self.current.lookup_key(key)
        if before is None:
            return False
        updated = self.current.update_key(key, **changes)
        if updated and self.keep_history:
            after = self.current.lookup_key(
                tuple(changes.get(name, before[name]) for name in self.schema.key)
            )
            self._log.append((effective, _UPDATE, (before, after)))
        return updated

    def update_where(self, predicate: Predicate, effective_from: Optional[int] = None, **changes: Any) -> int:
        """Proactively update every row matching *predicate*."""
        effective = self._effective_from(effective_from)
        touched = [row for row in self.current.rows() if predicate.evaluate(row)]
        count = self.current.update_where(predicate, **changes)
        if self.keep_history:
            for before in touched:
                self._log.append((effective, _UPDATE, (before, before.replace(**changes))))
        return count

    # -- temporal read ------------------------------------------------------------------

    def version_for(self, sequence_number: int) -> Relation:
        """The relation version a chronicle tuple at *sequence_number* joins.

        For sequence numbers at or past every logged update this is the
        current relation (no copy); older sequence numbers trigger an
        :meth:`as_of` reconstruction (history must be enabled).
        """
        if not self._log or sequence_number >= self._log[-1][0]:
            return self.current
        return self.as_of(sequence_number)

    def as_of(self, sequence_number: int) -> Relation:
        """Reconstruct the relation version at *sequence_number*.

        Replays the operation log from empty; intended for audit queries
        and tests, never for the maintenance path (which only ever needs
        the current version thanks to the proactive rule).
        """
        if not self.keep_history:
            raise RetroactiveUpdateError(
                f"relation {self.name!r} keeps no history; as-of queries unavailable"
            )
        snapshot = Relation(f"{self.name}@{sequence_number}", self.schema)
        for effective, op, payload in self._log:
            if effective > sequence_number:
                break
            if op == _INSERT:
                snapshot.insert(payload)
            elif op == _DELETE:
                if payload is not None and self.schema.key is not None:
                    snapshot.delete_key(tuple(payload[name] for name in self.schema.key))
            else:  # update
                before, after = payload
                if self.schema.key is not None:
                    snapshot.delete_key(tuple(before[name] for name in self.schema.key))
                snapshot.insert(after)
        return snapshot

    # -- passthrough reads ----------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        return self.current.rows()

    def lookup_key(self, key: Sequence[Any]) -> Optional[Row]:
        return self.current.lookup_key(key)

    def lookup(self, attrs: Sequence[str], value: Any) -> List[Row]:
        return self.current.lookup(attrs, value)

    def create_index(
        self, attrs: Sequence[str], ordered: bool = False, unique: bool = False
    ) -> None:
        self.current.create_index(attrs, ordered, unique)

    def has_unique_index(self, attrs: Sequence[str]) -> bool:
        return self.current.has_unique_index(attrs)

    def __iter__(self) -> Iterator[Row]:
        return self.current.rows()

    def __len__(self) -> int:
        return len(self.current)

    def __repr__(self) -> str:
        return (
            f"VersionedRelation({self.name!r}, {len(self.current)} rows, "
            f"{len(self._log)} logged ops)"
        )
