"""Schemas: ordered attribute lists with keys and constraints.

A :class:`Schema` describes the type of a relation or chronicle.  For
chronicles, exactly one attribute is declared with the :data:`~..relational
.types.SEQ` domain and marked as the *sequencing attribute*; the chronicle
algebra's validity rules (Definition 4.1) are stated in terms of whether an
expression's output schema retains that attribute.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    DuplicateAttributeError,
    SchemaError,
    UnknownAttributeError,
)
from .types import Domain, SEQ, check_value, resolve_domain


class Attribute:
    """A single named, typed attribute.

    Parameters
    ----------
    name:
        Attribute name; unique within a schema.
    domain:
        A :class:`~.types.Domain` or its name (``"INT"``).
    nullable:
        Whether ``None`` is an admissible value.
    """

    __slots__ = ("name", "domain", "nullable")

    def __init__(self, name: str, domain: "Domain | str", nullable: bool = False) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid attribute name {name!r}")
        self.name = name
        self.domain = resolve_domain(domain)
        self.nullable = nullable

    def check(self, value: Any) -> Any:
        """Validate/coerce *value* for this attribute."""
        return check_value(self.domain, value, self.nullable)

    def renamed(self, name: str) -> "Attribute":
        """Return a copy of this attribute under a new name."""
        return Attribute(name, self.domain, self.nullable)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return (
            self.name == other.name
            and self.domain is other.domain
            and self.nullable == other.nullable
        )

    def __hash__(self) -> int:
        return hash((self.name, self.domain.name, self.nullable))

    def __repr__(self) -> str:
        null = ", nullable" if self.nullable else ""
        return f"Attribute({self.name}: {self.domain.name}{null})"


class Schema:
    """An ordered collection of attributes plus optional key metadata.

    Parameters
    ----------
    attributes:
        The attributes in positional order.
    key:
        Names of the attributes forming the primary key (optional).
    sequence_attribute:
        Name of the sequencing attribute, making this a chronicle schema.
        The attribute must exist and must have the SEQ domain.
    """

    __slots__ = ("attributes", "_index", "_names", "_names_set", "key", "sequence_attribute")

    def __init__(
        self,
        attributes: Sequence[Attribute],
        key: Optional[Sequence[str]] = None,
        sequence_attribute: Optional[str] = None,
    ) -> None:
        attrs = list(attributes)
        index: Dict[str, int] = {}
        for pos, attr in enumerate(attrs):
            if attr.name in index:
                raise DuplicateAttributeError(f"duplicate attribute {attr.name!r}")
            index[attr.name] = pos
        self.attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._index = index
        self._names: Tuple[str, ...] = tuple(attr.name for attr in self.attributes)
        self._names_set = frozenset(self._names)
        self.key: Optional[Tuple[str, ...]] = None
        if key is not None:
            key_names = tuple(key)
            for name in key_names:
                if name not in index:
                    raise UnknownAttributeError(f"key attribute {name!r} not in schema")
            if len(set(key_names)) != len(key_names):
                raise SchemaError("key attribute list contains duplicates")
            if not key_names:
                raise SchemaError("key attribute list may not be empty")
            self.key = key_names
        self.sequence_attribute = None
        if sequence_attribute is not None:
            if sequence_attribute not in index:
                raise UnknownAttributeError(
                    f"sequencing attribute {sequence_attribute!r} not in schema"
                )
            attr = attrs[index[sequence_attribute]]
            if attr.domain is not SEQ:
                raise SchemaError(
                    f"sequencing attribute {sequence_attribute!r} must have the "
                    f"SEQ domain, found {attr.domain.name}"
                )
            self.sequence_attribute = sequence_attribute

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(cls, *specs: "Tuple[str, Domain | str] | Attribute", **options: Any) -> "Schema":
        """Build a schema from ``(name, domain)`` pairs or attributes.

        >>> Schema.build(("id", "INT"), ("name", "STR"), key=["id"])
        """
        attrs = [
            spec if isinstance(spec, Attribute) else Attribute(spec[0], spec[1])
            for spec in specs
        ]
        return cls(attrs, **options)

    # -- basic queries ---------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in positional order (cached at construction)."""
        return self._names

    @property
    def names_set(self) -> "frozenset[str]":
        """The attribute names as a set (cached — hot admit-path lookup)."""
        return self._names_set

    @property
    def is_chronicle_schema(self) -> bool:
        """True when the schema declares a sequencing attribute."""
        return self.sequence_attribute is not None

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        """Return the positional index of attribute *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(
                f"attribute {name!r} not in schema {self.names}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """Return the attribute object named *name*."""
        return self.attributes[self.position(name)]

    def positions(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Positional indexes for several attribute names."""
        return tuple(self.position(name) for name in names)

    # -- derivation ------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of a projection onto *names* (order given by *names*).

        Keeps the sequencing marker when the sequencing attribute survives;
        drops key metadata (a projection need not preserve keys).
        """
        attrs = [self.attribute(name) for name in names]
        seq = self.sequence_attribute if self.sequence_attribute in names else None
        return Schema(attrs, sequence_attribute=seq)

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """Schema with attributes renamed per *mapping* (missing = keep)."""
        attrs = [attr.renamed(mapping.get(attr.name, attr.name)) for attr in self.attributes]
        seq = self.sequence_attribute
        if seq is not None:
            seq = mapping.get(seq, seq)
        key = self.key
        if key is not None:
            key = tuple(mapping.get(name, name) for name in key)
        return Schema(attrs, key=key, sequence_attribute=seq)

    def concat_names(self, other: "Schema") -> List[str]:
        """Output names *other*'s attributes get in ``self.concat(other)``.

        Name clashes with this schema are disambiguated with an ``r_``
        prefix (then ``r2_``, ...).  Exposed so callers (e.g. the query
        compiler) can track attribute provenance across joins.
        """
        taken = set(self.names)
        names: List[str] = []
        for attr in other.attributes:
            name = attr.name
            if name in taken:
                candidate = f"r_{name}"
                suffix = 2
                while candidate in taken:
                    candidate = f"r{suffix}_{name}"
                    suffix += 1
                name = candidate
            names.append(name)
            taken.add(name)
        return names

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a product/join: this schema's attributes then *other*'s.

        Right-hand name clashes are renamed per :meth:`concat_names`.
        The sequencing attribute, if any, is taken from the left operand.
        """
        attrs: List[Attribute] = list(self.attributes)
        for attr, name in zip(other.attributes, self.concat_names(other)):
            attrs.append(attr.renamed(name))
        return Schema(attrs, sequence_attribute=self.sequence_attribute)

    def drop(self, names: Sequence[str]) -> "Schema":
        """Schema with the given attributes removed."""
        remove = set(names)
        keep = [attr.name for attr in self.attributes if attr.name not in remove]
        return self.project(keep)

    def compatible_with(self, other: "Schema") -> bool:
        """Union/difference compatibility: same arity, domains, and names."""
        if len(self) != len(other):
            return False
        return all(
            a.name == b.name and a.domain is b.domain
            for a, b in zip(self.attributes, other.attributes)
        )

    def require_compatible(self, other: "Schema", operation: str) -> None:
        """Raise a :class:`SchemaError` unless schemas are compatible."""
        if not self.compatible_with(other):
            raise SchemaError(
                f"{operation} requires identically-typed operands; "
                f"got {self.names} vs {other.names}"
            )

    # -- value checking ----------------------------------------------------------

    def check_values(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate a positional value list against the schema."""
        if len(values) != len(self.attributes):
            raise SchemaError(
                f"expected {len(self.attributes)} values, got {len(values)}"
            )
        return tuple(
            attr.check(value) for attr, value in zip(self.attributes, values)
        )

    # -- dunder -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.attributes == other.attributes
            and self.key == other.key
            and self.sequence_attribute == other.sequence_attribute
        )

    def __hash__(self) -> int:
        return hash((self.attributes, self.key, self.sequence_attribute))

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}:{a.domain.name}" for a in self.attributes)
        extras = []
        if self.key:
            extras.append(f"key={list(self.key)}")
        if self.sequence_attribute:
            extras.append(f"seq={self.sequence_attribute}")
        tail = (", " + ", ".join(extras)) if extras else ""
        return f"Schema({parts}{tail})"
