"""Compile parsed view definitions into chronicle-algebra summaries.

The compiler resolves names against a :class:`Catalog` (chronicles and
relations), builds the operator tree bottom-up (scan → joins → selection)
and finishes with the summarization step, producing a
:class:`~repro.sca.summarize.Summary` ready to back a persistent view.
Language classification falls out of the resulting tree:

* ``JOIN relation ON key``      → :class:`RelKeyJoin` → CA⋈ → IM-log(R)
* ``CROSS JOIN relation``       → :class:`RelProduct` → CA → IM-R^k
* no relation operators         → CA1 → IM-Constant

The compiler tracks attribute provenance through joins (clashing
relation attributes are renamed ``r_name``), so qualified references like
``customers.state`` resolve to the right output attribute.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from ..aggregates.base import AggregateSpec
from ..aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from ..algebra.ast import ChronicleScan, Node
from ..core.chronicle import Chronicle
from ..errors import CompileError
from ..relational.predicate import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
)
from .ast import (
    AndExpr,
    ColumnRef,
    ComparisonExpr,
    JoinClause,
    Literal,
    NotExpr,
    OrExpr,
    SelectItem,
    SelectStatement,
    ViewDefinition,
)
from .parser import parse_select, parse_view
from ..sca.summarize import GroupBySummary, ProjectSummary, Summary

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


class CompiledView:
    """The result of compiling a full view definition.

    Attributes
    ----------
    name:
        View name from the statement.
    summary:
        The compiled summarization.
    periodic:
        The parsed :class:`~repro.query.ast.PeriodicSpec`, or ``None``
        for an ordinary persistent view.
    chronon_of:
        Row → chronon callable derived from the spec's BY column, or
        ``None`` to use the group's sequence-number mapping.
    """

    __slots__ = ("name", "summary", "periodic", "chronon_of")

    def __init__(self, name: str, summary: Summary, periodic: Any,
                 chronon_of: Any) -> None:
        self.name = name
        self.summary = summary
        self.periodic = periodic
        self.chronon_of = chronon_of

    @property
    def is_periodic(self) -> bool:
        return self.periodic is not None


class Catalog:
    """Name resolution context: chronicles and relations by name."""

    def __init__(
        self,
        chronicles: Optional[Dict[str, Chronicle]] = None,
        relations: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.chronicles: Dict[str, Chronicle] = dict(chronicles or {})
        self.relations: Dict[str, Any] = dict(relations or {})

    def add_chronicle(self, chronicle: Chronicle) -> None:
        self.chronicles[chronicle.name] = chronicle

    def add_relation(self, relation: Any) -> None:
        self.relations[relation.name] = relation

    def kind_of(self, name: str) -> str:
        if name in self.chronicles and name in self.relations:
            raise CompileError(f"{name!r} names both a chronicle and a relation")
        if name in self.chronicles:
            return "chronicle"
        if name in self.relations:
            return "relation"
        raise CompileError(f"unknown chronicle or relation {name!r}")


class _Scope:
    """Tracks attribute provenance as the operator tree grows."""

    def __init__(self) -> None:
        # (qualifier, original_name) -> current output attribute name
        self._qualified: Dict[Tuple[str, str], str] = {}
        # unqualified original name -> output name, or "" when ambiguous
        self._unqualified: Dict[str, str] = {}

    def add(self, qualifier: str, original: str, output: str) -> None:
        self._qualified[(qualifier, original)] = output
        if original in self._unqualified and self._unqualified[original] != output:
            self._unqualified[original] = ""
        else:
            self._unqualified.setdefault(original, output)

    def resolve(self, column: ColumnRef) -> str:
        if column.source is not None:
            try:
                return self._qualified[(column.source, column.name)]
            except KeyError:
                raise CompileError(
                    f"unknown column {column.source}.{column.name}"
                ) from None
        output = self._unqualified.get(column.name)
        if output is None:
            raise CompileError(f"unknown column {column.name!r}")
        if output == "":
            raise CompileError(
                f"column {column.name!r} is ambiguous; qualify it with its "
                f"chronicle or relation name"
            )
        return output

    def has(self, column: ColumnRef) -> bool:
        try:
            self.resolve(column)
            return True
        except CompileError:
            return False


class Compiler:
    """Compiles view-definition ASTs against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        aggregates: Optional[AggregateRegistry] = None,
    ) -> None:
        self.catalog = catalog
        self.aggregates = aggregates if aggregates is not None else DEFAULT_REGISTRY

    # -- public entry points -----------------------------------------------------------

    def compile_view(self, source: Union[str, ViewDefinition]) -> Tuple[str, Summary]:
        """Compile ``DEFINE VIEW`` text (or AST) to ``(name, summary)``.

        Rejects periodic definitions — use :meth:`compile_definition` for
        the full ``DEFINE [PERIODIC] VIEW`` language.
        """
        definition = parse_view(source) if isinstance(source, str) else source
        if definition.periodic is not None:
            raise CompileError(
                f"view {definition.name!r} is periodic; compile it with "
                f"compile_definition() / define it via the database"
            )
        return definition.name, self.compile_select(definition.select)

    def compile_definition(
        self, source: Union[str, ViewDefinition]
    ) -> "CompiledView":
        """Compile a full ``DEFINE [PERIODIC] VIEW`` statement."""
        definition = parse_view(source) if isinstance(source, str) else source
        summary = self.compile_select(definition.select)
        chronon_of = None
        calendar_spec = definition.periodic
        if calendar_spec is not None and calendar_spec.by is not None:
            chronicle = self.catalog.chronicles[definition.select.source]
            by = calendar_spec.by
            if by.source is not None and by.source != definition.select.source:
                raise CompileError(
                    f"periodic BY column must come from the chronicle "
                    f"{definition.select.source!r}, not {by.source!r}"
                )
            position = chronicle.schema.position(by.name)

            def chronon_of(row, _position=position):  # noqa: ANN001
                return float(row.values[_position])

        return CompiledView(definition.name, summary, calendar_spec, chronon_of)

    def compile_select(self, source: Union[str, SelectStatement]) -> Summary:
        """Compile a SELECT (text or AST) into a summarization.

        Top-level WHERE conjuncts that reference only base-chronicle
        attributes are pushed below the joins.  Besides the usual
        join-input reduction, this is what makes the Section 5.2
        affected-view prefilter effective: prefilters are harvested from
        selections sitting directly above chronicle scans.
        """
        statement = parse_select(source) if isinstance(source, str) else source
        node, scope = self._compile_from(statement)
        if statement.where is not None:
            predicate = self._compile_predicate(statement.where, scope)
            node = self._apply_where(statement, predicate, node, scope)
        return self._compile_summary(statement, node, scope)

    def _apply_where(
        self,
        statement: SelectStatement,
        predicate: Predicate,
        node: Node,
        scope: _Scope,
    ) -> Node:
        conjuncts = predicate.terms if isinstance(predicate, And) else (predicate,)
        chronicle = self.catalog.chronicles[statement.source]
        base_names = set(chronicle.schema.names)
        pushdown = [c for c in conjuncts if c.attributes() <= base_names]
        residual = [c for c in conjuncts if not (c.attributes() <= base_names)]
        if not pushdown or not statement.joins:
            return node.select(predicate)
        # Rebuild: scan → pushed selections → joins → residual selections.
        # Chronicle attribute names are stable through the joins (the left
        # operand's names are preserved), so the compiled conjuncts remain
        # valid directly above the scan.
        rebuilt: Node = ChronicleScan(chronicle)
        for conjunct in pushdown:
            rebuilt = rebuilt.select(conjunct)
        rebuild_scope = _Scope()
        for name in chronicle.schema.names:
            rebuild_scope.add(statement.source, name, name)
        for join in statement.joins:
            rebuilt = self._compile_join(rebuilt, join, rebuild_scope)
        if residual:
            rebuilt = rebuilt.select(
                residual[0] if len(residual) == 1 else And(*residual)
            )
        return rebuilt

    # -- FROM / JOIN ---------------------------------------------------------------------

    def _compile_from(self, statement: SelectStatement) -> Tuple[Node, _Scope]:
        kind = self.catalog.kind_of(statement.source)
        if kind != "chronicle":
            raise CompileError(
                f"persistent views summarize chronicles; FROM {statement.source!r} "
                f"is a relation (query relations directly instead)"
            )
        chronicle = self.catalog.chronicles[statement.source]
        node: Node = ChronicleScan(chronicle)
        scope = _Scope()
        for name in chronicle.schema.names:
            scope.add(statement.source, name, name)
        for join in statement.joins:
            node = self._compile_join(node, join, scope)
        return node, scope

    def _compile_join(self, node: Node, join: JoinClause, scope: _Scope) -> Node:
        kind = self.catalog.kind_of(join.source)
        if kind == "chronicle":
            return self._compile_chronicle_join(node, join, scope)
        relation = self.catalog.relations[join.source]
        if join.cross:
            new_names = node.schema.concat_names(relation.schema)
            product = node.product(relation)
            for original, output in zip(relation.schema.names, new_names):
                scope.add(join.source, original, output)
            return product
        pairs: List[Tuple[str, str]] = []
        for left, right in join.on:
            chronicle_col, relation_col = self._orient_pair(left, right, join.source, scope)
            pairs.append((scope.resolve(chronicle_col), relation_col.name))
        keyjoin = node.keyjoin(relation, pairs)
        joined = {r for _, r in pairs}
        kept = [n for n in relation.schema.names if n not in joined]
        new_names = node.schema.concat_names(relation.schema.project(kept))
        for original, output in zip(kept, new_names):
            scope.add(join.source, original, output)
        # Qualified references to the joined key resolve to the chronicle
        # attribute (the values are equal by the join predicate).
        for chronicle_attr, relation_attr in pairs:
            scope.add(join.source, relation_attr, chronicle_attr)
        return keyjoin

    def _compile_chronicle_join(self, node: Node, join: JoinClause, scope: _Scope) -> Node:
        chronicle = self.catalog.chronicles[join.source]
        seq = chronicle.schema.sequence_attribute
        if join.cross:
            raise CompileError(
                "cross products between chronicles are outside chronicle "
                "algebra (Theorem 4.3); join chronicles on their sequence "
                "numbers instead"
            )
        if len(join.on) != 1:
            raise CompileError(
                "chronicle-chronicle joins must be a single equality on the "
                "sequencing attributes"
            )
        left_col, right_col = join.on[0]
        side_cols = {left_col, right_col}
        resolved_left = scope.has(left_col)
        chronicle_col = right_col if resolved_left else left_col
        existing_col = left_col if resolved_left else right_col
        left_seq = node.schema.sequence_attribute
        if scope.resolve(existing_col) != left_seq or chronicle_col.name != seq:
            raise CompileError(
                f"chronicle-chronicle joins must equate the sequencing "
                f"attributes ({left_seq!r} = {join.source}.{seq!r}); other "
                f"join conditions are outside chronicle algebra (Theorem 4.3)"
            )
        right_node = ChronicleScan(chronicle)
        right_kept = [n for n in chronicle.schema.names if n != seq]
        joined = node.join(right_node)
        new_names = node.schema.concat_names(chronicle.schema.project(right_kept))
        for original, output in zip(right_kept, new_names):
            scope.add(join.source, original, output)
        scope.add(join.source, seq, left_seq)
        return joined

    @staticmethod
    def _orient_pair(
        left: ColumnRef, right: ColumnRef, relation_name: str, scope: _Scope
    ) -> Tuple[ColumnRef, ColumnRef]:
        """Order an ON equality as (chronicle-side, relation-side)."""
        left_is_relation = left.source == relation_name
        right_is_relation = right.source == relation_name
        if left_is_relation and not right_is_relation:
            return right, left
        if right_is_relation and not left_is_relation:
            return left, right
        # Fall back to scope resolution for unqualified columns.
        if scope.has(left) and not scope.has(right):
            return left, right
        if scope.has(right) and not scope.has(left):
            return right, left
        raise CompileError(
            f"cannot orient join condition {left} = {right}; qualify the "
            f"columns with their sources"
        )

    # -- WHERE ------------------------------------------------------------------------------

    def _compile_predicate(self, expr: Any, scope: _Scope) -> Predicate:
        if isinstance(expr, ComparisonExpr):
            return self._compile_comparison(expr, scope)
        if isinstance(expr, OrExpr):
            return Or(*(self._compile_predicate(t, scope) for t in expr.terms))
        if isinstance(expr, AndExpr):
            return And(*(self._compile_predicate(t, scope) for t in expr.terms))
        if isinstance(expr, NotExpr):
            return Not(self._compile_predicate(expr.term, scope))
        raise CompileError(f"unsupported predicate expression {expr!r}")

    def _compile_comparison(self, expr: ComparisonExpr, scope: _Scope) -> Predicate:
        left, op, right = expr.left, expr.op, expr.right
        if isinstance(left, Literal):
            # Normalize "5 < x" to "x > 5".
            left, right = right, left
            op = _FLIP[op]
        assert isinstance(left, ColumnRef)
        attr = scope.resolve(left)
        if isinstance(right, Literal):
            return Comparison(attr, op, right.value)
        return Comparison(attr, op, scope.resolve(right), rhs_is_attr=True)

    # -- SELECT list / summarization --------------------------------------------------------

    def _compile_summary(
        self, statement: SelectStatement, node: Node, scope: _Scope
    ) -> Summary:
        seq = node.schema.sequence_attribute
        has_aggregates = any(item.aggregate for item in statement.items)
        if not has_aggregates and statement.group_by:
            raise CompileError("GROUP BY requires at least one aggregate in SELECT")
        if not has_aggregates:
            if statement.having is not None:
                raise CompileError("HAVING requires grouping with aggregates")
            names = []
            for item in statement.items:
                assert item.column is not None
                name = scope.resolve(item.column)
                if item.alias is not None and item.alias != name:
                    raise CompileError(
                        "aliasing projected columns is not supported; "
                        "the view exposes the source attribute names"
                    )
                if name == seq:
                    raise CompileError(
                        f"selecting the sequencing attribute {seq!r} keeps the "
                        f"result a chronicle; persistent views must summarize "
                        f"it away (Definition 4.3)"
                    )
                names.append(name)
            return ProjectSummary(node, names)
        grouping = []
        for column in statement.group_by:
            name = scope.resolve(column)
            if name == seq:
                raise CompileError(
                    f"grouping by the sequencing attribute {seq!r} keeps the "
                    f"result a chronicle; persistent views must summarize it "
                    f"away (Definition 4.3)"
                )
            grouping.append(name)
        grouping_set = set(grouping)
        specs: List[AggregateSpec] = []
        for item in statement.items:
            if item.aggregate is None:
                assert item.column is not None
                name = scope.resolve(item.column)
                if name not in grouping_set:
                    raise CompileError(
                        f"column {name!r} appears in SELECT but not in GROUP BY"
                    )
                continue
            function = self.aggregates.get(item.aggregate)
            attribute = None
            if item.column is not None:
                attribute = scope.resolve(item.column)
            elif function.takes_argument:
                raise CompileError(f"{function.name} requires a column argument")
            specs.append(AggregateSpec(function, attribute, item.alias))
        having = None
        if statement.having is not None:
            # HAVING resolves against the summary's output attributes:
            # grouping names plus aggregate output names/aliases.
            output_scope = _Scope()
            for name in grouping:
                output_scope.add("", name, name)
            for spec in specs:
                output_scope.add("", spec.output, spec.output)
            having = self._compile_predicate(statement.having, output_scope)
        return GroupBySummary(node, grouping, specs, having=having)


def compile_view(
    source: str,
    catalog: Catalog,
    aggregates: Optional[AggregateRegistry] = None,
) -> Tuple[str, Summary]:
    """One-shot convenience: compile ``DEFINE VIEW`` text."""
    return Compiler(catalog, aggregates).compile_view(source)
