"""Recursive-descent parser for the view-definition language.

Grammar (EBNF)::

    view_def    := DEFINE VIEW ident AS select EOF
    select      := SELECT item ("," item)*
                   FROM ident join*
                   [WHERE or_expr]
                   [GROUP BY column ("," column)*]
    item        := ident "(" ("*" | column) ")" [AS ident]
                 | column [AS ident]
    join        := JOIN ident ON equality (AND equality)*
                 | CROSS JOIN ident
    equality    := column "=" column
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | primary
    primary     := "(" or_expr ")" | operand cmp operand
    operand     := column | NUMBER | STRING
    column      := ident ["." ident]
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, Union

from ..errors import ParseError
from .ast import (
    AndExpr,
    ColumnRef,
    ComparisonExpr,
    JoinClause,
    Literal,
    NotExpr,
    OrExpr,
    PeriodicSpec,
    SelectItem,
    SelectStatement,
    ViewDefinition,
)
from .lexer import Token, tokenize

_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -----------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "EOF":
            self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        found = token.text or "end of input"
        return ParseError(f"{message}, found {found!r}", token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_ident(self, what: str) -> str:
        if self._current.kind != "IDENT":
            raise self._error(f"expected {what}")
        return self._advance().text

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._current.is_symbol(symbol):
            self._advance()
            return True
        return False

    # -- productions ------------------------------------------------------------------

    def view_definition(self) -> ViewDefinition:
        self._expect_keyword("DEFINE")
        periodic_spec = None
        is_periodic = self._accept_keyword("PERIODIC")
        self._expect_keyword("VIEW")
        name = self._expect_ident("view name")
        if is_periodic:
            periodic_spec = self._periodic_spec()
        self._expect_keyword("AS")
        select = self.select_statement()
        if self._current.kind != "EOF":
            raise self._error("unexpected trailing input")
        return ViewDefinition(name, select, periodic_spec)

    def _periodic_spec(self) -> PeriodicSpec:
        """``OVER (EVERY w | WINDOW w [SLIDE s]) [STARTING o]
        [EXPIRE AFTER e] [BY column]``"""
        self._expect_keyword("OVER")
        if self._accept_keyword("EVERY"):
            width = self._number("period width")
            stride = width
        elif self._accept_keyword("WINDOW"):
            width = self._number("window width")
            stride = self._number("slide") if self._accept_keyword("SLIDE") else 1.0
        else:
            raise self._error("expected EVERY or WINDOW after OVER")
        origin = 0.0
        expire_after = None
        by = None
        while True:
            if self._accept_keyword("STARTING"):
                origin = self._number("origin")
            elif self._accept_keyword("EXPIRE"):
                self._expect_keyword("AFTER")
                expire_after = self._number("expiration delay")
            elif self._accept_keyword("BY"):
                by = self._column()
            else:
                break
        return PeriodicSpec(width, stride, origin, expire_after, by)

    def _number(self, what: str) -> float:
        token = self._current
        if token.kind != "NUMBER":
            raise self._error(f"expected a numeric {what}")
        self._advance()
        return float(token.text)

    def select_statement(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        source = self._expect_ident("chronicle or relation name")
        joins: List[JoinClause] = []
        while True:
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                joins.append(JoinClause(self._expect_ident("relation name"), (), True))
            elif self._accept_keyword("JOIN"):
                target = self._expect_ident("relation name")
                self._expect_keyword("ON")
                pairs = [self._join_equality()]
                while self._accept_keyword("AND"):
                    pairs.append(self._join_equality())
                joins.append(JoinClause(target, tuple(pairs), False))
            else:
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self._or_expr()
        group_by: Tuple[ColumnRef, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            columns = [self._column()]
            while self._accept_symbol(","):
                columns.append(self._column())
            group_by = tuple(columns)
        having = None
        if self._accept_keyword("HAVING"):
            having = self._or_expr()
        return SelectStatement(
            tuple(items), source, tuple(joins), where, group_by, having
        )

    def _select_item(self) -> SelectItem:
        if self._current.kind == "IDENT" and self._peek_is_symbol("("):
            function = self._advance().text
            self._expect_symbol("(")
            column: Optional[ColumnRef] = None
            if not self._accept_symbol("*"):
                column = self._column()
            self._expect_symbol(")")
            alias = self._alias()
            return SelectItem(function.upper(), column, alias)
        column = self._column()
        alias = self._alias()
        return SelectItem(None, column, alias)

    def _peek_is_symbol(self, symbol: str) -> bool:
        nxt = self._tokens[self._position + 1]
        return nxt.is_symbol(symbol)

    def _alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_ident("alias")
        return None

    def _join_equality(self) -> Tuple[ColumnRef, ColumnRef]:
        left = self._column()
        self._expect_symbol("=")
        right = self._column()
        return (left, right)

    def _column(self) -> ColumnRef:
        first = self._expect_ident("column name")
        if self._accept_symbol("."):
            return ColumnRef(first, self._expect_ident("column name"))
        return ColumnRef(None, first)

    # -- predicates ---------------------------------------------------------------------

    def _or_expr(self) -> Any:
        terms = [self._and_expr()]
        while self._accept_keyword("OR"):
            terms.append(self._and_expr())
        if len(terms) == 1:
            return terms[0]
        return OrExpr(tuple(terms))

    def _and_expr(self) -> Any:
        terms = [self._not_expr()]
        while self._accept_keyword("AND"):
            terms.append(self._not_expr())
        if len(terms) == 1:
            return terms[0]
        return AndExpr(tuple(terms))

    def _not_expr(self) -> Any:
        if self._accept_keyword("NOT"):
            return NotExpr(self._not_expr())
        return self._primary()

    def _primary(self) -> Any:
        if self._accept_symbol("("):
            inner = self._or_expr()
            self._expect_symbol(")")
            return inner
        left = self._operand()
        token = self._current
        if token.kind != "SYMBOL" or token.text not in _COMPARISONS:
            raise self._error("expected a comparison operator")
        op = self._advance().text
        right = self._operand()
        if isinstance(left, Literal) and isinstance(right, Literal):
            raise ParseError(
                "comparison between two constants is not a predicate",
                token.line,
                token.column,
            )
        return ComparisonExpr(left, op, right)

    def _operand(self) -> Union[ColumnRef, Literal]:
        token = self._current
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "STRING":
            self._advance()
            return Literal(token.text)
        if token.kind == "IDENT":
            return self._column()
        raise self._error("expected a column or constant")


def parse_view(source: str) -> ViewDefinition:
    """Parse a ``DEFINE VIEW`` statement."""
    return _Parser(tokenize(source)).view_definition()


def parse_select(source: str) -> SelectStatement:
    """Parse a bare SELECT statement."""
    parser = _Parser(tokenize(source))
    statement = parser.select_statement()
    if parser._current.kind != "EOF":
        raise parser._error("unexpected trailing input")
    return statement
