"""Parse-tree node types for the view-definition language.

These are *syntactic* objects only: name resolution, typing and language
classification happen in :mod:`repro.query.compiler`.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional, Tuple


class ColumnRef(NamedTuple):
    """A possibly-qualified column reference ``[source.]name``."""

    source: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.source}.{self.name}" if self.source else self.name


class Literal(NamedTuple):
    """A constant: number, string, or boolean."""

    value: Any


class ComparisonExpr(NamedTuple):
    """``operand op operand`` with at least one column reference."""

    left: "ColumnRef | Literal"
    op: str
    right: "ColumnRef | Literal"


class OrExpr(NamedTuple):
    terms: Tuple[Any, ...]  # ComparisonExpr | AndExpr | OrExpr | NotExpr


class AndExpr(NamedTuple):
    terms: Tuple[Any, ...]


class NotExpr(NamedTuple):
    term: Any


class SelectItem(NamedTuple):
    """One SELECT-list entry.

    ``aggregate`` is None for plain columns; ``column`` is None for
    ``COUNT(*)``.  ``alias`` is the AS name, when given.
    """

    aggregate: Optional[str]
    column: Optional[ColumnRef]
    alias: Optional[str]


class JoinClause(NamedTuple):
    """``JOIN source ON pairs`` or ``CROSS JOIN source``."""

    source: str
    on: Tuple[Tuple[ColumnRef, ColumnRef], ...]  # empty for CROSS JOIN
    cross: bool


class SelectStatement(NamedTuple):
    """A parsed SELECT."""

    items: Tuple[SelectItem, ...]
    source: str
    joins: Tuple[JoinClause, ...]
    where: Optional[Any]  # predicate expression tree
    group_by: Tuple[ColumnRef, ...]
    having: Optional[Any] = None  # predicate over the summary's outputs


class PeriodicSpec(NamedTuple):
    """The OVER clause of a periodic view (Section 5.1).

    ``EVERY w``            → tiling periods of width w (stride = w).
    ``WINDOW w SLIDE s``   → overlapping windows of width w every s.
    ``STARTING o``         → chronon of interval 0 (default 0).
    ``EXPIRE AFTER e``     → drop interval views e chronons past their end.
    ``BY column``          → chronon source attribute; defaults to the
                             group's sequence-number → chronon mapping.
    """

    width: float
    stride: float
    origin: float
    expire_after: Optional[float]
    by: Optional[ColumnRef]


class ViewDefinition(NamedTuple):
    """A parsed ``DEFINE [PERIODIC] VIEW name [OVER ...] AS SELECT ...``."""

    name: str
    select: SelectStatement
    periodic: Optional[PeriodicSpec] = None
