"""Declarative view-definition language (lexer, parser, compiler)."""

from .ast import SelectStatement, ViewDefinition
from .compiler import Catalog, Compiler, compile_view
from .lexer import Token, tokenize
from .parser import parse_select, parse_view

__all__ = [
    "tokenize",
    "Token",
    "parse_view",
    "parse_select",
    "ViewDefinition",
    "SelectStatement",
    "Catalog",
    "Compiler",
    "compile_view",
]
