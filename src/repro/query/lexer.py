"""Tokenizer for the view-definition language.

The paper leaves the concrete syntax open ("an SQL like language may be
used"); we provide a small SQL dialect::

    DEFINE VIEW mileage AS
    SELECT acct, SUM(miles) AS balance, COUNT(*) AS flights
    FROM flights JOIN customers ON flights.acct = customers.acct
    WHERE miles > 0 OR bonus = 1
    GROUP BY acct

Tokens carry line/column positions so parse errors point at the source.
"""

from __future__ import annotations

from typing import List, NamedTuple

from ..errors import LexError

KEYWORDS = {
    "DEFINE",
    "VIEW",
    "AS",
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "JOIN",
    "ON",
    "AND",
    "OR",
    "NOT",
    "CROSS",
    "HAVING",
    # periodic views (Section 5.1)
    "PERIODIC",
    "OVER",
    "EVERY",
    "WINDOW",
    "SLIDE",
    "STARTING",
    "EXPIRE",
    "AFTER",
}

#: Multi-character operators first so maximal munch works.
_SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", ".", "*")


class Token(NamedTuple):
    """One lexical token."""

    kind: str  # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | EOF
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "SYMBOL" and self.text == symbol


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; returns tokens ending with an EOF token."""
    tokens: List[Token] = []
    line, column = 1, 1
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if source.startswith("--", position):
            end = source.find("\n", position)
            position = length if end == -1 else end
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            text = source[start:position]
            upper = text.upper()
            kind = "KEYWORD" if upper in KEYWORDS else "IDENT"
            tokens.append(Token(kind, upper if kind == "KEYWORD" else text, line, column))
            column += position - start
            continue
        if char.isdigit() or (
            char == "-" and position + 1 < length and source[position + 1].isdigit()
            and _number_context(tokens)
        ):
            start = position
            position += 1
            seen_dot = False
            while position < length and (
                source[position].isdigit() or (source[position] == "." and not seen_dot)
            ):
                if source[position] == ".":
                    # A trailing dot like "3.x" must not swallow the dot
                    # used for qualified names; require a digit after it.
                    if position + 1 >= length or not source[position + 1].isdigit():
                        break
                    seen_dot = True
                position += 1
            text = source[start:position]
            tokens.append(Token("NUMBER", text, line, column))
            column += position - start
            continue
        if char == "'":
            start = position
            position += 1
            chunks: List[str] = []
            while True:
                if position >= length:
                    raise LexError("unterminated string literal", line, column)
                if source[position] == "'":
                    if position + 1 < length and source[position + 1] == "'":
                        chunks.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                if source[position] == "\n":
                    raise LexError("newline inside string literal", line, column)
                chunks.append(source[position])
                position += 1
            tokens.append(Token("STRING", "".join(chunks), line, column))
            column += position - start
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, position):
                text = "!=" if symbol == "<>" else symbol
                tokens.append(Token("SYMBOL", text, line, column))
                position += len(symbol)
                column += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


def _number_context(tokens: List[Token]) -> bool:
    """Whether a ``-`` here starts a negative literal (not a minus op).

    The grammar has no arithmetic, so ``-`` only ever introduces a
    negative constant after a comparison operator, a comma, or an
    opening parenthesis.
    """
    if not tokens:
        return True
    last = tokens[-1]
    return last.kind == "SYMBOL" and last.text in ("=", "!=", "<", "<=", ">", ">=", ",", "(")
